#!/usr/bin/env python
"""Hidden constraints on a GPU kernel (RISE & ELEVATE-style workload).

The RISE & ELEVATE GPU benchmarks have two kinds of constraints:

* *known* constraints (divisibility between tile and work-group sizes, the
  work-group size limit) that BaCO handles through the Chain-of-Trees, and
* *hidden* constraints (shared-memory and register budgets) that only show up
  when the generated kernel fails to run.

This example tunes the MM_GPU benchmark twice — once with BaCO's
random-forest feasibility model enabled and once without — and reports how
many proposed configurations actually ran, illustrating the Fig. 10 result.

Run:  python examples/gpu_hidden_constraints.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import BacoTuner, get_benchmark
from repro.core.baco import BacoSettings


def run_variant(benchmark, use_feasibility_model: bool, seed: int = 0):
    settings = BacoSettings(
        use_feasibility_model=use_feasibility_model,
        gp_prior_samples=10,
        n_random_samples=192,
    )
    tuner = BacoTuner(benchmark.space, settings=settings, seed=seed)
    return tuner.tune(benchmark.evaluator, benchmark.small_budget, benchmark_name=benchmark.name)


def main() -> int:
    benchmark = get_benchmark("rise_mm_gpu")
    kernel = benchmark.evaluator

    print(f"benchmark : {benchmark.description}")
    print(f"space     : {benchmark.space.dimension} ordinal parameters, "
          f"{len(benchmark.space.constraints)} known constraints, hidden GPU resource limits")
    print(f"expert    : {benchmark.expert_value:.3f} ms, default: {benchmark.default_value:.3f} ms")

    # show what the hidden constraint looks like from the compiler's side
    too_big = dict(benchmark.expert_configuration)
    too_big.update({"ts0": 128, "ts1": 128, "tk": 64})
    print(f"\na schedule staging {kernel.shared_memory_bytes(too_big) / 1024:.0f} KiB of shared memory "
          f"(limit {kernel.machine.shared_memory_kib:.0f} KiB) fails at run time:")
    print(f"  evaluate(...) -> feasible={kernel.evaluate(too_big).feasible}")

    print(f"\ntuning with budget {benchmark.small_budget} ...")
    with_model = run_variant(benchmark, use_feasibility_model=True)
    without_model = run_variant(benchmark, use_feasibility_model=False)

    print("\n                         best [ms]   vs expert   feasible proposals")
    for label, history in (
        ("with feasibility model", with_model),
        ("without feasibility model", without_model),
    ):
        learning = [e for e in history if e.phase == "learning"]
        feasible = sum(1 for e in learning if e.feasible)
        relative = benchmark.expert_value / history.best_value()
        print(
            f"  {label:25s} {history.best_value():9.3f}   {relative:8.2f}x   "
            f"{feasible}/{len(learning)}"
        )

    print("\nThe feasibility model steers the search away from configurations that")
    print("would fail on the device, which is where its advantage comes from (Fig. 10).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
