#!/usr/bin/env python
"""FPGA design-space exploration (HPVM2FPGA-style workload).

HPVM2FPGA derives its parameter space automatically from the program IR:
one unroll factor per loop, one fusion flag per fusable kernel pair, one
privatization flag per candidate argument.  Most parameters are boolean and
the interesting structure is in the *hidden* constraints — designs that
exceed the device's LUT / DSP / BRAM budget or request incompatible fusions
simply fail synthesis.

This example explores the PreEuler benchmark, prints the resource usage of
the designs BaCO visits, and compares the final design against the default
(no transformations) and against exhaustive knowledge of the space.

Run:  python examples/fpga_design_space_exploration.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import BacoTuner, get_benchmark
from repro.core.baco import BacoSettings


def main() -> int:
    benchmark = get_benchmark("hpvm_preeuler")
    kernel = benchmark.evaluator
    device = kernel.machine

    print(f"benchmark : {benchmark.description}")
    print(f"device    : {device.name} ({device.luts} LUTs, {device.dsps} DSPs, {device.brams} BRAMs)")
    print(f"space     : {benchmark.space.dimension} parameters "
          f"({benchmark.space.dense_size():.0f} designs), no expert configuration (like the paper)")
    print(f"default   : {benchmark.default_value:.2f} ms (no transformations)")

    budget = benchmark.full_budget
    settings = BacoSettings(gp_prior_samples=10, n_random_samples=128)
    history = BacoTuner(benchmark.space, settings=settings, seed=0).tune(
        benchmark.evaluator, budget, benchmark_name=benchmark.name
    )

    best = history.best()
    usage = kernel.resource_usage(best.configuration)
    print(f"\nBaCO best design after {budget} evaluations: {best.value:.2f} ms "
          f"({benchmark.default_value / best.value:.2f}x faster than the default)")
    print("  flags:")
    for key, value in sorted(best.configuration.items()):
        print(f"    {key:20s} = {value}")
    print("  estimated resource usage:")
    print(f"    LUTs  : {usage['luts']:.0f} / {device.luts} ({usage['luts'] / device.luts:.0%})")
    print(f"    DSPs  : {usage['dsps']:.0f} / {device.dsps} ({usage['dsps'] / device.dsps:.0%})")
    print(f"    BRAMs : {usage['brams']:.0f} / {device.brams} ({usage['brams'] / device.brams:.0%})")

    infeasible = sum(1 for e in history if not e.feasible)
    print(f"\n{infeasible} of {len(history)} explored designs violated a hidden resource /")
    print("scheduling constraint; the feasibility model learned to avoid them online.")

    # the space is small enough to check how close BaCO got to the true optimum
    best_known = min(
        (kernel.evaluate(config) for config in benchmark.space.iter_dense()),
        key=lambda r: r.value if r.feasible else float("inf"),
    )
    print(f"\nexhaustive-search optimum: {best_known.value:.2f} ms "
          f"(BaCO reached {best_known.value / best.value:.1%} of it)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
