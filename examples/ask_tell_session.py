#!/usr/bin/env python
"""Ask/tell sessions: parallel evaluation, checkpointing, crash-safe resume.

Three short acts around one ``TuningSession`` (the inverted tuner loop):

1. **Manual ask/tell** — BaCO proposes a batch of configurations, a process
   pool evaluates them concurrently, and the results are told back in
   suggestion-id order (which keeps the trace deterministic for a fixed
   batch size).
2. **Checkpoint + crash** — the session is snapshotted to JSON mid-run and
   thrown away, simulating a crash.
3. **Resume** — a fresh tuner restores the snapshot and finishes the run;
   the script verifies the completed trace is bit-identical to an
   uninterrupted run with the same seed.

The same machinery powers the command line:

    PYTHONPATH=src python -m repro tune --benchmark hpvm_bfs --tuner BaCO \\
        --budget 16 --seed 7 --checkpoint /tmp/bfs.ckpt.json --eval-workers 4
    PYTHONPATH=src python -m repro tune --resume --checkpoint /tmp/bfs.ckpt.json

Run:  python examples/ask_tell_session.py
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.session import TuningSession, drive
from repro.experiments.runner import load_session, make_session, make_tuner, save_session
from repro.workloads.registry import get_benchmark

BENCHMARK = "hpvm_bfs"
TUNER = "BaCO"
BUDGET = 16
SEED = 7
INTERRUPT_AT = 8


def _evaluate(configuration):
    """A process-pool task: evaluate one configuration, timed."""
    benchmark = get_benchmark(BENCHMARK)
    started = time.perf_counter()
    result = benchmark.evaluator(configuration)
    return result, time.perf_counter() - started


def trace(history):
    return [(e.configuration, e.value, e.feasible, e.phase) for e in history]


def main() -> int:
    bench = get_benchmark(BENCHMARK)

    # -- act 1: ask a batch, evaluate it in parallel, tell in id order ------
    session, _ = make_session(BENCHMARK, TUNER, BUDGET, SEED)
    with ProcessPoolExecutor(max_workers=4) as pool:
        suggestions = session.ask(4)
        print(f"asked {len(suggestions)} suggestions "
              f"(phase={suggestions[0].phase}, ids={[s.id for s in suggestions]})")
        futures = [pool.submit(_evaluate, s.configuration) for s in suggestions]
        outcomes = [future.result() for future in futures]
    for suggestion, (result, elapsed) in sorted(
        zip(suggestions, outcomes), key=lambda pair: pair[0].id
    ):
        session.tell(suggestion, result, elapsed=elapsed)
    print(f"told {len(session.history)} results; "
          f"best so far: {session.history.best_value():.4g}\n")

    # -- act 2: run serially up to the "crash", checkpoint, discard ---------
    session, _ = make_session(BENCHMARK, TUNER, BUDGET, SEED)
    while len(session.history) < INTERRUPT_AT:
        [suggestion] = session.ask(1)
        session.tell(suggestion, bench.evaluator(suggestion.configuration))
    checkpoint = Path(tempfile.mkdtemp(prefix="repro-session-")) / "session.ckpt.json"
    save_session(session, checkpoint)
    size_kb = checkpoint.stat().st_size / 1024
    print(f"checkpointed at {INTERRUPT_AT}/{BUDGET} evaluations "
          f"({checkpoint}, {size_kb:.1f} KiB) — simulating a crash")
    del session

    # -- act 3: restore in a "new process" and verify bit-compatibility -----
    restored, _ = load_session(checkpoint)
    resumed = drive(restored, bench.evaluator)
    print(f"resumed and finished: {len(resumed)} evaluations, "
          f"best {resumed.best_value():.4g}")

    uninterrupted = make_tuner(TUNER, bench.space, SEED).tune(
        bench.evaluator, BUDGET, benchmark_name=bench.name
    )
    assert trace(resumed) == trace(uninterrupted), "resumed trace diverged!"
    print("resumed trace is bit-identical to an uninterrupted run ✓")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
