#!/usr/bin/env python
"""Compare all five autotuners on one benchmark (a miniature Fig. 7 panel).

Runs BaCO, ATF/OpenTuner, Ytopt, uniform sampling, and CoT sampling on a
chosen benchmark for a few repetitions and prints the average best-so-far
trajectory plus how many evaluations each tuner needed to reach expert-level
performance.

Run:  python examples/compare_autotuners.py [benchmark-name] [repetitions]
      (defaults: rise_scal_gpu, 3 repetitions)
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import evaluations_to_reach, mean_best_curve, relative_performance
from repro.experiments.runner import MAIN_TUNERS, run_benchmark
from repro.workloads import get_benchmark


def main() -> int:
    name = sys.argv[1] if len(sys.argv) > 1 else "rise_scal_gpu"
    repetitions = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    benchmark = get_benchmark(name)
    config = ExperimentConfig(repetitions=repetitions, budget_scale=0.5, use_cache=False)
    budget = config.scaled_budget(benchmark.full_budget)

    print(f"benchmark  : {benchmark.description}")
    print(f"budget     : {budget} evaluations x {repetitions} repetitions per tuner")
    if benchmark.has_expert:
        print(f"expert     : {benchmark.expert_value:.4f} ms")
    print(f"default    : {benchmark.default_value:.4f} ms")
    print("\nrunning — this evaluates the simulated compiler a few hundred times ...\n")

    results = run_benchmark(benchmark, MAIN_TUNERS, budget=budget, config=config)

    checkpoints = sorted({max(1, budget // 4), budget // 2, budget})
    header = "tuner".ljust(20) + "".join(f"@{c}".rjust(12) for c in checkpoints)
    header += "rel. to expert".rjust(18) + "evals to expert".rjust(18)
    print(header)
    print("-" * len(header))
    for tuner in MAIN_TUNERS:
        histories = results[tuner]
        curve = mean_best_curve(histories, budget)
        cells = "".join(f"{curve[c - 1]:12.4f}" for c in checkpoints)
        relative = relative_performance(benchmark, histories, budget)
        to_expert = (
            evaluations_to_reach(histories, benchmark.expert_value, budget)
            if benchmark.has_expert
            else float("nan")
        )
        to_expert_str = f"{to_expert:.0f}" if np.isfinite(to_expert) and to_expert < budget else "-"
        print(f"{tuner:20s}{cells}{relative:18.2f}{to_expert_str:>18s}")

    print("\n(values are runtimes in ms of the simulated kernel; 'rel. to expert' > 1")
    print(" means the tuner found a schedule faster than the expert configuration)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
