#!/usr/bin/env python
"""The concurrent TCP tuning server: named sessions, kill, resume.

Three acts around one :class:`repro.server.TuningServer`:

1. **Concurrent sessions** — a server starts on an ephemeral port with an
   autosave directory; two client threads each open a *named* session
   (different benchmarks, tuners, and seeds) and drive them halfway, their
   requests interleaving freely on the shared server.
2. **Kill** — the server shuts down, autosaving every session to the
   sessions directory, and the process-level state is thrown away.
3. **Resume** — a brand-new server on the same directory transparently
   reloads each session on the first request that names it; the clients
   finish their runs, and the script verifies both completed traces are
   bit-identical to uninterrupted serial in-process runs with the same
   seeds.

The same machinery powers the command line:

    PYTHONPATH=src python -m repro serve --tcp 7730 \\
        --sessions-dir /tmp/repro-sessions --max-sessions 16

Run:  python examples/tcp_tuning_service.py
"""

from __future__ import annotations

import sys
import tempfile
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.client import TuningClient
from repro.core.session import drive
from repro.experiments.runner import make_session
from repro.server import running_server
from repro.service import SessionRegistry
from repro.workloads.registry import get_benchmark

SESSIONS = {
    "bfs-uniform": dict(benchmark="hpvm_bfs", tuner="Uniform Sampling",
                        budget=12, seed=5),
    "bfs-cot": dict(benchmark="hpvm_bfs", tuner="CoT Sampling",
                    budget=10, seed=9),
}
INTERRUPT_AT = 5


def evaluation_trace(history_payload):
    return [(e["configuration"], e["value"], e["feasible"], e["phase"])
            for e in history_payload["evaluations"]]


def drive_partial(port: int, name: str, spec: dict, stop_after: int) -> None:
    """Client thread: start a named session and evaluate the first few asks."""
    bench = get_benchmark(spec["benchmark"])
    with TuningClient(port=port, session=name) as client:
        client.start(**spec)
        for _ in range(stop_after):
            [suggestion] = client.ask(1)["suggestions"]
            configuration = {
                k: (tuple(v) if isinstance(v, list) else v)
                for k, v in suggestion["configuration"].items()
            }
            result = bench.evaluator(configuration)
            client.tell(suggestion["id"], result.value, feasible=result.feasible)


def drive_to_completion(port: int, name: str, spec: dict, out: dict) -> None:
    """Client thread: resume a named session and finish it."""
    bench = get_benchmark(spec["benchmark"])
    with TuningClient(port=port, session=name) as client:
        client.drive(bench.evaluator)
        out[name] = client.snapshot()["snapshot"]["history"]


def main() -> int:
    sessions_dir = Path(tempfile.mkdtemp(prefix="repro-tcp-")) / "sessions"

    # -- act 1: two concurrent named sessions on one server -----------------
    registry = SessionRegistry(sessions_dir=sessions_dir, max_sessions=8)
    with running_server(registry) as server:
        print(f"server listening on 127.0.0.1:{server.port}")
        threads = [
            threading.Thread(target=drive_partial,
                             args=(server.port, name, spec, INTERRUPT_AT))
            for name, spec in SESSIONS.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with TuningClient(port=server.port) as client:
            for row in client.sessions()["active"]:
                print(f"  {row['session']}: {row['evaluations']}/{row['budget']} "
                      f"evaluations ({row['tuner']})")
    # leaving the context shuts the server down and autosaves every session
    saved = sorted(p.name for p in sessions_dir.iterdir())
    print(f"server killed; autosaved: {saved}\n")

    # -- act 2+3: a fresh server on the same directory resumes both runs ----
    registry = SessionRegistry(sessions_dir=sessions_dir, max_sessions=8)
    completed: dict[str, dict] = {}
    with running_server(registry) as server:
        threads = [
            threading.Thread(target=drive_to_completion,
                             args=(server.port, name, spec, completed))
            for name, spec in SESSIONS.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    # verify against uninterrupted serial in-process runs
    for name, spec in SESSIONS.items():
        bench = get_benchmark(spec["benchmark"])
        session, _ = make_session(spec["benchmark"], spec["tuner"],
                                  spec["budget"], spec["seed"])
        reference = drive(session, bench.evaluator)
        got = evaluation_trace(completed[name])
        want = evaluation_trace(reference.to_dict())
        assert got == want, f"{name}: TCP trace diverged from in-process run!"
        print(f"{name}: resumed over TCP, {len(got)} evaluations, "
              f"best {reference.best_value():.4g} — bit-identical ✓")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
