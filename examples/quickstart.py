#!/usr/bin/env python
"""Quickstart: autotune a black-box "compiler" with BaCO in ~40 evaluations.

This example defines a small mixed-type search space — an exponential tile
size, a parallelization scheme, an unroll factor, a loop-order permutation —
with one known constraint and one *hidden* constraint, then lets BaCO search
it.  It mirrors how you would attach BaCO to a real compiler: the objective
function is the only place where your toolchain is invoked.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import (
    BacoTuner,
    CategoricalParameter,
    Constraint,
    ObjectiveResult,
    OrdinalParameter,
    PermutationParameter,
    SearchSpace,
    UniformSamplingTuner,
)


def build_search_space() -> SearchSpace:
    """Tile size, unroll factor, schedule, and a 4-loop reordering."""
    parameters = [
        OrdinalParameter("tile", [4, 8, 16, 32, 64, 128, 256], transform="log", default=32),
        OrdinalParameter("unroll", [1, 2, 4, 8, 16], transform="log", default=1),
        CategoricalParameter("schedule", ["static", "dynamic", "guided"], default="static"),
        PermutationParameter("loop_order", 4),
    ]
    # known constraint: the unroll factor must divide the tile size
    constraints = [Constraint("tile % unroll == 0")]
    return SearchSpace(parameters, constraints)


def pretend_compiler(config) -> ObjectiveResult:
    """A stand-in for "compile, run, measure" — replace this with your toolchain.

    The model has a sweet spot around tile=64, unroll=8, dynamic scheduling,
    and the loop order (1, 0, 2, 3); tiles above 128 with unroll 16 blow the
    instruction cache and fail to "run" (a hidden constraint).
    """
    if config["tile"] >= 128 and config["unroll"] == 16:
        return ObjectiveResult(value=math.inf, feasible=False)

    runtime = 10.0
    runtime *= 1.0 + 0.3 * abs(math.log2(config["tile"]) - math.log2(64))
    runtime *= 1.0 + 0.15 * abs(math.log2(config["unroll"]) - 3)
    runtime *= {"static": 1.25, "dynamic": 1.0, "guided": 1.1}[config["schedule"]]
    best_order = (1, 0, 2, 3)
    displacement = sum((a - b) ** 2 for a, b in zip(config["loop_order"], best_order))
    runtime *= 1.0 + 0.05 * displacement
    return ObjectiveResult(value=runtime, feasible=True)


def main() -> int:
    space = build_search_space()
    print(f"search space: {space.dimension} parameters, "
          f"{space.feasible_size():.0f} of {space.dense_size():.0f} configurations feasible")

    budget = 40
    baco = BacoTuner(space, seed=0)
    history = baco.tune(pretend_compiler, budget=budget)

    best = history.best()
    print(f"\nBaCO best after {budget} evaluations: {best.value:.3f} ms")
    print(f"  configuration: {best.configuration}")
    print(f"  feasible evaluations: {history.n_feasible}/{len(history)}")

    random_history = UniformSamplingTuner(space, seed=0).tune(pretend_compiler, budget=budget)
    print(f"\nuniform random sampling best: {random_history.best_value():.3f} ms")
    improvement = random_history.best_value() / best.value
    print(f"BaCO found a configuration {improvement:.2f}x faster than random search")

    print("\nbest-so-far trajectory (BaCO):")
    for index, value in enumerate(history.best_so_far(), start=1):
        if index % 5 == 0 or index == 1:
            print(f"  after {index:3d} evaluations: {value:.3f} ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
