#!/usr/bin/env python
"""Autotuning sparse tensor algebra schedules (TACO-style workload).

This example reproduces, at a small scale, the workflow of the paper's TACO
evaluation: pick a sparse kernel and a matrix, let BaCO search the scheduling
space (tile sizes, OpenMP scheduling, unrolling, loop reordering), and compare
the result against the default and expert configurations and against
ATF/OpenTuner-style heuristic search.

It also demonstrates RQ4's "configuration insight": the best schedule BaCO
finds uses a *non-default loop order*, which is exactly the part of the space
the original experts did not explore.

Run:  python examples/taco_sparse_autotuning.py [benchmark-name]
      (default benchmark: taco_spmm_scircuit)
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import BacoTuner, OpenTunerLikeTuner, get_benchmark
from repro.core.baco import BacoSettings


def main() -> int:
    name = sys.argv[1] if len(sys.argv) > 1 else "taco_spmm_scircuit"
    benchmark = get_benchmark(name)
    if benchmark.framework != "TACO":
        raise SystemExit(f"{name} is not a TACO benchmark; try taco_spmm_scircuit")

    info = benchmark.describe()
    print(f"benchmark      : {benchmark.description}")
    print(f"parameters     : {info['dimension']} ({info['types']}), constraints: {info['constraints'] or 'none'}")
    print(f"space size     : {info['dense_size']:.2e} dense, {info['feasible_size']:.2e} feasible")
    print(f"default config : {benchmark.default_value * 1000:.3f} us")
    print(f"expert config  : {benchmark.expert_value * 1000:.3f} us (default loop order, tuned splits)")

    budget = benchmark.small_budget
    print(f"\nautotuning with a 'small' budget of {budget} evaluations ...")

    settings = BacoSettings(gp_prior_samples=10, n_random_samples=192)
    baco_history = BacoTuner(benchmark.space, settings=settings, seed=0).tune(
        benchmark.evaluator, budget, benchmark_name=benchmark.name
    )
    atf_history = OpenTunerLikeTuner(benchmark.space, seed=0).tune(
        benchmark.evaluator, budget, benchmark_name=benchmark.name
    )

    print("\nresults (lower is better):")
    for label, history in (("BaCO", baco_history), ("ATF/OpenTuner", atf_history)):
        best = history.best()
        relative = benchmark.expert_value / best.value
        marker = "beats expert" if relative >= 1.0 else f"{relative:.2f}x of expert"
        print(f"  {label:14s}: {best.value * 1000:9.3f} us   ({marker})")

    best = baco_history.best()
    print("\nBaCO's best schedule:")
    for key, value in sorted(best.configuration.items()):
        print(f"  {key:16s} = {value}")
    default_order = tuple(range(len(best.configuration["permutation"])))
    if tuple(best.configuration["permutation"]) != default_order:
        print("\nnote: the best schedule uses a non-default loop order — the part of the")
        print("space the original expert configurations never explored (paper RQ4).")

    reached = baco_history.evaluations_to_reach(benchmark.expert_value)
    if reached is not None:
        print(f"\nBaCO matched expert-level performance after {reached} evaluations.")
    else:
        print("\nBaCO did not reach expert-level performance within this budget;")
        print("try the full budget (benchmark.full_budget) or more repetitions.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
