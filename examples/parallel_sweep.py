#!/usr/bin/env python
"""Parallel sweep: fan a small experiment grid out over worker processes.

Enumerates the (benchmark, tuner, seed) cell grid for two HPVM2FPGA kernels
and two sampling baselines, executes it on a 2-worker process pool through
the experiment orchestrator, and prints the per-cell progress events plus a
best-value report from the cached histories.  Re-running the script is
(nearly) instant: every cell is already satisfied by the on-disk cache and
the sweep only replays "cached" events.

The same engine powers the command-line interface:

    PYTHONPATH=src python -m repro sweep --benchmarks hpvm_bfs hpvm_audio \\
        --tuners "Uniform Sampling" "CoT Sampling" --repetitions 2 --workers 2

Run:  python examples/parallel_sweep.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import mean_best_value
from repro.experiments.orchestrator import enumerate_cells, run_cells
from repro.experiments.reporting import format_cell_event, format_sweep_summary, format_table

BENCHMARKS = ("hpvm_bfs", "hpvm_audio")
TUNERS = ("Uniform Sampling", "CoT Sampling")


def main() -> int:
    cache_dir = Path(tempfile.mkdtemp(prefix="repro-sweep-"))
    config = ExperimentConfig(repetitions=2, cache_dir=cache_dir, workers=2)

    cells = enumerate_cells(BENCHMARKS, TUNERS, config)
    print(f"grid: {len(cells)} cells = {len(BENCHMARKS)} benchmarks "
          f"x {len(TUNERS)} tuners x {config.repetitions} seeds\n")

    result = run_cells(
        cells, config, on_event=lambda event: print(format_cell_event(event))
    )
    print("\n" + format_sweep_summary(result.counts, result.elapsed, config.workers))
    print(f"manifest: {result.manifest_file}\n")

    headers = ["Benchmark", *TUNERS]
    rows = []
    for benchmark in BENCHMARKS:
        row = [benchmark]
        for tuner in TUNERS:
            histories = [
                result.history(cell)
                for cell in cells
                if cell.benchmark == benchmark and cell.tuner == tuner
            ]
            row.append(mean_best_value(histories))
        rows.append(row)
    print(format_table(headers, rows, title="mean best value over seeds"))
    return 1 if result.failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
