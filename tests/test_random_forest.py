"""Tests for the from-scratch decision tree and random forests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.random_forest import (
    DecisionTree,
    RandomForestClassifier,
    RandomForestRegressor,
)


def _regression_data(rng, n=200):
    x = rng.uniform(-2, 2, size=(n, 3))
    y = np.where(x[:, 0] > 0, 3.0, -1.0) + 0.5 * x[:, 1]
    return x, y


def _classification_data(rng, n=200):
    x = rng.uniform(-1, 1, size=(n, 4))
    y = ((x[:, 0] + x[:, 1]) > 0).astype(float)
    return x, y


class TestDecisionTree:
    def test_fits_step_function(self, rng):
        x, y = _regression_data(rng)
        tree = DecisionTree(max_depth=6, max_features=None, rng=rng)
        tree.fit(x, y)
        predictions = tree.predict(x)
        assert np.mean((predictions - y) ** 2) < np.var(y)

    def test_depth_limit_respected(self, rng):
        x, y = _regression_data(rng)
        tree = DecisionTree(max_depth=2, max_features=None, rng=rng)
        tree.fit(x, y)
        assert tree.depth() <= 2

    def test_constant_targets_produce_leaf(self, rng):
        x = rng.uniform(size=(20, 2))
        tree = DecisionTree(rng=rng)
        tree.fit(x, np.full(20, 7.0))
        assert np.allclose(tree.predict(x), 7.0)
        assert tree.depth() == 0

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTree().predict(np.zeros((2, 2)))

    def test_shape_validation(self, rng):
        tree = DecisionTree(rng=rng)
        with pytest.raises(ValueError):
            tree.fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((0, 2)), np.zeros(0))

    def test_min_samples_leaf(self, rng):
        x, y = _regression_data(rng, n=30)
        tree = DecisionTree(min_samples_leaf=10, max_features=None, rng=rng)
        tree.fit(x, y)

        def leaf_sizes(node):
            if node.is_leaf():
                return [node.n_samples]
            return leaf_sizes(node.left) + leaf_sizes(node.right)

        assert min(leaf_sizes(tree._root)) >= 10


class TestRandomForestRegressor:
    def test_predictions_track_targets(self, rng):
        x, y = _regression_data(rng)
        forest = RandomForestRegressor(n_trees=16, rng=rng)
        forest.fit(x, y)
        predictions = forest.predict(x)
        assert np.corrcoef(predictions, y)[0, 1] > 0.9

    def test_uncertainty_is_nonnegative(self, rng):
        x, y = _regression_data(rng)
        forest = RandomForestRegressor(n_trees=8, rng=rng)
        forest.fit(x, y)
        _, variance = forest.predict_with_uncertainty(x[:10])
        assert np.all(variance >= 0)

    def test_generalizes_to_test_split(self, rng):
        x, y = _regression_data(rng, n=400)
        forest = RandomForestRegressor(n_trees=20, rng=rng)
        forest.fit(x[:300], y[:300])
        test_error = np.mean((forest.predict(x[300:]) - y[300:]) ** 2)
        assert test_error < np.var(y[300:])

    def test_requires_at_least_one_tree(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_trees=0)

    def test_empty_fit_rejected(self, rng):
        with pytest.raises(ValueError):
            RandomForestRegressor(rng=rng).fit(np.zeros((0, 3)), np.zeros(0))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.zeros((1, 2)))


class TestRandomForestClassifier:
    def test_probabilities_in_unit_interval(self, rng):
        x, y = _classification_data(rng)
        forest = RandomForestClassifier(n_trees=16, rng=rng)
        forest.fit(x, y)
        probabilities = forest.predict_proba(x)
        assert np.all(probabilities >= 0.0) and np.all(probabilities <= 1.0)

    def test_accuracy_on_separable_data(self, rng):
        x, y = _classification_data(rng, n=400)
        forest = RandomForestClassifier(n_trees=16, rng=rng)
        forest.fit(x[:300], y[:300])
        accuracy = np.mean(forest.predict(x[300:]) == y[300:])
        assert accuracy > 0.85

    def test_probability_ordering(self, rng):
        x, y = _classification_data(rng, n=300)
        forest = RandomForestClassifier(n_trees=16, rng=rng)
        forest.fit(x, y)
        clearly_positive = np.array([[0.9, 0.9, 0.0, 0.0]])
        clearly_negative = np.array([[-0.9, -0.9, 0.0, 0.0]])
        assert forest.predict_proba(clearly_positive)[0] > forest.predict_proba(clearly_negative)[0]

    def test_rejects_non_binary_targets(self, rng):
        x, _ = _classification_data(rng)
        forest = RandomForestClassifier(rng=rng)
        with pytest.raises(ValueError):
            forest.fit(x, np.full(len(x), 2.0))

    def test_reproducible_with_seeded_rng(self):
        x, y = _classification_data(np.random.default_rng(7), n=120)
        a = RandomForestClassifier(n_trees=8, rng=np.random.default_rng(11)).fit(x, y)
        b = RandomForestClassifier(n_trees=8, rng=np.random.default_rng(11)).fit(x, y)
        assert np.allclose(a.predict_proba(x), b.predict_proba(x))
