"""Tests for the from-scratch Gaussian process surrogate."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.models.gp import GaussianProcess, GPHyperparameters
from repro.models.priors import GammaPrior
from repro.space.parameters import (
    CategoricalParameter,
    OrdinalParameter,
    PermutationParameter,
    RealParameter,
)


def _parameters():
    return [
        OrdinalParameter("tile", [2, 4, 8, 16, 32, 64], transform="log"),
        CategoricalParameter("sched", ["a", "b"]),
    ]


def _dataset(rng, n=25):
    params = _parameters()
    configs = [{p.name: p.sample(rng) for p in params} for _ in range(n)]
    values = [
        2.0 + abs(math.log2(c["tile"]) - 3.0) + (0.5 if c["sched"] == "b" else 0.0)
        for c in configs
    ]
    return params, configs, values


class TestHyperparameters:
    def test_vector_roundtrip(self):
        hp = GPHyperparameters(np.array([0.5, 2.0]), 1.5, 0.01)
        restored = GPHyperparameters.from_vector(hp.to_vector())
        assert np.allclose(restored.lengthscales, hp.lengthscales)
        assert restored.outputscale == pytest.approx(hp.outputscale)
        assert restored.noise_variance == pytest.approx(hp.noise_variance)


class TestFitting:
    def test_requires_two_observations(self, rng):
        params, configs, values = _dataset(rng)
        gp = GaussianProcess(params, rng=rng)
        with pytest.raises(ValueError):
            gp.fit(configs[:1], values[:1])

    def test_length_mismatch_rejected(self, rng):
        params, configs, values = _dataset(rng)
        gp = GaussianProcess(params, rng=rng)
        with pytest.raises(ValueError):
            gp.fit(configs, values[:-1])

    def test_predict_before_fit_raises(self, rng):
        params, configs, _ = _dataset(rng)
        gp = GaussianProcess(params, rng=rng)
        with pytest.raises(RuntimeError):
            gp.predict(configs[:2])

    def test_fit_sets_hyperparameters(self, rng):
        params, configs, values = _dataset(rng)
        gp = GaussianProcess(params, rng=rng)
        gp.fit(configs, values)
        assert gp.is_fitted
        assert gp.hyperparameters.lengthscales.shape == (2,)
        assert gp.hyperparameters.noise_variance > 0

    def test_log_transform_requires_positive_targets(self, rng):
        params, configs, values = _dataset(rng)
        gp = GaussianProcess(params, log_transform_output=True, rng=rng)
        bad = list(values)
        bad[0] = -1.0
        with pytest.raises(ValueError):
            gp.fit(configs, bad)

    def test_unknown_kernel_rejected(self, rng):
        with pytest.raises(ValueError):
            GaussianProcess(_parameters(), kernel="bogus")


class TestPrediction:
    def test_interpolates_training_data(self, rng):
        params, configs, values = _dataset(rng, n=20)
        gp = GaussianProcess(params, rng=rng)
        gp.fit(configs, values)
        mean, _ = gp.predict(configs)
        predicted = gp.from_model_scale(mean)
        # noise is small, so predictions at training points track the targets
        correlation = np.corrcoef(predicted, values)[0, 1]
        assert correlation > 0.95

    def test_noiseless_variance_small_at_training_points(self, rng):
        params, configs, values = _dataset(rng, n=20)
        gp = GaussianProcess(params, rng=rng)
        gp.fit(configs, values)
        _, var_noiseless = gp.predict(configs, include_noise=False)
        _, var_noisy = gp.predict(configs, include_noise=True)
        assert np.all(var_noisy >= var_noiseless)
        assert var_noiseless.mean() < var_noisy.mean()

    def test_uncertainty_larger_away_from_data(self, rng):
        params = [OrdinalParameter("tile", [2, 4, 8, 16, 32, 64, 128, 256], transform="log")]
        configs = [{"tile": v} for v in (2, 4, 8)]
        values = [1.0, 2.0, 3.0]
        gp = GaussianProcess(params, log_transform_output=False, rng=rng)
        gp.fit(configs, values)
        _, var_near = gp.predict([{"tile": 4}])
        _, var_far = gp.predict([{"tile": 256}])
        assert var_far[0] > var_near[0]

    def test_generalization_better_than_mean_predictor(self, rng):
        params, configs, values = _dataset(rng, n=40)
        train_c, test_c = configs[:30], configs[30:]
        train_v, test_v = values[:30], values[30:]
        gp = GaussianProcess(params, rng=rng)
        gp.fit(train_c, train_v)
        mean, _ = gp.predict(test_c)
        predictions = gp.from_model_scale(mean)
        gp_error = np.mean((np.asarray(predictions) - np.asarray(test_v)) ** 2)
        baseline_error = np.mean((np.mean(train_v) - np.asarray(test_v)) ** 2)
        assert gp_error < baseline_error

    def test_model_scale_roundtrip(self, rng):
        params, configs, values = _dataset(rng)
        gp = GaussianProcess(params, rng=rng)
        gp.fit(configs, values)
        raw = np.array([0.5, 1.0, 4.0])
        assert np.allclose(gp.from_model_scale(gp.to_model_scale(raw)), raw)

    def test_permutation_parameter_supported(self, rng):
        params = [PermutationParameter("perm", 4, metric="spearman")]
        perms = [tuple(rng.permutation(4)) for _ in range(15)]
        configs = [{"perm": p} for p in perms]
        values = [1.0 + sum(i * v for i, v in enumerate(p)) for p in perms]
        gp = GaussianProcess(params, log_transform_output=False, rng=rng)
        gp.fit(configs, values)
        mean, var = gp.predict(configs[:5])
        assert mean.shape == (5,) and var.shape == (5,)
        assert np.all(var > 0)


class TestVariants:
    def test_simple_fit_variant(self, rng):
        """BaCO--'s non-refined fit still produces a usable model."""
        params, configs, values = _dataset(rng, n=20)
        gp = GaussianProcess(params, advanced_fit=False, rng=rng)
        gp.fit(configs, values)
        mean, _ = gp.predict(configs)
        assert np.corrcoef(gp.from_model_scale(mean), values)[0, 1] > 0.8

    def test_no_priors_variant(self, rng):
        params, configs, values = _dataset(rng, n=20)
        gp = GaussianProcess(params, lengthscale_prior=None, rng=rng)
        gp.fit(configs, values)
        assert gp.is_fitted

    def test_rbf_kernel_variant(self, rng):
        params, configs, values = _dataset(rng, n=15)
        gp = GaussianProcess(params, kernel="rbf", rng=rng)
        gp.fit(configs, values)
        assert gp.is_fitted

    def test_no_output_transforms(self, rng):
        params, configs, values = _dataset(rng, n=15)
        gp = GaussianProcess(params, log_transform_output=False, standardize_output=False, rng=rng)
        gp.fit(configs, values)
        mean, _ = gp.predict(configs)
        assert np.corrcoef(mean, values)[0, 1] > 0.8

    def test_constant_targets_handled(self, rng):
        params, configs, _ = _dataset(rng, n=10)
        gp = GaussianProcess(params, rng=rng)
        gp.fit(configs, [3.0] * len(configs))
        mean, _ = gp.predict(configs[:3])
        assert np.allclose(gp.from_model_scale(mean), 3.0, rtol=0.2)
