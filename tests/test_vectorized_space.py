"""Tests for the vectorized feasibility & candidate-generation engine.

Guards for the three layers introduced by the row-space refactor:

* **Compiled constraints** — every expression constraint compiles to a numpy
  column evaluator that must agree with the scalar ``evaluate`` oracle on all
  full configurations (plus the applicability edge cases around missing
  variables, and the frozen eval namespace of the scalar path);
* **Chain-of-Trees leaf caches** — the materialized leaf list and the
  vectorized leaf-index samplers are cached once and stay consistent with
  the recursive reference walks (trees are immutable after build);
* **Row-space search-space API** — ``sample_rows`` / ``feasible_mask_rows`` /
  ``neighbour_rows_batch`` agree with the scalar dict paths, pinned both on
  hand-built spaces and on hypothesis-randomized R/I/O/C/P spaces.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space import (
    CategoricalParameter,
    Constraint,
    IntegerParameter,
    OrdinalParameter,
    PermutationParameter,
    RealParameter,
    SearchSpace,
)
from repro.space.constraints import _SCALAR_GLOBALS, compile_column_evaluator


def _mixed_params():
    return [
        OrdinalParameter("p1", [2, 4, 8, 16, 32], transform="log"),
        OrdinalParameter("p2", [2, 4, 8, 16], transform="log"),
        IntegerParameter("w", 1, 12),
        RealParameter("alpha", 0.1, 10.0, transform="log"),
        CategoricalParameter("sched", ["static", "dynamic", "guided"]),
        PermutationParameter("order", 3),
    ]


def _mixed_space() -> SearchSpace:
    return SearchSpace(
        _mixed_params(),
        [
            Constraint("p1 >= p2"),
            Constraint("p1 % p2 == 0"),
            Constraint("w <= 8 or alpha >= 1.0"),
        ],
    )


def _dense_random_configs(params, n, seed):
    rng = np.random.default_rng(seed)
    return [{p.name: p.sample(rng) for p in params} for _ in range(n)]


# ---------------------------------------------------------------------------
# compiled constraints vs the scalar oracle
# ---------------------------------------------------------------------------

class TestCompiledConstraints:
    EXPRESSIONS = [
        "a >= b",
        "a % b == 0",
        "a * b <= 1024",
        "log2(a) >= 2",
        "sqrt(a) < b",
        "min(a, b) >= 2 and max(a, b) <= 512",
        "a in (2, 4, 8)",
        "b not in (3, 5)",
        "not (a < b)",
        "a - b > -100 and (a + b) % 2 == 0",
        "a // b >= 1 or b // a >= 1",
        "(a if a > b else b) >= 4",
        "2 <= a <= 512",
        "abs(a - b) <= 1000",
        "pow(a, 2) >= b",
        "floor(a / b) == a // b",
        "ceil(a / b) >= a // b",
    ]

    @pytest.mark.parametrize("expression", EXPRESSIONS)
    def test_agrees_with_scalar_oracle(self, expression):
        constraint = Constraint(expression)
        rng = np.random.default_rng(7)
        a = rng.integers(1, 513, size=200).astype(float)
        b = rng.integers(1, 513, size=200).astype(float)
        compiled = constraint.compile_columns()
        got = compiled({"a": a, "b": b})
        want = [
            constraint.evaluate({"a": int(x), "b": int(y)}) for x, y in zip(a, b)
        ]
        assert got.dtype == bool
        assert got.tolist() == want

    def test_string_and_membership_columns(self):
        constraint = Constraint("mode in ('fast', 'exact') and tile >= 8")
        modes = np.empty(4, dtype=object)
        modes[:] = ["fast", "slow", "exact", "exact"]
        tiles = np.asarray([8.0, 8.0, 4.0, 16.0])
        got = constraint.compile_columns()({"mode": modes, "tile": tiles})
        want = [
            constraint.evaluate({"mode": m, "tile": int(t)})
            for m, t in zip(modes, tiles)
        ]
        assert got.tolist() == want

    def test_permutation_tuple_columns(self):
        constraint = Constraint("perm == (0, 1, 2) or perm[0] == 2")
        perms = np.empty(4, dtype=object)
        perms[:] = [(0, 1, 2), (2, 1, 0), (1, 0, 2), (2, 0, 1)]
        got = constraint.compile_columns()({"perm": perms})
        want = [constraint.evaluate({"perm": p}) for p in perms]
        assert got.tolist() == want

    def test_callable_constraints_fall_back_to_scalar(self):
        constraint = Constraint.from_callable(
            lambda cfg: cfg["x"] * cfg["y"] <= 6, ["x", "y"]
        )
        assert constraint.compile_columns() is None
        evaluator = compile_column_evaluator(constraint)
        x = np.asarray([1.0, 2.0, 3.0])
        y = np.asarray([2.0, 3.0, 4.0])
        assert evaluator({"x": x, "y": y}).tolist() == [True, True, False]

    def test_compiled_evaluator_is_cached(self):
        constraint = Constraint("a >= b")
        assert constraint.compile_columns() is constraint.compile_columns()

    # -- applicability edge cases ---------------------------------------

    def test_missing_variable_raises_keyerror_in_both_paths(self):
        constraint = Constraint("a >= b")
        with pytest.raises(KeyError):
            constraint.evaluate({"a": 1})
        with pytest.raises(KeyError):
            constraint.compile_columns()({"a": np.asarray([1.0])})

    def test_is_applicable_tracks_missing_variables(self):
        constraint = Constraint("a >= b")
        assert not constraint.is_applicable({"a": 1})
        assert constraint.is_applicable({"a": 1, "b": 2})
        # extra variables are fine in both paths
        assert constraint.evaluate({"a": 2, "b": 1, "c": 99})
        mask = constraint.compile_columns()(
            {"a": np.asarray([2.0]), "b": np.asarray([1.0]), "c": np.asarray([99.0])}
        )
        assert mask.tolist() == [True]

    def test_scalar_namespace_is_frozen_and_not_rebuilt(self):
        snapshot = dict(_SCALAR_GLOBALS)
        constraint = Constraint("a >= b")
        assert constraint.evaluate({"a": 2, "b": 1})
        assert not constraint.evaluate({"a": 1, "b": 2})
        # evaluate must not leak configuration variables into the shared dict
        assert dict(_SCALAR_GLOBALS) == snapshot
        assert "a" not in _SCALAR_GLOBALS and "__builtins__" in _SCALAR_GLOBALS


# ---------------------------------------------------------------------------
# Chain-of-Trees leaf caches
# ---------------------------------------------------------------------------

class TestLeafCaches:
    def _tree(self):
        from repro.space.chain_of_trees import Tree

        return Tree(
            [OrdinalParameter("a", [1, 2]), OrdinalParameter("b", [1, 2, 3, 4])],
            [Constraint("b >= a * a")],
        )

    def test_leaves_materialized_once(self, monkeypatch):
        tree = self._tree()
        calls = {"n": 0}
        original = type(tree)._materialize_leaves

        def counting(self):
            calls["n"] += 1
            original(self)

        monkeypatch.setattr(type(tree), "_materialize_leaves", counting)
        first = tree.leaves()
        for _ in range(5):
            assert tree.leaves() is first
            list(tree.iter_leaves())
            tree.sample_leaf_indices(np.random.default_rng(0), 3)
        assert calls["n"] == 1

    def test_cache_matches_recursive_walk_and_counts(self):
        tree = self._tree()
        leaves = tree.leaves()
        assert len(leaves) == tree.n_feasible
        keys = {tuple(sorted(leaf.items())) for leaf in leaves}
        assert len(keys) == len(leaves)
        for leaf in leaves:
            assert leaf["b"] >= leaf["a"] * leaf["a"]
        # iter_leaves yields copies: mutating them must not corrupt the cache
        for leaf in tree.iter_leaves():
            leaf["a"] = -1
        assert tree.leaves() is leaves
        assert all(leaf["a"] in (1, 2) for leaf in leaves)

    def test_uniform_indices_cover_all_leaves(self):
        tree = self._tree()
        rng = np.random.default_rng(3)
        indices = tree.sample_leaf_indices(rng, 2000)
        counts = np.bincount(indices, minlength=tree.n_feasible)
        assert (counts > 0).all()
        assert abs(counts.max() / counts.min() - 1.0) < 0.5

    def test_biased_indices_match_sample_path_distribution(self):
        tree = self._tree()
        rng = np.random.default_rng(4)
        n = 4000
        indices = tree.sample_leaf_indices(rng, n, biased=True)
        leaves = tree.leaves()
        hits = sum(1 for i in indices if leaves[i]["a"] == 2)
        # a=2 admits a single leaf reached with per-level probability 1/2
        assert abs(hits / n - 0.5) < 0.05


# ---------------------------------------------------------------------------
# row-space SearchSpace API
# ---------------------------------------------------------------------------

class TestRowSpaceAPI:
    def test_encode_columns_bit_identical_to_encode_batch(self):
        params = _mixed_params()
        space = SearchSpace(params)
        rng = np.random.default_rng(9)
        columns = {p.name: p.sample_batch(rng, 100) for p in params}
        rows = space.encoder.encode_columns(columns)
        configs = [
            {
                p.name: (
                    tuple(int(v) for v in columns[p.name][i])
                    if isinstance(p, PermutationParameter)
                    else p.canonical(columns[p.name][i])
                    if hasattr(p, "canonical") and not isinstance(p, RealParameter)
                    else columns[p.name][i]
                )
                for p in params
            }
            for i in range(100)
        ]
        assert np.array_equal(rows, space.encode_batch(configs))

    def test_encode_columns_rejects_ragged_input(self):
        space = SearchSpace(_mixed_params())
        rng = np.random.default_rng(9)
        columns = {p.name: p.sample_batch(rng, 4) for p in space.parameters}
        columns["w"] = columns["w"][:3]
        with pytest.raises(ValueError):
            space.encoder.encode_columns(columns)

    def test_evaluate_rows_supports_duck_typed_feasibility_models(self):
        """Regression: models without an ``encoder`` attribute (the dict-only
        surface ``__call__`` already supports) must work in row space too."""
        from repro.core.acquisition import AcquisitionFunction

        space = SearchSpace(_mixed_params())
        rng = np.random.default_rng(4)

        class StubModel:
            def to_model_scale(self, value):
                return value

            def predict(self, configs, include_noise=False):
                n = len(configs)
                return np.zeros(n), np.ones(n)

        class StubFeasibility:
            is_trained = True

            def predict_probability(self, configs):
                return np.full(len(configs), 0.5)

        acquisition = AcquisitionFunction(
            StubModel(), best_value=1.0, feasibility_model=StubFeasibility()
        )
        rows = space.sample_rows(rng, 5)
        values = acquisition.evaluate_rows(rows, space.encoder)
        assert values.shape == (5,)
        assert np.array_equal(
            values, acquisition([space.encoder.decode(r) for r in rows])
        )

    def test_sample_rows_are_feasible_and_decodable(self):
        space = _mixed_space()
        rng = np.random.default_rng(0)
        rows = space.sample_rows(rng, 200)
        assert rows.shape == (200, space.encoder.width)
        assert space.feasible_mask_rows(rows).all()
        for row in rows:
            assert space.is_feasible(space.encoder.decode(row))

    def test_feasible_mask_matches_is_feasible_on_dense_draws(self):
        space = _mixed_space()
        configs = _dense_random_configs(space.parameters, 300, seed=5)
        mask = space.feasible_mask_rows(space.encode_batch(configs))
        want = np.asarray([space.is_feasible(c) for c in configs])
        assert want.any() and not want.all()  # the draw must exercise both sides
        assert np.array_equal(mask, want)

    def test_feasible_mask_rejects_corrupt_rows(self):
        space = _mixed_space()
        rows = space.sample_rows(np.random.default_rng(1), 4)
        rows[0, space.encoder.columns("p1").start] = 1.234  # not a legal warp
        rows[1, space.encoder.columns("sched").start] = 9.0  # out-of-range index
        rows[2, space.encoder.columns("order")] = [0.0, 0.0, 2.0]  # not a perm
        mask = space.feasible_mask_rows(rows)
        assert mask.tolist() == [False, False, False, True]

    def test_sample_matches_reference_distribution(self):
        space = SearchSpace(
            [
                OrdinalParameter("p1", [2, 4, 8]),
                OrdinalParameter("p2", [2, 4, 8]),
                CategoricalParameter("c", ["x", "y"]),
            ],
            [Constraint("p1 >= p2")],
        )
        rng_rows = np.random.default_rng(11)
        rng_ref = np.random.default_rng(12)
        n = 6000
        vector_counts: dict[tuple, int] = {}
        for config in space.sample(rng_rows, n):
            key = space.freeze(config)
            vector_counts[key] = vector_counts.get(key, 0) + 1
        reference_counts: dict[tuple, int] = {}
        for config in space.sample_reference(rng_ref, n):
            key = space.freeze(config)
            reference_counts[key] = reference_counts.get(key, 0) + 1
        assert set(vector_counts) == set(reference_counts)
        for key, count in vector_counts.items():
            assert abs(count - reference_counts[key]) < 0.35 * (n / len(vector_counts))

    def test_sample_reference_remains_the_scalar_oracle(self):
        space = _mixed_space()
        rng = np.random.default_rng(2)
        for config in space.sample_reference(rng, 25):
            assert space.is_feasible(config)

    def test_neighbour_rows_match_dict_neighbours(self):
        space = _mixed_space()
        rng = np.random.default_rng(3)
        rows = space.sample_rows(rng, 8)
        batch, owners = space.neighbour_rows_batch(rows)
        assert space.feasible_mask_rows(batch).all()
        decode = space.encoder.decode
        for i, row in enumerate(rows):
            config = decode(row)
            want = sorted(
                space.freeze(n) for n in space.neighbours(config, feasible_only=True)
            )
            got = sorted(space.freeze(decode(r)) for r in batch[owners == i])
            assert len(got) == len(want)
            # real-valued entries can drift one ulp through the row round
            # trip; every discrete coordinate must match exactly
            for got_key, want_key in zip(got, want):
                for g, w, param in zip(got_key, want_key, space.parameters):
                    if isinstance(param, RealParameter):
                        assert g == pytest.approx(w, rel=1e-12)
                    else:
                        assert g == w


# ---------------------------------------------------------------------------
# property-based equivalence on randomized R/I/O/C/P spaces
# ---------------------------------------------------------------------------

_ordinal_values = st.lists(
    st.integers(min_value=1, max_value=64), min_size=2, max_size=5, unique=True
)


@st.composite
def riocp_spaces(draw):
    """Random spaces covering all five parameter types with real constraints."""
    parameters = [
        RealParameter("r", 0.5, 4.0),
        IntegerParameter("i", 1, draw(st.integers(3, 10))),
        OrdinalParameter("o", draw(_ordinal_values)),
        CategoricalParameter("c", ["x", "y", "z"][: draw(st.integers(2, 3))]),
        PermutationParameter("p", draw(st.integers(2, 3))),
    ]
    constraints = []
    expression_pool = [
        "o >= i",
        "o % 2 == 0 or i <= 3",
        "i * o <= 64",
        "r >= 1.0 or o <= 32",
    ]
    for expression in expression_pool:
        if draw(st.booleans()):
            constraints.append(Constraint(expression))
    space = SearchSpace(parameters, constraints)
    # keep only satisfiable spaces: a feasible witness must exist
    try:
        space.sample_reference(np.random.default_rng(0), 1, max_rejection_rounds=200)
    except RuntimeError:
        return SearchSpace(parameters, [])
    return space


@given(riocp_spaces(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_row_mask_equals_scalar_feasibility(space, seed):
    """Property: feasible_mask_rows(encode_batch(cfgs)) == scalar is_feasible."""
    configs = _dense_random_configs(space.parameters, 40, seed)
    mask = space.feasible_mask_rows(space.encode_batch(configs))
    want = np.asarray([space.is_feasible(c) for c in configs])
    assert np.array_equal(mask, want)


@given(riocp_spaces(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_sample_rows_decode_to_feasible_configurations(space, seed):
    """Property: every sampled row decodes to a configuration the space accepts."""
    rng = np.random.default_rng(seed)
    rows = space.sample_rows(rng, 8)
    assert space.feasible_mask_rows(rows).all()
    for row in rows:
        config = space.encoder.decode(row)
        assert space.is_feasible(config)
        assert np.array_equal(space.encode(config), row)
