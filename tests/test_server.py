"""Tests for the concurrent multi-session tuning server.

Covers the registry (named sessions, per-session locking, LRU eviction with
autosave, transparent reload), the TCP framing layer, the blocking client,
and the acceptance guarantee: concurrent clients driving distinct named
sessions over TCP produce traces bit-identical to serial in-process runs,
and a server kill/restart with a sessions directory resumes every session
without losing or changing an evaluation.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.client import ServiceError, TuningClient
from repro.core.session import drive
from repro.experiments.runner import make_session
from repro.server import running_server
from repro.service import DEFAULT_SESSION, SessionRegistry
from repro.workloads.registry import get_benchmark

BENCH = "hpvm_bfs"


def start_request(**overrides):
    request = {
        "op": "start",
        "benchmark": BENCH,
        "tuner": "Uniform Sampling",
        "budget": 6,
        "seed": 2,
    }
    request.update(overrides)
    return request


def reference_history(tuner: str, seed: int, budget: int) -> dict:
    """The serial in-process trace for one (tuner, seed, budget) cell."""
    bench = get_benchmark(BENCH)
    session, _ = make_session(BENCH, tuner, budget, seed)
    drive(session, bench.evaluator)
    return session.snapshot()["history"]


class TestRegistryRouting:
    def test_sessions_are_isolated_by_name(self):
        registry = SessionRegistry(max_sessions=4)
        assert registry.handle(start_request(session="a", seed=1))["ok"]
        assert registry.handle(start_request(session="b", seed=2))["ok"]
        asked = registry.handle({"op": "ask", "session": "a", "n": 2})
        assert len(asked["suggestions"]) == 2
        # telling into "b" with "a"'s suggestion id fails; "a" still works
        assert not registry.handle({"op": "tell", "session": "b", "id": 0, "value": 1.0})["ok"]
        assert registry.handle({"op": "tell", "session": "a", "id": 0, "value": 1.0})["ok"]
        assert registry.handle({"op": "status", "session": "a"})["evaluations"] == 1
        assert registry.handle({"op": "status", "session": "b"})["evaluations"] == 0

    def test_default_session_name(self):
        registry = SessionRegistry(max_sessions=2)
        assert registry.handle(start_request())["ok"]
        listing = registry.handle({"op": "sessions"})
        assert [row["session"] for row in listing["active"]] == [DEFAULT_SESSION]

    def test_registry_full_without_sessions_dir(self):
        registry = SessionRegistry(max_sessions=1)
        assert registry.handle(start_request(session="a"))["ok"]
        response = registry.handle(start_request(session="b"))
        assert response["ok"] is False
        assert "full" in response["error"] and "sessions-dir" in response["error"]
        # replacing a *finished* same-name session is not an admission
        assert not registry.handle(start_request(session="a"))["ok"]  # active

    def test_close_then_reuse_name(self):
        registry = SessionRegistry(max_sessions=1)
        assert registry.handle(start_request(session="a"))["ok"]
        closed = registry.handle({"op": "close", "session": "a"})
        assert closed["ok"] and closed["saved"] is None
        assert registry.handle(start_request(session="b"))["ok"]


class TestLruEvictionAndReload:
    def test_eviction_autosaves_and_reload_is_transparent(self, tmp_path):
        registry = SessionRegistry(sessions_dir=tmp_path, max_sessions=2)
        for name, seed in [("a", 1), ("b", 2), ("c", 3)]:
            assert registry.handle(start_request(session=name, seed=seed))["ok"]
        # "a" (least recently used) was evicted to disk
        listing = registry.handle({"op": "sessions"})
        assert sorted(row["session"] for row in listing["active"]) == ["b", "c"]
        assert listing["autosaved"] == ["a"]
        assert (tmp_path / "a.ckpt.json").exists()

        # an op naming "a" reloads it (and evicts the new LRU, "b")
        asked = registry.handle({"op": "ask", "session": "a"})
        assert asked["ok"] and len(asked["suggestions"]) == 1
        listing = registry.handle({"op": "sessions"})
        assert sorted(row["session"] for row in listing["active"]) == ["a", "c"]
        assert listing["autosaved"] == ["b"]

    def test_evicted_session_trace_is_unchanged(self, tmp_path):
        """Eviction + reload round-trips through save_session/load_session
        without losing or changing an evaluation."""
        registry = SessionRegistry(sessions_dir=tmp_path, max_sessions=1)
        bench = get_benchmark(BENCH)
        assert registry.handle(start_request(session="a", seed=7, budget=8))["ok"]

        def step(name):
            asked = registry.handle({"op": "ask", "session": name})
            [entry] = asked["suggestions"]
            configuration = {
                k: (tuple(v) if isinstance(v, list) else v)
                for k, v in entry["configuration"].items()
            }
            result = bench.evaluator(configuration)
            fields = {"feasible": result.feasible}
            if result.feasible:
                fields["value"] = result.value
            told = registry.handle(
                {"op": "tell", "session": name, "id": entry["id"], **fields}
            )
            assert told["ok"], told

        for i in range(4):
            step("a")
            if i == 1:  # force an eviction/reload cycle mid-run
                assert registry.handle(start_request(session="bump", seed=0))["ok"]
                assert registry.handle({"op": "close", "session": "bump"})["ok"]
        for _ in range(4):
            step("a")

        from repro.service import wire_decode

        got = wire_decode(registry.handle({"op": "snapshot", "session": "a"})["snapshot"])
        expected = reference_history("Uniform Sampling", 7, 8)
        assert got["history"]["evaluations"] == expected["evaluations"]

    def test_custom_path_snapshot_does_not_disable_autosave(self, tmp_path):
        """Regression: a snapshot to a caller-supplied path must not mark
        the entry clean — shutdown still has to write the registry's own
        autosave file, or kill/resume silently loses evaluations."""
        sessions_dir = tmp_path / "sessions"
        registry = SessionRegistry(sessions_dir=sessions_dir, max_sessions=4)
        assert registry.handle(start_request(session="a"))["ok"]
        registry.handle({"op": "ask", "session": "a"})
        registry.handle({"op": "tell", "session": "a", "id": 0, "value": 2.0})
        custom = tmp_path / "elsewhere.ckpt.json"
        assert registry.handle(
            {"op": "snapshot", "session": "a", "path": str(custom)}
        )["ok"]
        assert custom.exists()
        registry.handle({"op": "shutdown"})
        autosave = sessions_dir / "a.ckpt.json"
        assert autosave.exists()
        assert json.loads(autosave.read_text())["history"]["evaluations"]

    def test_close_reports_only_existing_checkpoints(self):
        registry = SessionRegistry(max_sessions=2)
        assert registry.handle(start_request(session="a"))["ok"]
        closed = registry.handle({"op": "close", "session": "a"})
        assert closed["ok"] and closed["saved"] is None

    def test_shutdown_autosaves_every_dirty_session(self, tmp_path):
        registry = SessionRegistry(sessions_dir=tmp_path, max_sessions=4)
        registry.handle(start_request(session="a"))
        registry.handle(start_request(session="b"))
        response = registry.handle({"op": "shutdown"})
        assert response["ok"] and response["stopping"]
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "a.ckpt.json", "b.ckpt.json",
        ]
        assert not registry.running


class TestTcpServer:
    def test_roundtrip_and_client_errors(self):
        registry = SessionRegistry(max_sessions=4)
        with running_server(registry) as server:
            with TuningClient(port=server.port, session="s") as client:
                started = client.start(benchmark=BENCH, budget=4,
                                       tuner="Uniform Sampling", seed=0)
                assert started["benchmark"] == BENCH
                asked = client.ask(2)
                assert len(asked["suggestions"]) == 2
                client.tell(0, 2.0)
                client.tell(1, feasible=False)
                status = client.status()
                assert status["evaluations"] == 2 and status["best_value"] == 2.0
                with pytest.raises(ServiceError, match="unknown op"):
                    client.request("frobnicate")
                with pytest.raises(ServiceError, match="in-flight|active"):
                    client.start(benchmark=BENCH, budget=4)

    def test_malformed_lines_do_not_kill_the_connection(self):
        registry = SessionRegistry(max_sessions=4)
        with running_server(registry) as server:
            with TuningClient(port=server.port) as client:
                # raw garbage through the same socket, bypassing the client's
                # json encoding
                client._file.write(b"{not json\n")
                client._file.flush()
                raw = client._file.readline()
                response = json.loads(raw)
                assert response["ok"] is False
                # the connection (and registry) still serve afterwards
                assert client.sessions()["ok"]

    def test_shutdown_op_stops_the_server(self):
        registry = SessionRegistry(max_sessions=4)
        with running_server(registry) as server:
            with TuningClient(port=server.port) as client:
                assert client.shutdown()["stopping"]
            assert not registry.running

    def test_concurrent_named_sessions_bit_identical(self):
        """Acceptance: two clients, two named sessions, one server — each
        trace equals the serial in-process run with the same seed."""
        cells = {
            "uniform-5": ("Uniform Sampling", 5, 10),
            "cot-9": ("CoT Sampling", 9, 10),
        }
        bench = get_benchmark(BENCH)
        registry = SessionRegistry(max_sessions=4)
        traces: dict[str, dict] = {}
        errors: list[BaseException] = []

        def worker(name, tuner, seed, budget):
            try:
                with TuningClient(port=port, session=name) as client:
                    client.start(benchmark=BENCH, tuner=tuner, budget=budget,
                                 seed=seed)
                    client.drive(bench.evaluator)
                    traces[name] = client.snapshot()["snapshot"]["history"]
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        with running_server(registry) as server:
            port = server.port
            threads = [
                threading.Thread(target=worker, args=(name, *cell))
                for name, cell in cells.items()
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors, errors
        for name, (tuner, seed, budget) in cells.items():
            expected = reference_history(tuner, seed, budget)
            assert traces[name]["evaluations"] == expected["evaluations"], name

    def test_kill_and_restart_resumes_from_sessions_dir(self, tmp_path):
        """Acceptance: server killed mid-run, a fresh server on the same
        --sessions-dir resumes both sessions without losing or changing an
        evaluation."""
        cells = {
            "uniform-5": ("Uniform Sampling", 5, 10, 4),
            "cot-9": ("CoT Sampling", 9, 10, 5),
        }
        bench = get_benchmark(BENCH)
        errors: list[BaseException] = []

        def drive_partial(port, name, tuner, seed, budget, stop):
            try:
                with TuningClient(port=port, session=name) as client:
                    client.start(benchmark=BENCH, tuner=tuner, budget=budget,
                                 seed=seed)
                    for _ in range(stop):
                        [entry] = client.ask(1)["suggestions"]
                        configuration = {
                            k: (tuple(v) if isinstance(v, list) else v)
                            for k, v in entry["configuration"].items()
                        }
                        result = bench.evaluator(configuration)
                        client.tell(entry["id"], result.value,
                                    feasible=result.feasible)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        registry = SessionRegistry(sessions_dir=tmp_path, max_sessions=4)
        with running_server(registry) as server:
            threads = [
                threading.Thread(target=drive_partial,
                                 args=(server.port, name, *cell))
                for name, cell in cells.items()
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors, errors
        # the context manager shut the server down and autosaved both runs
        assert sorted(p.name for p in tmp_path.glob("*.ckpt.json")) == [
            "cot-9.ckpt.json", "uniform-5.ckpt.json",
        ]

        traces: dict[str, dict] = {}

        def finish(port, name):
            try:
                with TuningClient(port=port, session=name) as client:
                    assert client.status()["evaluations"] == cells[name][3]
                    client.drive(bench.evaluator)
                    traces[name] = client.snapshot()["snapshot"]["history"]
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        fresh = SessionRegistry(sessions_dir=tmp_path, max_sessions=4)
        with running_server(fresh) as server:
            threads = [
                threading.Thread(target=finish, args=(server.port, name))
                for name in cells
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors, errors
        for name, (tuner, seed, budget, _) in cells.items():
            expected = reference_history(tuner, seed, budget)
            assert traces[name]["evaluations"] == expected["evaluations"], name


class TestClientHelpers:
    def test_inline_snapshot_restore_roundtrip(self):
        registry = SessionRegistry(max_sessions=4)
        bench = get_benchmark(BENCH)
        with running_server(registry) as server:
            with TuningClient(port=server.port, session="a") as client:
                client.start(benchmark=BENCH, budget=6,
                             tuner="Uniform Sampling", seed=3)
                [entry] = client.ask(1)["suggestions"]
                client.tell(entry["id"], 1.5)
                payload = client.snapshot()["snapshot"]
            # restore the payload under a different name and finish there
            with TuningClient(port=server.port, session="b") as client:
                restored = client.restore(payload=payload)
                assert restored["evaluations"] == 1
                client.drive(bench.evaluator)
                assert client.status()["done"]

    def test_nonfinite_values_round_trip_the_wire(self):
        """Regression: the client must not silently drop non-finite values —
        an infeasible -inf is recorded verbatim, and a feasible inf draws
        the server's pointed error rather than a missing-'value' one."""
        registry = SessionRegistry(max_sessions=2)
        with running_server(registry) as server:
            with TuningClient(port=server.port, session="a") as client:
                client.start(benchmark=BENCH, budget=4,
                             tuner="Uniform Sampling", seed=0)
                client.ask(2)
                client.tell(0, float("-inf"), feasible=False)
                with pytest.raises(ServiceError, match="finite 'value'"):
                    client.tell(1, float("inf"))
                history = client.snapshot()["snapshot"]["history"]
        assert history["evaluations"][0]["value"] == float("-inf")

    def test_drive_reports_best_value(self):
        registry = SessionRegistry(max_sessions=4)
        bench = get_benchmark(BENCH)
        with running_server(registry) as server:
            with TuningClient(port=server.port, session="a") as client:
                client.start(benchmark=BENCH, budget=5,
                             tuner="CoT Sampling", seed=1)
                best = client.drive(bench.evaluator, batch_size=2)
                assert best == client.status()["best_value"]
