"""Tests for the Chain-of-Trees data structure."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space.chain_of_trees import ChainOfTrees, FeasibleSetTooLarge, Tree
from repro.space.constraints import Constraint
from repro.space.parameters import OrdinalParameter, RealParameter


def _paper_trees() -> ChainOfTrees:
    """The Fig. 4 example: p1>=p2, p4>=p3, p5>=2*p4."""
    left = Tree(
        [OrdinalParameter("p1", [2, 4]), OrdinalParameter("p2", [2, 4])],
        [Constraint("p1 >= p2")],
    )
    right = Tree(
        [
            OrdinalParameter("p3", [1, 4]),
            OrdinalParameter("p4", [1, 2, 4]),
            OrdinalParameter("p5", [2, 4, 8]),
        ],
        [Constraint("p4 >= p3"), Constraint("p5 >= 2 * p4")],
    )
    return ChainOfTrees([left, right])


def _brute_force_count() -> int:
    count = 0
    for p1, p2, p3, p4, p5 in itertools.product([2, 4], [2, 4], [1, 4], [1, 2, 4], [2, 4, 8]):
        if p1 >= p2 and p4 >= p3 and p5 >= 2 * p4:
            count += 1
    return count


class TestTree:
    def test_leaf_count_matches_brute_force(self):
        cot = _paper_trees()
        assert cot.n_feasible == _brute_force_count()

    def test_left_tree_has_three_leaves(self):
        cot = _paper_trees()
        left = cot.tree_for("p1")
        assert left.n_feasible == 3  # (2,2), (4,2), (4,4)

    def test_membership(self):
        cot = _paper_trees()
        assert cot.contains({"p1": 2, "p2": 2, "p3": 4, "p4": 4, "p5": 8})
        assert not cot.contains({"p1": 2, "p2": 4, "p3": 4, "p4": 4, "p5": 8})
        assert not cot.contains({"p1": 2, "p2": 2, "p3": 4, "p4": 4, "p5": 2})

    def test_iter_leaves_are_all_feasible_and_unique(self):
        cot = _paper_trees()
        right = cot.tree_for("p5")
        leaves = list(right.iter_leaves())
        assert len(leaves) == right.n_feasible
        seen = set()
        for leaf in leaves:
            assert leaf["p4"] >= leaf["p3"]
            assert leaf["p5"] >= 2 * leaf["p4"]
            seen.add(tuple(sorted(leaf.items())))
        assert len(seen) == len(leaves)

    def test_sample_leaf_is_uniform(self, rng):
        """Bias-free sampling: every feasible leaf has equal probability."""
        cot = _paper_trees()
        right = cot.tree_for("p3")
        counts = {}
        n = 6000
        for _ in range(n):
            leaf = right.sample_leaf(rng)
            counts[tuple(sorted(leaf.items()))] = counts.get(tuple(sorted(leaf.items())), 0) + 1
        expected = n / right.n_feasible
        for value in counts.values():
            assert abs(value - expected) < 0.25 * expected

    def test_sample_path_is_biased_towards_sparse_subtrees(self, rng):
        """The per-level walk over-samples leaves in sparse branches (Sec. 4.2)."""
        tree = Tree(
            [OrdinalParameter("a", [1, 2]), OrdinalParameter("b", [1, 2, 3, 4])],
            [Constraint("b >= a * a")],
        )
        # a=1 admits b in {1,2,3,4}; a=2 admits only b=4 -> path sampling gives
        # the (2, 4) leaf probability 1/2 instead of the uniform 1/5.
        n = 4000
        hits = sum(1 for _ in range(n) if tree.sample_path(rng)["a"] == 2)
        assert hits / n > 0.4
        hits_uniform = sum(1 for _ in range(n) if tree.sample_leaf(rng)["a"] == 2)
        assert hits_uniform / n < 0.3

    def test_feasible_values_conditioned_on_others(self):
        cot = _paper_trees()
        values = cot.feasible_values("p5", {"p3": 1, "p4": 4, "p5": 8})
        assert values == [8]
        values = cot.feasible_values("p4", {"p3": 1, "p4": 1, "p5": 8})
        assert sorted(values) == [1, 2, 4]

    def test_infeasible_constraints_raise(self):
        with pytest.raises(ValueError):
            Tree(
                [OrdinalParameter("a", [1, 2]), OrdinalParameter("b", [4, 8])],
                [Constraint("a >= b")],
            )

    def test_continuous_parameters_rejected(self):
        with pytest.raises(TypeError):
            Tree([RealParameter("x", 0.0, 1.0)], [Constraint("x >= 0.5")])

    def test_node_budget_enforced(self):
        params = [OrdinalParameter(f"q{i}", list(range(10))) for i in range(6)]
        constraints = [Constraint("q0 >= 0")]
        with pytest.raises(FeasibleSetTooLarge):
            Tree(params, constraints, max_nodes=100)


class TestChainOfTrees:
    def test_total_count_is_product_of_trees(self):
        cot = _paper_trees()
        left = cot.tree_for("p1")
        right = cot.tree_for("p3")
        assert cot.n_feasible == left.n_feasible * right.n_feasible

    def test_duplicate_parameters_rejected(self):
        tree = Tree([OrdinalParameter("a", [1, 2])], [Constraint("a >= 1")])
        with pytest.raises(ValueError):
            ChainOfTrees([tree, tree])

    def test_sample_respects_all_constraints(self, rng):
        cot = _paper_trees()
        for _ in range(100):
            config = cot.sample(rng)
            assert config["p1"] >= config["p2"]
            assert config["p4"] >= config["p3"]
            assert config["p5"] >= 2 * config["p4"]

    def test_covers(self):
        cot = _paper_trees()
        assert cot.covers("p1") and cot.covers("p5")
        assert not cot.covers("zzz")


@given(st.integers(min_value=2, max_value=5), st.integers(min_value=2, max_value=5))
@settings(max_examples=20, deadline=None)
def test_tree_count_matches_brute_force_random_spaces(n_a, n_b):
    """Property: CoT leaf count equals brute-force feasible count."""
    a_values = list(range(1, n_a + 1))
    b_values = list(range(1, n_b + 1))
    tree = Tree(
        [OrdinalParameter("a", a_values), OrdinalParameter("b", b_values)],
        [Constraint("a >= b")],
    )
    brute = sum(1 for a in a_values for b in b_values if a >= b)
    assert tree.n_feasible == brute
