"""The acquisition hot path: pool, cross-distance cache, fused scoring.

Guarantees for the PR-9 overhaul:

* the :class:`~repro.core.profiling.PhaseProfiler` records *exclusive*
  (self-time) per-phase wall-clock and never perturbs the loop it observes,
* the pool-side :class:`~repro.models.distances.CrossDistanceTensor` built
  incrementally (column-block appends per observation, row refreshes per
  resampled slot) is bit-identical to a from-scratch pairwise computation,
* the fused, memoized, cross-distance-backed scoring path produces the same
  acquisition values as the plain per-batch path to 1e-10 across all five
  parameter types (real / integer / ordinal / categorical / permutation),
* the ``pool=`` policy family round-trips through spec strings, runs end to
  end, snapshots its pool, and a resumed run replays bit-identically,
* the service ``status`` op surfaces the per-phase timings.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acquisition import AcquisitionFunction, FusedAcquisitionScorer
from repro.core.baco import SurrogatePolicy
from repro.core.feasibility import FeasibilityModel
from repro.core.profiling import PHASES, PhaseProfiler
from repro.models.distances import (
    CrossDistanceTensor,
    DistanceComputer,
    IncrementalDistanceTensor,
)
from repro.models.gp import GaussianProcess
from repro.space.parameters import (
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
    PermutationParameter,
    RealParameter,
)
from repro.space.space import SearchSpace


def _params():
    return [
        RealParameter("alpha", 0.1, 10.0, transform="log"),
        IntegerParameter("threads", 1, 16),
        OrdinalParameter("tile", [2, 4, 8, 16, 32], transform="log"),
        CategoricalParameter("sched", ["a", "b", "c"]),
        PermutationParameter("perm", 5, metric="spearman"),
    ]


def _rows(space, n, seed):
    return space.sample_rows(np.random.default_rng(seed), n)


class TestPhaseProfiler:
    def test_nested_phase_time_is_exclusive(self):
        profiler = PhaseProfiler()
        with profiler.phase("climb"):
            time.sleep(0.02)
            with profiler.phase("predict"):
                time.sleep(0.04)
            time.sleep(0.01)
        total = profiler.seconds["climb"] + profiler.seconds["predict"]
        # the inner phase's window is charged to "predict" only
        assert profiler.seconds["predict"] >= 0.04
        assert profiler.seconds["climb"] < profiler.seconds["predict"]
        assert total >= 0.07
        assert profiler.calls == {"climb": 1, "predict": 1}

    def test_summary_zero_fills_known_phases(self):
        profiler = PhaseProfiler()
        with profiler.phase("fit"):
            pass
        with profiler.phase("custom"):
            pass
        summary = profiler.summary()
        assert set(summary) == {"seconds", "calls"}
        for name in PHASES:
            assert name in summary["seconds"]
            assert name in summary["calls"]
        assert "custom" in summary["seconds"]
        assert summary["calls"]["fit"] == 1
        assert summary["calls"]["sample"] == 0

    def test_reset(self):
        profiler = PhaseProfiler()
        with profiler.phase("ei"):
            pass
        profiler.reset()
        assert profiler.seconds == {} and profiler.calls == {}


class TestCrossDistanceTensor:
    def test_incremental_train_extension_matches_full_recompute(self):
        computer = DistanceComputer(_params())
        space = SearchSpace(_params(), constraints=[], build_chain_of_trees=False)
        pool = _rows(space, 17, seed=1)
        train = _rows(space, 13, seed=2)

        cross = CrossDistanceTensor(computer)
        cross.set_pool(pool, train[:2])
        for i in range(2, len(train)):
            cross.extend_train(train[i : i + 1])

        assert len(cross) == len(train)
        assert cross.n_pool == len(pool)
        # column-block assembly is bit-identical to the from-scratch tensor:
        # every distance block is elementwise or per-pair-independent
        assert np.array_equal(cross.tensor, computer.pairwise_rows(pool, train))

    def test_refresh_pool_rows_matches_full_recompute(self):
        computer = DistanceComputer(_params())
        space = SearchSpace(_params(), constraints=[], build_chain_of_trees=False)
        pool = _rows(space, 11, seed=3)
        train = _rows(space, 7, seed=4)
        replacement = _rows(space, 3, seed=5)

        cross = CrossDistanceTensor(computer)
        cross.set_pool(pool, train)
        indices = [0, 4, 10]
        cross.refresh_pool_rows(indices, replacement, train)

        expected_pool = pool.copy()
        expected_pool[indices] = replacement
        assert np.array_equal(cross.pool_rows, expected_pool)
        assert np.array_equal(
            cross.tensor, computer.pairwise_rows(expected_pool, train)
        )

    def test_views_stay_valid_across_growth(self):
        computer = DistanceComputer(_params())
        space = SearchSpace(_params(), constraints=[], build_chain_of_trees=False)
        pool = _rows(space, 6, seed=6)
        train = _rows(space, 30, seed=7)
        cross = CrossDistanceTensor(computer)
        cross.set_pool(pool, train[:2])
        view = cross.tensor
        snapshot = view.copy()
        cross.extend_train(train[2:])  # forces at least one reallocation
        assert np.array_equal(view, snapshot)

    def test_errors(self):
        computer = DistanceComputer(_params())
        space = SearchSpace(_params(), constraints=[], build_chain_of_trees=False)
        cross = CrossDistanceTensor(computer)
        with pytest.raises(RuntimeError):
            cross.extend_train(_rows(space, 1, seed=8))
        cross.set_pool(_rows(space, 4, seed=9), _rows(space, 3, seed=10))
        with pytest.raises(ValueError):
            cross.refresh_pool_rows([0, 1], _rows(space, 1, seed=11), _rows(space, 3, seed=12))
        with pytest.raises(ValueError):
            cross.refresh_pool_rows([0], _rows(space, 1, seed=13), _rows(space, 2, seed=14))

    def test_predict_rows_validates_cross_shape(self):
        params = _params()
        space = SearchSpace(params, constraints=[], build_chain_of_trees=False)
        train = _rows(space, 8, seed=15)
        gp = GaussianProcess(
            params, n_prior_samples=4, n_refined_starts=1,
            max_optimizer_iterations=5, rng=np.random.default_rng(16),
        )
        cache = IncrementalDistanceTensor(gp._distance)
        cache.append(train)
        values = list(np.random.default_rng(17).uniform(0.5, 3.0, size=8))
        gp.fit_rows(cache.rows, values, distance_tensor=cache.tensor)
        candidates = _rows(space, 5, seed=18)
        bad = gp._distance.pairwise_rows(candidates, train[:6])
        with pytest.raises(ValueError):
            gp.predict_rows(candidates, cross_distance=bad)


class TestFusedScoringEquivalence:
    """Pooled / cached / fused scores equal the from-scratch path."""

    @staticmethod
    def _fitted_stack(seed: int, n_train: int):
        params = _params()
        space = SearchSpace(params, constraints=[], build_chain_of_trees=False)
        rng = np.random.default_rng(seed)
        train = space.sample_rows(rng, n_train)
        values = list(np.random.default_rng(seed + 1).uniform(0.5, 4.0, size=n_train))

        gp = GaussianProcess(
            params, n_prior_samples=4, n_refined_starts=1,
            max_optimizer_iterations=6, rng=np.random.default_rng(seed + 2),
        )
        cache = IncrementalDistanceTensor(gp._distance)
        cache.append(train)
        gp.fit_rows(cache.rows, values, distance_tensor=cache.tensor)

        feasibility = FeasibilityModel(
            space, n_trees=8, rng=np.random.default_rng(seed + 3)
        )
        labels = [bool(b) for b in np.random.default_rng(seed + 4).random(n_train) > 0.4]
        if len(set(labels)) < 2:  # both classes must appear for is_trained
            labels[0] = not labels[0]
        feasibility.fit_rows(train, labels)

        acquisition = AcquisitionFunction(
            gp,
            best_value=min(values),
            feasibility_model=feasibility,
            feasibility_threshold=0.35,
            noiseless=True,
        )
        return space, gp, train, acquisition

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_train=st.integers(min_value=4, max_value=12),
        n_pool=st.integers(min_value=5, max_value=24),
    )
    def test_pooled_scores_match_scratch_path(self, seed, n_train, n_pool):
        space, gp, train, acquisition = self._fitted_stack(seed, n_train)
        pool = space.sample_rows(np.random.default_rng(seed + 5), n_pool)

        reference = acquisition.evaluate_rows(pool, space.encoder)

        # cross-distance-backed prime over an incrementally built tensor
        cross = CrossDistanceTensor(gp._distance)
        cross.set_pool(pool, train[:2])
        for i in range(2, len(train)):
            cross.extend_train(train[i : i + 1])
        scorer = FusedAcquisitionScorer(acquisition, space.encoder)
        primed = scorer.prime_pool(pool, cross_distance=cross.tensor)
        assert np.allclose(primed, reference, atol=1e-10, rtol=0, equal_nan=True)
        assert scorer.n_memoized == len({row.tobytes() for row in pool})

        # memoized re-scoring over a shuffled, duplicated batch
        order = np.random.default_rng(seed + 6).integers(0, n_pool, size=2 * n_pool)
        repeat = scorer.score_rows(pool[order])
        assert np.allclose(repeat, reference[order], atol=1e-10, rtol=0, equal_nan=True)

    def test_score_rows_mixes_memo_hits_and_fresh_rows(self):
        space, gp, train, acquisition = self._fitted_stack(seed=77, n_train=8)
        pool = space.sample_rows(np.random.default_rng(80), 10)
        fresh = space.sample_rows(np.random.default_rng(81), 6)

        scorer = FusedAcquisitionScorer(acquisition, space.encoder)
        scorer.prime_pool(pool)
        batch = np.vstack([fresh[:3], pool[2:5], fresh[3:]])
        got = np.array(scorer.score_rows(batch), copy=True)  # returned array is a view
        expected = acquisition.evaluate_rows(batch, space.encoder)
        assert np.allclose(got, expected, atol=1e-10, rtol=0, equal_nan=True)
        # every distinct row of the batch is memoized now
        second = np.array(scorer.score_rows(batch), copy=True)
        assert np.array_equal(second, got)


class TestPoolPolicySpec:
    def test_parse_spec_round_trip(self):
        for spec, expect in [
            ("fast,pool=512", (512, True)),
            ("fast,refit_every=16,pool=64,cache=off", (64, False)),
            ("fast,pool=8,cache=on", (8, True)),
        ]:
            policy = SurrogatePolicy.parse(spec)
            assert (policy.pool_size, policy.cross_cache) == expect
            assert SurrogatePolicy.parse(policy.spec()) == policy
        # cache=on is the default and stays implicit in the canonical spec
        assert SurrogatePolicy.parse("fast,pool=8,cache=on").spec() == (
            "fast,refit_every=8,sweep_every=40,pool=8"
        )

    def test_invalid_specs(self):
        for bad in (
            "exact,pool=8",
            "fast,pool=1",
            "fast,pool=abc",
            "fast,cache=off",          # cache without a pool
            "fast,pool=8,cache=maybe",
            "fast,pool=8,pool=9",
        ):
            with pytest.raises(ValueError):
                SurrogatePolicy.parse(bad)
        with pytest.raises(ValueError, match="fast"):
            SurrogatePolicy(pool_size=8)  # exact mode cannot pool


class TestPooledPolicyEndToEnd:
    BENCHMARK = "hpvm_bfs"

    def _run(self, policy, budget=14):
        from repro.experiments.runner import make_tuner
        from repro.workloads.registry import get_benchmark

        bench = get_benchmark(self.BENCHMARK)
        tuner = make_tuner("BaCO", bench.space, seed=17, surrogate_policy=policy)
        history = tuner.tune(bench.evaluator, budget, benchmark_name=bench.name)
        return bench, tuner, history

    @pytest.mark.parametrize(
        "policy",
        ["fast,refit_every=3,sweep_every=10,pool=48",
         "fast,refit_every=3,sweep_every=10,pool=48,cache=off"],
    )
    def test_pooled_run_completes_and_profiles(self, policy):
        _, tuner, history = self._run(policy)
        assert len(history) == 14
        assert all(np.isfinite(e.value) for e in history if e.feasible)
        summary = tuner.phase_profiler.summary()
        for phase in ("sample", "fit", "predict", "ei", "climb"):
            assert summary["calls"][phase] > 0, phase
        # the pool survived across asks and slots were recycled, not redrawn
        assert tuner._candidate_pool is not None
        assert len(tuner._candidate_pool) == 48
        assert tuner._pool_refill  # last ask consumed starts

    def test_snapshot_records_pool_state(self):
        _, tuner, _ = self._run("fast,refit_every=3,sweep_every=10,pool=48")
        payload = json.loads(json.dumps(tuner._state_dict()))
        state = payload["surrogate_policy"]
        assert state["spec"] == "fast,refit_every=3,sweep_every=10,pool=48"
        assert len(state["pool_rows"]) == 48
        assert state["pool_refill"] == sorted(set(state["pool_refill"]))
        # floats survive the JSON round-trip bit-exactly
        assert np.array_equal(
            np.asarray(state["pool_rows"], dtype=float), tuner._candidate_pool
        )

    def test_plain_fast_snapshot_carries_no_pool_keys(self):
        _, tuner, _ = self._run("fast,refit_every=3,sweep_every=10")
        state = tuner._state_dict()["surrogate_policy"]
        assert "pool_rows" not in state and "pool_refill" not in state


class TestPooledPolicyCheckpointBitCompatibility:
    """A pooled run interrupted, snapshotted through JSON, and resumed
    replays bit-identically: the pool rows (whose RNG draws are already
    consumed), the pending refill slots, and the rebuilt cross-distance
    cache must all land exactly where the uninterrupted run has them."""

    BENCHMARK = "hpvm_bfs"
    BUDGET = 18
    INTERRUPT_AT = 7
    POLICIES = (
        "fast,refit_every=3,sweep_every=10,pool=48",
        "fast,refit_every=3,sweep_every=10,pool=48,cache=off",
    )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_in_process_resume_identical(self, policy):
        from repro.core.session import drive
        from repro.experiments.runner import make_session, make_tuner, restore_session
        from repro.workloads.registry import get_benchmark

        bench = get_benchmark(self.BENCHMARK)
        reference = make_tuner(
            "BaCO", bench.space, seed=17, surrogate_policy=policy
        ).tune(bench.evaluator, self.BUDGET, benchmark_name=bench.name)
        expected = reference.to_dict()
        expected.pop("tuner_seconds", None)
        expected.pop("evaluation_seconds", None)

        session, _ = make_session(
            self.BENCHMARK, "BaCO", self.BUDGET, 17, surrogate_policy=policy
        )
        while len(session.history) < self.INTERRUPT_AT:
            [suggestion] = session.ask(1)
            session.tell(suggestion, bench.evaluator(suggestion.configuration))
        payload = json.loads(json.dumps(session.snapshot()))
        del session

        resumed, _ = restore_session(payload)
        history = drive(resumed, bench.evaluator)
        got = history.to_dict()
        got.pop("tuner_seconds", None)
        got.pop("evaluation_seconds", None)
        assert got == expected


class TestStatusTimings:
    def test_status_exposes_phase_timings(self):
        from repro.service import SessionRegistry
        from repro.workloads.registry import get_benchmark

        bench = get_benchmark("hpvm_bfs")
        registry = SessionRegistry(max_sessions=2)
        assert registry.handle(
            {"op": "start", "session": "s", "benchmark": "hpvm_bfs",
             "tuner": "BaCO", "budget": 4, "seed": 0}
        )["ok"]
        [suggestion] = registry.handle({"op": "ask", "session": "s", "n": 1})["suggestions"]
        result = bench.evaluator(suggestion["configuration"])
        registry.handle(
            {"op": "tell", "session": "s", "id": suggestion["id"],
             "value": result.value, "feasible": result.feasible}
        )
        status = registry.handle({"op": "status", "session": "s"})
        assert status["ok"]
        timings = status["timings"]
        assert set(timings) == {"seconds", "calls"}
        for phase in ("sample", "fit", "predict", "ei", "climb"):
            assert phase in timings["seconds"]
