"""Tests for the baseline autotuners (random sampling, ATF/OpenTuner, Ytopt)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.opentuner import AUCBandit, OpenTunerLikeTuner
from repro.baselines.random_search import CoTSamplingTuner, UniformSamplingTuner
from repro.baselines.ytopt import YtoptLikeTuner
from repro.core.result import ObjectiveResult


class TestRandomSamplers:
    @pytest.mark.parametrize("cls", [UniformSamplingTuner, CoTSamplingTuner])
    def test_respects_budget_and_constraints(self, cls, small_space, quadratic_objective):
        history = cls(small_space, seed=0).tune(quadratic_objective, budget=25)
        assert len(history) == 25
        for evaluation in history:
            assert small_space.is_feasible(evaluation.configuration)

    def test_uniform_avoids_duplicates_in_large_spaces(self, small_space, quadratic_objective):
        history = UniformSamplingTuner(small_space, seed=1).tune(quadratic_objective, budget=30)
        keys = {small_space.freeze(e.configuration) for e in history}
        assert len(keys) >= 28

    def test_cot_sampling_differs_from_uniform_distribution(self, paper_cot_space):
        """The biased CoT walk over-samples sparse branches relative to uniform."""
        counts_uniform: dict = {}
        counts_biased: dict = {}

        def objective(config):
            return ObjectiveResult(1.0)

        for seed in range(5):
            for cls, counts in (
                (UniformSamplingTuner, counts_uniform),
                (CoTSamplingTuner, counts_biased),
            ):
                history = cls(paper_cot_space, seed=seed).tune(objective, budget=60)
                for evaluation in history:
                    p1 = evaluation.configuration["p1"]
                    counts[p1] = counts.get(p1, 0) + 1
        # uniform over the feasible region favours p1=4 (2 of 3 feasible leaves);
        # the per-level walk splits 50/50.
        frac_uniform = counts_uniform[4] / sum(counts_uniform.values())
        frac_biased = counts_biased[4] / sum(counts_biased.values())
        assert frac_uniform > frac_biased

    def test_reproducible_with_same_seed(self, small_space, quadratic_objective):
        a = UniformSamplingTuner(small_space, seed=3).tune(quadratic_objective, budget=10)
        b = UniformSamplingTuner(small_space, seed=3).tune(quadratic_objective, budget=10)
        assert [e.value for e in a] == [e.value for e in b]


class TestAUCBandit:
    def test_prefers_successful_technique(self, rng):
        bandit = AUCBandit(["good", "bad"], exploration=0.0)
        for _ in range(10):
            bandit.update("good", True)
            bandit.update("bad", False)
        picks = {bandit.select(rng) for _ in range(20)}
        assert picks == {"good"}

    def test_tries_unused_techniques_first(self, rng):
        bandit = AUCBandit(["a", "b", "c"])
        seen = set()
        for _ in range(30):
            choice = bandit.select(rng)
            seen.add(choice)
            bandit.update(choice, False)
        assert seen == {"a", "b", "c"}

    def test_requires_techniques(self):
        with pytest.raises(ValueError):
            AUCBandit([])

    def test_recent_outcomes_weigh_more(self, rng):
        bandit = AUCBandit(["x", "y"], window=8, exploration=0.0)
        # x: early successes then failures; y: early failures then successes
        for _ in range(4):
            bandit.update("x", True)
            bandit.update("y", False)
        for _ in range(4):
            bandit.update("x", False)
            bandit.update("y", True)
        assert bandit.select(rng) == "y"


class TestOpenTunerLike:
    def test_respects_budget_and_constraints(self, small_space, quadratic_objective):
        history = OpenTunerLikeTuner(small_space, seed=0).tune(quadratic_objective, budget=30)
        assert len(history) == 30
        for evaluation in history:
            assert small_space.is_feasible(evaluation.configuration)

    def test_improves_over_initial_random_phase(self, small_space, quadratic_objective):
        history = OpenTunerLikeTuner(small_space, seed=1).tune(quadratic_objective, budget=40)
        initial = [e.value for e in history if e.phase == "initial"]
        assert history.best_value() <= min(initial)

    def test_handles_hidden_constraints_gracefully(self, small_space, hidden_constraint_objective):
        history = OpenTunerLikeTuner(small_space, seed=2).tune(
            hidden_constraint_objective, budget=30
        )
        assert history.best_value() < math.inf

    def test_exploitation_around_elites(self, small_space, quadratic_objective):
        """Most proposals after the initial phase stay near previously good ones."""
        tuner = OpenTunerLikeTuner(small_space, seed=3, elite_size=3)
        history = tuner.tune(quadratic_objective, budget=40)
        assert history.best_value() < 5.0


class TestYtoptLike:
    def test_rf_surrogate_run(self, small_space, quadratic_objective):
        history = YtoptLikeTuner(small_space, seed=0, rf_trees=8).tune(
            quadratic_objective, budget=18
        )
        assert len(history) == 18
        for evaluation in history:
            assert small_space.is_feasible(evaluation.configuration)

    def test_gp_surrogate_run(self, small_space, quadratic_objective):
        tuner = YtoptLikeTuner(small_space, seed=1, surrogate="gp")
        assert tuner.name == "Ytopt (GP)"
        history = tuner.tune(quadratic_objective, budget=15)
        assert len(history) == 15

    def test_infeasible_points_penalized_not_modelled(self, small_space, hidden_constraint_objective):
        tuner = YtoptLikeTuner(small_space, seed=2, rf_trees=8)
        history = tuner.tune(hidden_constraint_objective, budget=20)
        configs, values = tuner._training_data()
        assert len(configs) == 20
        feasible_values = [e.value for e in history if e.feasible]
        assert max(values) > max(feasible_values)

    def test_invalid_surrogate_rejected(self, small_space):
        with pytest.raises(ValueError):
            YtoptLikeTuner(small_space, surrogate="boosted")

    def test_improves_on_toy_problem(self, small_space, quadratic_objective):
        history = YtoptLikeTuner(small_space, seed=3, rf_trees=8).tune(
            quadratic_objective, budget=25
        )
        assert history.best_value() < 5.0
