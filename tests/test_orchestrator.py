"""Tests for the parallel experiment orchestrator and the ``python -m repro`` CLI."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import runner
from repro.experiments.config import ExperimentConfig
from repro.experiments.orchestrator import (
    Cell,
    CellTimeoutError,
    cell_cache_path,
    enumerate_cells,
    load_manifest,
    manifest_path,
    run_cells,
    sweep,
)
from repro.experiments.reporting import format_cell_event, format_sweep_summary
from repro.experiments.runner import run_single

REPO_ROOT = Path(__file__).resolve().parents[1]

BENCHMARKS = ("hpvm_bfs", "hpvm_audio")
TUNERS = ("Uniform Sampling", "CoT Sampling")
BUDGET = 6


def _config(tmp_path: Path, **kwargs) -> ExperimentConfig:
    return ExperimentConfig(repetitions=2, cache_dir=tmp_path, **kwargs)


def _grid(config: ExperimentConfig) -> list[Cell]:
    return enumerate_cells(BENCHMARKS, TUNERS, config, budget=BUDGET)


def _history_files(cache_dir: Path) -> list[Path]:
    return sorted(
        p for p in cache_dir.glob("*.json") if p.name != "sweep_manifest.json"
    )


class TestEnumeration:
    def test_grid_cross_product_and_order(self, tmp_path):
        config = _config(tmp_path)
        cells = _grid(config)
        assert len(cells) == len(BENCHMARKS) * len(TUNERS) * config.repetitions
        assert len(set(cells)) == len(cells)
        # benchmark-major, then tuner, then seed — the historical serial order
        assert cells[0] == Cell("hpvm_bfs", "Uniform Sampling", BUDGET, config.base_seed)
        assert cells[1].seed == config.base_seed + 1
        assert cells[2].tuner == "CoT Sampling"
        assert cells[4].benchmark == "hpvm_audio"

    def test_budget_defaults_to_scaled_table3_budget(self, tmp_path):
        from repro.workloads import get_benchmark

        config = _config(tmp_path)
        cells = enumerate_cells(["hpvm_bfs"], ["Uniform Sampling"], config)
        expected = config.scaled_budget(get_benchmark("hpvm_bfs").full_budget)
        assert {cell.budget for cell in cells} == {expected}

    def test_explicit_seeds(self, tmp_path):
        cells = enumerate_cells(
            ["hpvm_bfs"], ["Uniform Sampling"], _config(tmp_path), budget=BUDGET,
            seeds=[7, 11],
        )
        assert [cell.seed for cell in cells] == [7, 11]

    def test_unknown_tuner_raises(self, tmp_path):
        with pytest.raises(KeyError):
            enumerate_cells(["hpvm_bfs"], ["No Such Tuner"], _config(tmp_path), budget=4)


class TestCacheSkipAndResume:
    def test_cached_cells_are_skipped(self, tmp_path):
        config = _config(tmp_path)
        cells = _grid(config)
        # warm one cell through the plain runner, then sweep the grid
        run_single(cells[0].benchmark, cells[0].tuner, cells[0].budget, cells[0].seed, config)
        result = run_cells(cells, config)
        assert result.counts["cached"] == 1
        assert result.counts["done"] == len(cells) - 1
        assert not result.failures

    def test_resume_after_interrupt_runs_only_missing_cells(self, tmp_path):
        config = _config(tmp_path)
        cells = _grid(config)
        first = run_cells(cells, config)
        assert first.counts["done"] == len(cells)
        # simulate an interrupted sweep: half the cache vanishes
        files = _history_files(tmp_path)
        removed = files[: len(files) // 2]
        for path in removed:
            path.unlink()
        events = []
        second = run_cells(cells, config, on_event=events.append)
        assert second.counts["done"] == len(removed)
        assert second.counts["cached"] == len(cells) - len(removed)
        executed = {e.cell for e in events if e.kind == "done"}
        assert len(executed) == len(removed)
        # the manifest still records every cell as completed
        manifest = load_manifest(config)
        assert len(manifest["cells"]) == len(cells)
        assert {entry["status"] for entry in manifest["cells"].values()} <= {"done", "cached"}

    def test_no_resume_recomputes_everything(self, tmp_path):
        config = _config(tmp_path)
        cells = _grid(config)
        run_cells(cells, config)
        result = run_cells(cells, config, resume=False)
        assert result.counts["done"] == len(cells)
        assert result.counts.get("cached", 0) == 0

    def test_no_resume_preserves_other_manifest_entries(self, tmp_path):
        config = _config(tmp_path)
        other = enumerate_cells(["hpvm_preeuler"], ["Uniform Sampling"], config, budget=BUDGET)
        run_cells(other, config)
        cells = enumerate_cells(["hpvm_bfs"], ["Uniform Sampling"], config, budget=BUDGET)
        run_cells(cells, config, resume=False)
        manifest = load_manifest(config)
        # records from the unrelated sweep survive the forced recompute
        for cell in other:
            assert cell.key in manifest["cells"]

    def test_manifest_is_written_and_loadable(self, tmp_path):
        config = _config(tmp_path)
        run_cells(_grid(config), config)
        path = manifest_path(config)
        assert path.exists()
        manifest = json.loads(path.read_text())
        assert manifest["version"] == 1
        entry = next(iter(manifest["cells"].values()))
        assert {"benchmark", "tuner", "budget", "seed", "status", "file"} <= set(entry)

    def test_no_cache_executes_without_writing(self, tmp_path):
        config = _config(tmp_path, use_cache=False)
        cells = enumerate_cells(["hpvm_bfs"], ["Uniform Sampling"], config, budget=BUDGET)
        result = run_cells(cells, config)
        assert result.counts["done"] == len(cells)
        assert not list(tmp_path.iterdir())
        # histories still come back from the in-memory store
        assert len(result.history(cells[0])) == BUDGET


class TestParallelEquivalence:
    def test_two_workers_match_serial_bit_for_bit(self, tmp_path):
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        serial_cfg = _config(serial_dir)
        parallel_cfg = _config(parallel_dir, workers=2)
        cells = _grid(serial_cfg)
        run_cells(cells, serial_cfg)
        result = run_cells(cells, parallel_cfg)
        assert not result.failures
        serial_files = _history_files(serial_dir)
        parallel_files = _history_files(parallel_dir)
        assert [p.name for p in serial_files] == [p.name for p in parallel_files]
        assert len(serial_files) == len(cells)
        for ours, theirs in zip(serial_files, parallel_files):
            assert ours.read_bytes() == theirs.read_bytes(), ours.name

    def test_adhoc_benchmark_falls_back_to_in_process(self, tmp_path, small_space,
                                                      quadratic_objective):
        """Benchmark objects that workers cannot re-resolve by name still run
        (in-process) when workers > 1."""
        from repro.workloads.base import Benchmark

        adhoc = Benchmark(
            name="adhoc_not_in_registry",
            framework="TEST",
            space=small_space,
            evaluator=quadratic_objective,
            full_budget=BUDGET,
        )
        config = _config(tmp_path, workers=2)
        cells = enumerate_cells([adhoc], ["Uniform Sampling"], config, budget=BUDGET)
        result = run_cells(cells, config, benchmarks={adhoc.name: adhoc})
        assert result.counts["done"] == len(cells)
        assert not result.failures
        assert len(result.history(cells[0])) == BUDGET

    def test_parallel_histories_match_serial_values(self, tmp_path):
        serial_cfg = _config(tmp_path / "a")
        parallel_cfg = _config(tmp_path / "b", workers=2)
        cells = _grid(serial_cfg)
        serial = run_cells(cells, serial_cfg)
        parallel = run_cells(cells, parallel_cfg)
        for cell in cells:
            ours = [e.value for e in serial.history(cell)]
            theirs = [e.value for e in parallel.history(cell)]
            assert ours == theirs, cell.key


class TestRetryAndTimeout:
    def test_retry_recovers_from_transient_failure(self, tmp_path, monkeypatch):
        config = _config(tmp_path)
        cells = enumerate_cells(["hpvm_bfs"], ["Uniform Sampling"], config, budget=BUDGET)
        real_run_single = runner.run_single
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient toolchain failure")
            return real_run_single(*args, **kwargs)

        monkeypatch.setattr("repro.experiments.orchestrator.run_single", flaky)
        events = []
        result = run_cells(cells[:1], config, retries=1, on_event=events.append)
        outcome = result.outcomes[cells[0]]
        assert outcome.status == "done"
        assert outcome.attempts == 2
        assert any(e.kind == "retry" for e in events)

    def test_failure_without_retries_is_reported(self, tmp_path, monkeypatch):
        config = _config(tmp_path)
        cells = enumerate_cells(["hpvm_bfs"], ["Uniform Sampling"], config, budget=BUDGET)

        def broken(*args, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr("repro.experiments.orchestrator.run_single", broken)
        result = run_cells(cells[:1], config)
        assert result.outcomes[cells[0]].status == "failed"
        assert "boom" in result.outcomes[cells[0]].error
        manifest = load_manifest(config)
        assert manifest["cells"][cells[0].key]["status"] == "failed"

    def test_raise_on_error_propagates(self, tmp_path, monkeypatch):
        config = _config(tmp_path)
        cells = enumerate_cells(["hpvm_bfs"], ["Uniform Sampling"], config, budget=BUDGET)
        monkeypatch.setattr(
            "repro.experiments.orchestrator.run_single",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        with pytest.raises(RuntimeError, match="boom"):
            run_cells(cells[:1], config, raise_on_error=True)

    @pytest.mark.skipif(not hasattr(__import__("signal"), "SIGALRM"), reason="needs SIGALRM")
    def test_timeout_fails_a_hanging_cell(self, tmp_path, monkeypatch):
        config = _config(tmp_path)
        cells = enumerate_cells(["hpvm_bfs"], ["Uniform Sampling"], config, budget=BUDGET)

        def hanging(*args, **kwargs):
            time.sleep(30)

        monkeypatch.setattr("repro.experiments.orchestrator.run_single", hanging)
        started = time.time()
        result = run_cells(cells[:1], config, timeout=0.2)
        assert time.time() - started < 10
        outcome = result.outcomes[cells[0]]
        assert outcome.status == "failed"
        assert CellTimeoutError.__name__ in outcome.error


class TestRunnerDelegation:
    def test_run_benchmark_parallel_matches_serial(self, tmp_path):
        from repro.experiments.runner import run_benchmark

        serial_cfg = _config(tmp_path / "serial")
        parallel_cfg = _config(tmp_path / "parallel", workers=2)
        serial = run_benchmark("hpvm_bfs", TUNERS, budget=BUDGET, config=serial_cfg)
        parallel = run_benchmark("hpvm_bfs", TUNERS, budget=BUDGET, config=parallel_cfg)
        assert set(serial) == set(parallel) == set(TUNERS)
        for tuner in TUNERS:
            assert len(serial[tuner]) == serial_cfg.repetitions
            for ours, theirs in zip(serial[tuner], parallel[tuner]):
                assert [e.value for e in ours] == [e.value for e in theirs]

    def test_sweep_convenience_wrapper(self, tmp_path):
        config = _config(tmp_path)
        result = sweep(["hpvm_bfs"], ["Uniform Sampling"], config, budget=BUDGET)
        assert result.counts["done"] == config.repetitions
        assert all(
            cell_cache_path(config, cell).exists() for cell in result.outcomes
        )


class TestReportingFormatters:
    def test_format_cell_event_lines(self, tmp_path):
        config = _config(tmp_path)
        events = []
        run_cells(_grid(config)[:2], config, on_event=events.append)
        lines = [format_cell_event(e) for e in events]
        assert any("start" in line for line in lines)
        assert any("done" in line for line in lines)
        assert all("hpvm_bfs" in line for line in lines)

    def test_format_sweep_summary(self):
        text = format_sweep_summary({"done": 3, "cached": 2, "failed": 1}, 1.5, workers=2)
        assert "6 cells" in text and "3 done" in text and "1 failed" in text


class TestCommandLine:
    def _run(self, *argv: str, cache_dir: Path) -> subprocess.CompletedProcess:
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv, "--cache-dir", str(cache_dir)],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            timeout=600,
        )

    GRID_ARGS = (
        "--benchmarks", "hpvm_bfs", "hpvm_audio",
        "--tuners", "Uniform Sampling", "CoT Sampling",
        "--repetitions", "2", "--budget", str(BUDGET),
    )

    def test_sweep_status_report_roundtrip(self, tmp_path):
        sweep_proc = self._run(
            "sweep", *self.GRID_ARGS, "--workers", "2", cache_dir=tmp_path
        )
        assert sweep_proc.returncode == 0, sweep_proc.stderr
        assert "8 done" in sweep_proc.stdout
        assert len(_history_files(tmp_path)) == 8

        status_proc = self._run("status", *self.GRID_ARGS, cache_dir=tmp_path)
        assert status_proc.returncode == 0, status_proc.stderr
        assert "8 cached, 0 missing" in status_proc.stdout

        report_proc = self._run("report", *self.GRID_ARGS, cache_dir=tmp_path)
        assert report_proc.returncode == 0, report_proc.stderr
        assert "hpvm_bfs" in report_proc.stdout
        assert "(2/2)" in report_proc.stdout

    def test_second_sweep_is_fully_cached(self, tmp_path):
        first = self._run("sweep", *self.GRID_ARGS, "--quiet", cache_dir=tmp_path)
        assert first.returncode == 0, first.stderr
        second = self._run("sweep", *self.GRID_ARGS, "--quiet", cache_dir=tmp_path)
        assert second.returncode == 0, second.stderr
        assert "8 cached" in second.stdout
        assert "0 done" in second.stdout
