"""End-to-end tests of the BaCO tuner and its configuration switches."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.baco import BacoSettings, BacoTuner
from repro.core.result import ObjectiveResult
from repro.space import (
    CategoricalParameter,
    Constraint,
    OrdinalParameter,
    PermutationParameter,
    SearchSpace,
)

_OPTIMUM = 3.1  # p1 == p2, order == (2, 1, 0), sched == "static", + 0.1


def _fast_settings(**overrides) -> BacoSettings:
    base = dict(
        gp_prior_samples=6,
        gp_refined_starts=1,
        gp_max_iterations=10,
        n_random_samples=64,
        n_local_search_starts=3,
        max_local_search_steps=10,
        feasibility_trees=8,
    )
    base.update(overrides)
    return BacoSettings(**base)


class TestBacoSettings:
    def test_defaults_match_paper(self):
        settings = BacoSettings()
        assert settings.surrogate == "gp"
        assert settings.permutation_metric == "spearman"
        assert settings.use_transformations
        assert settings.use_lengthscale_priors
        assert settings.noiseless_ei
        assert settings.use_feasibility_model

    def test_baco_minus_minus(self):
        settings = BacoSettings.baco_minus_minus()
        assert not settings.use_transformations
        assert not settings.use_lengthscale_priors
        assert not settings.use_local_search
        assert settings.permutation_metric == "naive"
        assert not settings.advanced_gp_fitting

    def test_invalid_surrogate(self):
        with pytest.raises(ValueError):
            BacoSettings(surrogate="xgboost")


class TestBacoTuner:
    def test_respects_budget(self, small_space, quadratic_objective):
        history = BacoTuner(small_space, settings=_fast_settings(), seed=0).tune(
            quadratic_objective, budget=15
        )
        assert len(history) == 15

    def test_initial_phase_then_learning(self, small_space, quadratic_objective):
        history = BacoTuner(small_space, settings=_fast_settings(), seed=0).tune(
            quadratic_objective, budget=15
        )
        phases = [e.phase for e in history]
        assert phases[0] == "initial"
        assert "learning" in phases
        first_learning = phases.index("learning")
        assert all(p == "initial" for p in phases[:first_learning])

    def test_finds_optimum_of_toy_problem(self, small_space, quadratic_objective):
        history = BacoTuner(small_space, settings=_fast_settings(), seed=1).tune(
            quadratic_objective, budget=30
        )
        assert history.best_value() == pytest.approx(_OPTIMUM, rel=0.15)

    def test_only_proposes_known_feasible_configurations(self, small_space, quadratic_objective):
        history = BacoTuner(small_space, settings=_fast_settings(), seed=2).tune(
            quadratic_objective, budget=20
        )
        for evaluation in history:
            assert small_space.is_feasible(evaluation.configuration)

    def test_handles_hidden_constraints(self, small_space, hidden_constraint_objective):
        history = BacoTuner(small_space, settings=_fast_settings(), seed=3).tune(
            hidden_constraint_objective, budget=25
        )
        assert history.best_value() < math.inf
        # the best configuration satisfies the hidden constraint p1 <= 8
        assert history.best().configuration["p1"] <= 8

    def test_avoids_reevaluating_configurations(self, small_space, quadratic_objective):
        history = BacoTuner(small_space, settings=_fast_settings(), seed=4).tune(
            quadratic_objective, budget=25
        )
        keys = [small_space.freeze(e.configuration) for e in history]
        # duplicates are allowed only as a rare fallback
        assert len(set(keys)) >= len(keys) - 2

    def test_beats_pure_random_search_on_average(self, small_space, quadratic_objective, rng):
        from repro.baselines.random_search import UniformSamplingTuner

        budget = 20
        baco_best = np.mean(
            [
                BacoTuner(small_space, settings=_fast_settings(), seed=s)
                .tune(quadratic_objective, budget)
                .best_value()
                for s in range(3)
            ]
        )
        random_best = np.mean(
            [
                UniformSamplingTuner(small_space, seed=s).tune(quadratic_objective, budget).best_value()
                for s in range(3)
            ]
        )
        assert baco_best <= random_best + 0.3

    def test_rf_surrogate_variant(self, small_space, quadratic_objective):
        history = BacoTuner(
            small_space, settings=_fast_settings(surrogate="rf", rf_trees=8), seed=5
        ).tune(quadratic_objective, budget=18)
        assert len(history) == 18
        assert history.best_value() < 5.0

    def test_baco_minus_minus_variant_runs(self, small_space, quadratic_objective):
        settings = BacoSettings.baco_minus_minus()
        settings.gp_prior_samples = 6
        settings.n_random_samples = 64
        history = BacoTuner(small_space, settings=settings, seed=6).tune(
            quadratic_objective, budget=15
        )
        assert len(history) == 15

    def test_explicit_doe_size(self, small_space, quadratic_objective):
        history = BacoTuner(
            small_space, settings=_fast_settings(doe_size=7), seed=7
        ).tune(quadratic_objective, budget=12)
        assert sum(1 for e in history if e.phase == "initial") == 7

    def test_budget_smaller_than_doe(self, small_space, quadratic_objective):
        history = BacoTuner(
            small_space, settings=_fast_settings(doe_size=10), seed=8
        ).tune(quadratic_objective, budget=4)
        assert len(history) == 4

    def test_invalid_budget(self, small_space, quadratic_objective):
        with pytest.raises(ValueError):
            BacoTuner(small_space, seed=0).tune(quadratic_objective, budget=0)

    def test_all_infeasible_objective_still_completes(self, small_space):
        def never_feasible(config):
            return ObjectiveResult(value=math.inf, feasible=False)

        history = BacoTuner(small_space, settings=_fast_settings(), seed=9).tune(
            never_feasible, budget=10
        )
        assert len(history) == 10
        assert history.best_value() == math.inf

    def test_permutation_metric_variants_run(self, small_space, quadratic_objective):
        for metric in ("kendall", "hamming", "naive"):
            history = BacoTuner(
                small_space, settings=_fast_settings(permutation_metric=metric), seed=10
            ).tune(quadratic_objective, budget=12)
            assert len(history) == 12

    def test_unconstrained_space(self, unconstrained_space):
        def objective(config):
            value = abs(math.log2(config["tile"]) - 3) + abs(config["threads"] - 4) + config["alpha"]
            return ObjectiveResult(value=value + 0.5)

        history = BacoTuner(unconstrained_space, settings=_fast_settings(), seed=11).tune(
            objective, budget=20
        )
        assert history.best_value() < 4.0

    def test_history_records_benchmark_name_and_seed(self, small_space, quadratic_objective):
        history = BacoTuner(small_space, settings=_fast_settings(), seed=13).tune(
            quadratic_objective, budget=8, benchmark_name="toy"
        )
        assert history.benchmark_name == "toy"
        assert history.seed == 13
        assert history.tuner_seconds >= 0.0
        assert history.evaluation_seconds >= 0.0
