"""Cross-cutting property-based tests on the core data structures and invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.result import ObjectiveResult, TuningHistory
from repro.models.distances import DistanceComputer
from repro.models.kernels import matern52
from repro.space import (
    CategoricalParameter,
    Constraint,
    OrdinalParameter,
    PermutationParameter,
    SearchSpace,
)


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

_ordinal_values = st.lists(
    st.integers(min_value=1, max_value=512), min_size=2, max_size=6, unique=True
)


@st.composite
def mixed_spaces(draw):
    """Random small mixed-type search spaces with an optional constraint."""
    parameters = [
        OrdinalParameter("a", draw(_ordinal_values)),
        OrdinalParameter("b", draw(_ordinal_values)),
        CategoricalParameter("c", ["x", "y", "z"][: draw(st.integers(2, 3))]),
        PermutationParameter("p", draw(st.integers(2, 4))),
    ]
    use_constraint = draw(st.booleans())
    constraints = [Constraint("a >= b")] if use_constraint else []
    max_a, min_b = max(parameters[0].values), min(parameters[1].values)
    if use_constraint and max_a < min_b:
        constraints = []
    return SearchSpace(parameters, constraints)


# ---------------------------------------------------------------------------
# search-space invariants
# ---------------------------------------------------------------------------

@given(mixed_spaces(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_sampled_configurations_always_feasible_and_encodable(space, seed):
    rng = np.random.default_rng(seed)
    configs = space.sample(rng, 5)
    for config in configs:
        assert space.is_feasible(config)
        encoded = space.encode(config)
        assert np.all(np.isfinite(encoded))
    matrix = space.encode_many(configs)
    assert matrix.shape[0] == 5


@given(mixed_spaces(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_neighbours_preserve_feasibility_and_differ_in_one_parameter(space, seed):
    rng = np.random.default_rng(seed)
    config = space.sample_one(rng)
    for neighbour in space.neighbours(config):
        assert space.is_feasible(neighbour)
        differing = [n for n in space.parameter_names if neighbour[n] != config[n]]
        assert len(differing) == 1


@given(mixed_spaces())
@settings(max_examples=20, deadline=None)
def test_feasible_size_never_exceeds_dense_size(space):
    dense = space.dense_size()
    feasible = space.feasible_size()
    if not math.isnan(feasible):
        assert feasible <= dense


# ---------------------------------------------------------------------------
# GP kernel invariants over random spaces
# ---------------------------------------------------------------------------

@given(mixed_spaces(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_matern_kernel_is_psd_over_random_mixed_spaces(space, seed):
    rng = np.random.default_rng(seed)
    configs = space.sample(rng, 12)
    computer = DistanceComputer(space.parameters)
    tensor = computer.pairwise(configs)
    lengthscales = rng.uniform(0.2, 2.0, size=tensor.shape[0])
    kernel = matern52(tensor, lengthscales, outputscale=1.0)
    assert np.allclose(kernel, kernel.T, atol=1e-10)
    eigenvalues = np.linalg.eigvalsh(kernel + 1e-9 * np.eye(len(configs)))
    assert eigenvalues.min() > -1e-7


# ---------------------------------------------------------------------------
# tuning-history invariants
# ---------------------------------------------------------------------------

@given(
    st.lists(
        st.tuples(st.floats(min_value=0.01, max_value=1e6), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=100, deadline=None)
def test_history_invariants(entries):
    history = TuningHistory(tuner_name="prop")
    for value, feasible in entries:
        history.append(
            {"x": value}, ObjectiveResult(value if feasible else math.inf, feasible=feasible)
        )
    curve = history.best_so_far()
    # monotone non-increasing
    assert all(curve[i + 1] <= curve[i] for i in range(len(curve) - 1))
    # final curve point equals the best value
    assert curve[-1] == history.best_value()
    # the best value is attained by some feasible evaluation
    if history.n_feasible:
        assert any(
            e.feasible and e.value == history.best_value() for e in history.evaluations
        )
    else:
        assert math.isinf(history.best_value())
    # serialization roundtrip preserves the best value and length
    restored = TuningHistory.from_dict(history.to_dict())
    assert restored.best_value() == history.best_value()
    assert len(restored) == len(history)


@given(
    st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=2, max_size=30),
    st.floats(min_value=0.1, max_value=100.0),
)
@settings(max_examples=100, deadline=None)
def test_evaluations_to_reach_consistency(values, threshold):
    history = TuningHistory(tuner_name="prop")
    for value in values:
        history.append({"x": value}, ObjectiveResult(value))
    reached = history.evaluations_to_reach(threshold)
    if reached is None:
        assert all(v > threshold for v in values)
    else:
        assert values[reached - 1] <= threshold
        assert all(v > threshold for v in values[: reached - 1])
