"""Behavioural tests for BaCO's noiseless EI and the GP's noise handling.

Sec. 3.3 motivates the modified EI: with noisy evaluations, standard EI keeps
re-sampling already-observed good points because their predictive variance
(including noise) stays large.  Computing EI with the noise-free latent
variance makes re-sampling much less attractive.  These tests check that the
implementation actually produces that behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.acquisition import AcquisitionFunction
from repro.models.gp import GaussianProcess
from repro.space.parameters import OrdinalParameter


def _fitted_gp(rng, noise_level=0.15, n=18):
    params = [OrdinalParameter("x", list(range(1, 21)))]
    xs = list(rng.choice(range(1, 21), size=n, replace=True))
    configs = [{"x": int(x)} for x in xs]
    values = [5.0 + 0.5 * abs(x - 10) + noise_level * rng.standard_normal() for x in xs]
    values = [max(v, 0.1) for v in values]
    gp = GaussianProcess(params, log_transform_output=False, rng=rng)
    gp.fit(configs, values)
    return gp, configs, values


class TestNoiselessEI:
    def test_noiseless_ei_discourages_resampling_best_point(self, rng):
        gp, configs, values = _fitted_gp(rng)
        best_index = int(np.argmin(values))
        best_config = configs[best_index]
        unseen_config = {"x": 20} if all(c["x"] != 20 for c in configs) else {"x": 19}

        noiseless = AcquisitionFunction(gp, best_value=min(values), noiseless=True)
        noisy = AcquisitionFunction(gp, best_value=min(values), noiseless=False)

        # the noisy EI assigns the already-observed optimum a larger share of
        # its total acquisition mass than the noiseless EI does
        noiseless_vals = noiseless([best_config, unseen_config])
        noisy_vals = noisy([best_config, unseen_config])
        ratio_noiseless = noiseless_vals[0] / (noiseless_vals.sum() + 1e-12)
        ratio_noisy = noisy_vals[0] / (noisy_vals.sum() + 1e-12)
        assert ratio_noiseless <= ratio_noisy + 1e-9

    def test_noisy_variance_exceeds_noiseless_everywhere(self, rng):
        gp, configs, _ = _fitted_gp(rng)
        grid = [{"x": x} for x in range(1, 21)]
        _, var_latent = gp.predict(grid, include_noise=False)
        _, var_observed = gp.predict(grid, include_noise=True)
        assert np.all(var_observed > var_latent)
        assert np.allclose(var_observed - var_latent, gp.hyperparameters.noise_variance)

    def test_noise_variance_grows_with_observation_noise(self, rng):
        quiet_gp, _, _ = _fitted_gp(np.random.default_rng(1), noise_level=0.02, n=30)
        loud_gp, _, _ = _fitted_gp(np.random.default_rng(1), noise_level=1.5, n=30)
        assert loud_gp.hyperparameters.noise_variance > quiet_gp.hyperparameters.noise_variance


class TestLengthscalePriors:
    def test_priors_pull_lengthscales_away_from_extremes(self, rng):
        """Without priors, near-duplicate discrete data can collapse a lengthscale."""
        params = [
            OrdinalParameter("x", list(range(1, 9))),
            OrdinalParameter("irrelevant", list(range(1, 9))),
        ]
        configs = [{"x": x, "irrelevant": (x * 3) % 8 + 1} for x in range(1, 9) for _ in range(2)]
        values = [float(c["x"]) for c in configs]
        with_prior = GaussianProcess(params, log_transform_output=False, rng=np.random.default_rng(0))
        without_prior = GaussianProcess(
            params, lengthscale_prior=None, log_transform_output=False, rng=np.random.default_rng(0)
        )
        with_prior.fit(configs, values)
        without_prior.fit(configs, values)
        spread_with = np.ptp(np.log10(with_prior.hyperparameters.lengthscales))
        spread_without = np.ptp(np.log10(without_prior.hyperparameters.lengthscales))
        # the MAP fit keeps lengthscales within a narrower band than plain MLE
        assert spread_with <= spread_without + 1.0
        assert with_prior.hyperparameters.lengthscales.min() > 1e-3
