"""Tests for the experiment harness: config, runner, metrics, tables, figures."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.result import Evaluation, ObjectiveResult, TuningHistory
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.metrics import (
    evaluations_to_reach,
    expert_hits,
    geometric_mean,
    mean_best_curve,
    mean_best_value,
    reference_value,
    relative_performance,
    speedup_factor,
)
from repro.experiments.reporting import format_checkpoint_study, format_figure5, format_table
from repro.experiments.runner import MAIN_TUNERS, TUNER_VARIANTS, make_tuner, run_benchmark, run_single
from repro.experiments.tables import table3_rows
from repro.workloads import get_benchmark


def _history(values, tuner="t", feasible=None):
    history = TuningHistory(tuner_name=tuner)
    feasible = feasible or [True] * len(values)
    for value, ok in zip(values, feasible):
        history.append({"x": value}, ObjectiveResult(value if ok else math.inf, feasible=ok))
    return history


class TestConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.repetitions == 3
        assert config.scaled_budget(60) == 30
        assert config.scaled_budget(10) >= 6

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(repetitions=0)
        with pytest.raises(ValueError):
            ExperimentConfig(budget_scale=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(fidelity="extreme")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPETITIONS", "7")
        monkeypatch.setenv("REPRO_BUDGET_SCALE", "0.25")
        monkeypatch.setenv("REPRO_FIDELITY", "paper")
        config = default_config()
        assert config.repetitions == 7
        assert config.budget_scale == 0.25
        assert config.fidelity == "paper"


class TestMetrics:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert math.isnan(geometric_mean([]))
        assert geometric_mean([2.0, float("inf")]) == pytest.approx(2.0)

    def test_mean_best_value(self):
        histories = [_history([5, 3, 4]), _history([2, 6, 6])]
        assert mean_best_value(histories) == pytest.approx((3 + 2) / 2)
        assert mean_best_value(histories, budget=1) == pytest.approx((5 + 2) / 2)

    def test_mean_best_curve_monotone(self):
        histories = [_history([5, 3, 4]), _history([2, 6, 1])]
        curve = mean_best_curve(histories)
        assert len(curve) == 3
        assert all(curve[i + 1] <= curve[i] + 1e-12 for i in range(len(curve) - 1))

    def test_mean_best_curve_handles_initial_infeasible(self):
        histories = [_history([9, 3], feasible=[False, True])]
        curve = mean_best_curve(histories)
        assert np.isfinite(curve).all()

    def test_evaluations_to_reach(self):
        histories = [_history([5, 3, 1]), _history([5, 5, 5])]
        assert evaluations_to_reach(histories, 3.0, budget=3) == pytest.approx((2 + 3) / 2)
        assert math.isnan(evaluations_to_reach([], 3.0))

    def test_speedup_factor(self):
        fast = [_history([5, 1, 1, 1, 1, 1])]
        slow = [_history([5, 5, 5, 5, 5, 4])]
        factor = speedup_factor(fast, slow, budget=6)
        assert factor == pytest.approx(3.0)

    def test_speedup_factor_nan_when_never_reached(self):
        fast = [_history([9, 9, 9])]
        slow = [_history([1, 1, 1])]
        assert math.isnan(speedup_factor(fast, slow, budget=3))

    def test_relative_performance_and_hits(self):
        benchmark = get_benchmark("taco_spmm_scircuit")
        expert = benchmark.expert_value
        histories = [_history([expert * 2, expert]), _history([expert * 4, expert * 2])]
        rel = relative_performance(benchmark, histories)
        assert rel == pytest.approx((1.0 + 0.5) / 2)
        assert expert_hits(benchmark, histories) == 1

    def test_reference_value_for_hpvm_uses_best_found(self):
        benchmark = get_benchmark("hpvm_bfs")
        results = {"A": [_history([4.0, 2.0])], "B": [_history([3.0])]}
        assert reference_value(benchmark, results) == 2.0
        assert reference_value(benchmark, None) == benchmark.default_value


class TestRunner:
    def test_all_variants_constructible(self, small_space):
        for name in TUNER_VARIANTS:
            tuner = make_tuner(name, small_space, seed=0)
            assert tuner.name == name

    def test_unknown_variant_rejected(self, small_space):
        with pytest.raises(KeyError):
            make_tuner("AutoTVM", small_space, seed=0)

    def test_run_single_and_cache(self, tmp_path):
        config = ExperimentConfig(
            repetitions=1, budget_scale=0.5, cache_dir=tmp_path, use_cache=True
        )
        first = run_single("hpvm_bfs", "Uniform Sampling", budget=8, seed=1, config=config)
        assert len(first) == 8
        cached_files = list(tmp_path.glob("*.json"))
        assert len(cached_files) == 1
        second = run_single("hpvm_bfs", "Uniform Sampling", budget=8, seed=1, config=config)
        assert [e.value for e in second] == [e.value for e in first]

    def test_run_benchmark_produces_all_tuners(self, tmp_path):
        config = ExperimentConfig(repetitions=2, budget_scale=0.5, cache_dir=tmp_path)
        results = run_benchmark(
            "hpvm_bfs", ("Uniform Sampling", "CoT Sampling"), budget=6, config=config
        )
        assert set(results) == {"Uniform Sampling", "CoT Sampling"}
        assert all(len(histories) == 2 for histories in results.values())
        assert all(len(h) == 6 for histories in results.values() for h in histories)

    def test_main_tuners_cover_paper_baselines(self):
        assert set(MAIN_TUNERS) == {
            "BaCO",
            "ATF with OpenTuner",
            "Ytopt",
            "Uniform Sampling",
            "CoT Sampling",
        }


class TestTablesAndReporting:
    def test_table3_rows_structure(self):
        headers, rows = table3_rows(["taco_spmm_scircuit", "rise_mm_gpu", "hpvm_bfs"])
        assert headers[0] == "Benchmark"
        assert len(rows) == 3
        assert rows[0][1] == 6  # SpMM dimension
        assert rows[1][1] == 10  # MM_GPU dimension

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", float("nan")]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len({len(line) for line in lines[2:]}) <= 2

    def test_format_figure5(self):
        data = {
            "TACO": {
                "tiny": {"BaCO": 0.8, "Default": 0.4},
                "small": {"BaCO": 1.1, "Default": 0.4},
                "full": {"BaCO": 1.2, "Default": 0.4},
            }
        }
        text = format_figure5(data)
        assert "TACO" in text and "BaCO" in text and "tiny" in text

    def test_format_checkpoint_study(self):
        data = {"BaCO": {"tiny": 0.9, "full": 1.2}, "BaCO--": {"tiny": 0.7, "full": 1.0}}
        text = format_checkpoint_study(data, "[Fig. 8]")
        assert "[Fig. 8]" in text and "BaCO--" in text
