"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.space import (
    CategoricalParameter,
    Constraint,
    IntegerParameter,
    OrdinalParameter,
    PermutationParameter,
    RealParameter,
    SearchSpace,
)
from repro.core.result import ObjectiveResult


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_space() -> SearchSpace:
    """A tiny mixed-type constrained space used across many tests."""
    parameters = [
        OrdinalParameter("p1", [2, 4, 8, 16], transform="log"),
        OrdinalParameter("p2", [2, 4, 8, 16], transform="log"),
        CategoricalParameter("sched", ["static", "dynamic", "guided"]),
        PermutationParameter("order", 3),
    ]
    constraints = [Constraint("p1 >= p2")]
    return SearchSpace(parameters, constraints)


@pytest.fixture
def unconstrained_space() -> SearchSpace:
    parameters = [
        OrdinalParameter("tile", [1, 2, 4, 8, 16, 32], transform="log"),
        IntegerParameter("threads", 1, 8),
        RealParameter("alpha", 0.1, 10.0, transform="log"),
        CategoricalParameter("mode", ["a", "b"]),
    ]
    return SearchSpace(parameters)


@pytest.fixture
def paper_cot_space() -> SearchSpace:
    """The 5-parameter example of Fig. 4 in the paper."""
    parameters = [
        OrdinalParameter("p1", [2, 4]),
        OrdinalParameter("p2", [2, 4]),
        OrdinalParameter("p3", [1, 4]),
        OrdinalParameter("p4", [1, 2, 4]),
        OrdinalParameter("p5", [2, 4, 8]),
    ]
    constraints = [
        Constraint("p1 >= p2"),
        Constraint("p4 >= p3"),
        Constraint("p5 >= 2 * p4"),
    ]
    return SearchSpace(parameters, constraints)


@pytest.fixture
def quadratic_objective():
    """A smooth objective over `small_space`: minimized at p1=p2, order=(2,1,0)."""

    def objective(config) -> ObjectiveResult:
        value = (
            config["p1"] / config["p2"]
            + sum(i * v for i, v in enumerate(config["order"]))
            + (1.0 if config["sched"] == "static" else 2.0)
            + 0.1
        )
        return ObjectiveResult(value=float(value), feasible=True)

    return objective


@pytest.fixture
def hidden_constraint_objective():
    """Same as `quadratic_objective` but configurations with p1 > 8 fail."""

    def objective(config) -> ObjectiveResult:
        if config["p1"] > 8:
            return ObjectiveResult(value=float("inf"), feasible=False)
        value = (
            config["p1"] / config["p2"]
            + sum(i * v for i, v in enumerate(config["order"]))
            + (1.0 if config["sched"] == "static" else 2.0)
            + 0.1
        )
        return ObjectiveResult(value=float(value), feasible=True)

    return objective
