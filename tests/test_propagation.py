"""The constraint-propagation sampling engine: reducers, pruned draws, suite.

Four protection layers for the domain-pruning layer under ``sample_rows``:

* **soundness against the scalar oracle** — per-constraint domain reducers
  and the fixed point never prune a value that participates in any feasible
  assignment (brute-force enumeration on small discrete spaces, plus a
  hypothesis property suite over random mixed R/I/O/C/P spaces driven by the
  scalar ``sample_reference`` oracle);
* **confluence** — the arc-consistency fixed point is independent of the
  order the reducers are applied in (contracting + monotone);
* **semantic equivalence** — ``propagate=True`` produces only feasible rows
  (``feasible_mask_rows`` stays the final filter), reaches the exact
  per-constraint support, and keeps unconstrained dimensions untouched,
  while the default-off path consumes the RNG stream bit-identically to the
  pre-propagation sampler;
* **the hard-constraint workload suite** — densities behave as labelled:
  rejection works at 1e-2, propagation is required at 1e-6.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import assume, given
from hypothesis import settings as hyp_settings
from hypothesis import strategies as st

from repro.space.chain_of_trees import Tree
from repro.space.constraints import (
    Constraint,
    Domain,
    compile_domain_reducer,
    propagate_domains,
)
from repro.space.parameters import (
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
    PermutationParameter,
    RealParameter,
)
from repro.space.space import SearchSpace


def _reducers(constraints):
    compiled = [compile_domain_reducer(c) for c in constraints]
    return [r for r in compiled if r is not None]


def _admits(domain: Domain, value) -> bool:
    if domain.kind == "discrete":
        return value in domain.values
    return domain.low <= float(value) <= domain.high


# ---------------------------------------------------------------------------
# Domain basics
# ---------------------------------------------------------------------------

class TestDomain:
    def test_discrete_roundtrip_and_empty(self):
        dom = Domain.discrete([1, 2, 3])
        assert dom.kind == "discrete" and dom.size == 3 and not dom.is_empty
        empty = dom.empty_like()
        assert empty.is_empty and empty.kind == "discrete"

    def test_interval_and_equality(self):
        dom = Domain.interval(0.5, 2.0)
        assert dom.kind == "interval" and not dom.is_empty
        assert Domain.interval(2.0, 0.5).is_empty
        assert dom == Domain.interval(0.5, 2.0)
        assert dom != Domain.discrete([0.5, 2.0])


# ---------------------------------------------------------------------------
# reducer soundness vs. brute force
# ---------------------------------------------------------------------------

def _brute_force_support(domains: dict, constraints) -> dict:
    """Per-parameter value sets that appear in >= 1 satisfying assignment."""
    names = list(domains)
    support: dict = {name: set() for name in names}
    for combo in itertools.product(*(domains[name] for name in names)):
        config = dict(zip(names, combo))
        if all(c.evaluate(config) for c in constraints):
            for name, value in config.items():
                support[name].add(value)
    return support


class TestReducerSoundness:
    DOMAINS = {
        "a": list(range(8)),
        "b": list(range(8)),
        "c": [1, 2, 4, 8],
    }

    def _propagated(self, constraints):
        initial = {k: Domain.discrete(v) for k, v in self.DOMAINS.items()}
        pruned, _rounds = propagate_domains(_reducers(constraints), initial)
        return pruned

    @pytest.mark.parametrize(
        "expression",
        [
            "a < b",
            "a % 2 == 0",
            "a + b <= 4",
            "a * c <= 8",
            "a == b",
            "c in (2, 8)",
            "a <= 2 or b >= 6",
            "a % 2 == 0 and b > a",
            "2 <= a <= 5",
        ],
    )
    def test_single_constraint_gac_is_exact(self, expression):
        """Product-form GAC on one constraint keeps exactly the support."""
        constraints = [Constraint(expression)]
        pruned = self._propagated(constraints)
        support = _brute_force_support(self.DOMAINS, constraints)
        for name in self.DOMAINS:
            assert set(pruned[name].values) == support[name], name

    def test_conjunction_fixed_point_is_sound(self):
        constraints = [
            Constraint("a < b"),
            Constraint("a + b <= 9"),
            Constraint("a * c <= 16"),
            Constraint("b % 2 == 0"),
        ]
        pruned = self._propagated(constraints)
        support = _brute_force_support(self.DOMAINS, constraints)
        for name in self.DOMAINS:
            # never prune a feasible value; pruning may over-approximate
            assert support[name] <= set(pruned[name].values), name

    def test_unsatisfiable_constraint_empties_its_domain(self):
        """A constraint with no support empties the involved domain.

        (A globally unsatisfiable *conjunction* of individually consistent
        constraints — e.g. ``a > b`` and ``a < b`` — is beyond arc
        consistency; only per-constraint support is guaranteed.)
        """
        pruned = self._propagated([Constraint("a > 10")])
        assert pruned["a"].is_empty
        chained = self._propagated([Constraint("a < b"), Constraint("b < a")])
        # sound even when unsatisfiable: never *wrongly* empties a domain
        assert not chained["c"].is_empty

    def test_callable_constraints_do_not_compile(self):
        assert compile_domain_reducer(
            Constraint.from_callable(lambda cfg: cfg["a"] > 0, name="cb", variables=["a"])
        ) is None

    def test_interval_endpoint_tightening(self):
        initial = {"eps": Domain.interval(0.01, 1.0), "a": Domain.discrete(range(8))}
        pruned, _ = propagate_domains(_reducers([Constraint("eps >= 0.05")]), initial)
        assert pruned["eps"].low == pytest.approx(0.05)
        assert pruned["eps"].high == pytest.approx(1.0)

    def test_interval_vs_discrete_comparison(self):
        initial = {"eps": Domain.interval(0.0, 10.0), "a": Domain.discrete([1, 2, 4])}
        pruned, _ = propagate_domains(_reducers([Constraint("eps <= a")]), initial)
        assert pruned["eps"].high == pytest.approx(4.0)

    def test_fixed_values_participate(self):
        """A fixed assignment narrows the other variables' domains."""
        initial = {"b": Domain.discrete(range(8))}
        pruned, _ = propagate_domains(
            _reducers([Constraint("a < b")]), initial, fixed={"a": 5}
        )
        assert set(pruned["b"].values) == {6, 7}

    def test_fixed_violation_through_disjunction(self):
        """A dead disjunct must not block pruning by the live one."""
        initial = {"eps": Domain.interval(0.01, 1.0)}
        pruned, _ = propagate_domains(
            _reducers([Constraint("eps >= 0.05 or a <= 50")]), initial, fixed={"a": 80}
        )
        assert pruned["eps"].low == pytest.approx(0.05)


# ---------------------------------------------------------------------------
# hypothesis property suite
# ---------------------------------------------------------------------------

_TEMPLATES = (
    "a < b",
    "a >= b",
    "a + b <= {n}",
    "a % 2 == 0",
    "b % 3 == 1",
    "a != b",
    "a in (0, 2, 4, 6)",
    "a <= b or b >= {n}",
    "1 <= a <= {n}",
    "eps >= 0.05 or a <= {n}",
)


@st.composite
def constrained_spaces(draw):
    """Random mixed R/I/O/C/P spaces with 1-3 residual template constraints."""
    a_vals = draw(st.lists(st.integers(0, 9), min_size=3, max_size=6, unique=True))
    parameters = [
        OrdinalParameter("a", sorted(a_vals)),
        IntegerParameter("b", 0, draw(st.integers(3, 9))),
        RealParameter("eps", 0.01, 1.0, transform=draw(st.sampled_from(["linear", "log"]))),
        CategoricalParameter("mode", ["u", "v", "w"][: draw(st.integers(2, 3))]),
        PermutationParameter("perm", draw(st.integers(2, 3))),
    ]
    chosen = draw(
        st.lists(st.sampled_from(_TEMPLATES), min_size=1, max_size=3, unique=True)
    )
    constraints = [
        Constraint(template.format(n=draw(st.integers(2, 8)))) for template in chosen
    ]
    # residual-only on purpose: propagation over the free parameters is the
    # code under test (tree capture is covered by TestTreeBuildEquivalence)
    return SearchSpace(parameters, constraints, build_chain_of_trees=False)


@given(constrained_spaces(), st.integers(0, 2**31 - 1))
@hyp_settings(max_examples=30, deadline=None)
def test_no_feasible_configuration_is_ever_pruned(space, seed):
    """Every config the scalar oracle accepts lies inside the pruned domains."""
    rng = np.random.default_rng(seed)
    try:
        configs = space.sample_reference(rng, 5, max_rejection_rounds=400)
    except RuntimeError:
        assume(False)  # feasible region too sparse to exercise the oracle
    pruned, _rounds = space.with_propagation()._pruned_free_domains()
    for config in configs:
        assert space.is_feasible(config)
        for name, domain in pruned.items():
            assert _admits(domain, config[name]), (name, config[name], domain)


@given(constrained_spaces(), st.randoms(use_true_random=False))
@hyp_settings(max_examples=30, deadline=None)
def test_fixed_point_is_order_independent(space, shuffler):
    """The propagation fixed point is confluent under reducer reordering."""
    reducers = _reducers(space.constraints)
    assume(reducers)
    initial = {
        p.name: dom
        for p in space.parameters
        if (dom := p.propagation_domain()) is not None
    }
    reference, _ = propagate_domains(reducers, initial)
    shuffled = list(reducers)
    shuffler.shuffle(shuffled)
    permuted, _ = propagate_domains(shuffled, initial)
    assert reference == permuted


@given(constrained_spaces(), st.integers(0, 2**31 - 1))
@hyp_settings(max_examples=20, deadline=None)
def test_propagated_rows_are_feasible_and_default_stream_unchanged(space, seed):
    propagating = space.with_propagation()
    try:
        rows = propagating.sample_rows(np.random.default_rng(seed), 16)
    except RuntimeError:
        assume(False)
    assert len(rows) == 16
    assert bool(np.all(space.feasible_mask_rows(rows)))
    # default-off consumes the RNG stream identically with the kwarg spelled
    # out or omitted, and independently of the propagating view existing
    baseline = space.sample_rows(np.random.default_rng(seed), 16)
    explicit = space.sample_rows(np.random.default_rng(seed), 16, propagate=False)
    np.testing.assert_array_equal(baseline, explicit)


# ---------------------------------------------------------------------------
# the propagating sampler
# ---------------------------------------------------------------------------

def _divisible_space(**kwargs) -> SearchSpace:
    return SearchSpace(
        [
            OrdinalParameter("a", list(range(30))),
            OrdinalParameter("b", list(range(10))),
            RealParameter("eps", 0.01, 1.0, transform="log"),
            CategoricalParameter("mode", ["u", "v"]),
            PermutationParameter("perm", 3),
        ],
        [Constraint("a % 3 == 0"), Constraint("eps >= 0.05")],
        build_chain_of_trees=False,
        **kwargs,
    )


class TestPropagatedSampling:
    def test_with_propagation_is_a_non_mutating_view(self):
        space = _divisible_space()
        view = space.with_propagation()
        assert view is not space
        assert not space.propagate and view.propagate
        assert view.with_propagation() is view  # idempotent
        assert view.parameters is space.parameters
        assert view.encoder is space.encoder

    def test_propagation_reaches_exact_support_and_uniformity(self):
        space = _divisible_space().with_propagation()
        rows = space.sample_rows(np.random.default_rng(0), 5000)
        configs = [space.encoder.decode(row) for row in rows]
        observed = np.array([c["a"] for c in configs])
        expected_support = set(range(0, 30, 3))
        counts = {v: int((observed == v).sum()) for v in expected_support}
        assert set(observed.tolist()) == expected_support
        # uniform over the support: each value within +-40% of expectation
        for value, count in counts.items():
            assert 0.6 * 500 < count < 1.4 * 500, (value, count)
        # untouched dimensions keep their full support
        assert {c["mode"] for c in configs} == {"u", "v"}
        assert min(c["eps"] for c in configs) >= 0.05
        assert len({tuple(c["perm"]) for c in configs}) == 6

    def test_propagation_stats_recorded(self):
        space = _divisible_space().with_propagation()
        space.sample_rows(np.random.default_rng(1), 64)
        stats = space.last_sample_stats
        assert stats["propagate"] is True
        assert stats["accepted"] == 64
        assert stats["acceptance_rate"] > 0.9  # both constraints fully pruned
        assert [c["name"] for c in stats["constraints"]] == ["a % 3 == 0", "eps >= 0.05"]

    def test_settings_propagate_kwarg_overrides_flag(self):
        space = _divisible_space()
        rows = space.sample_rows(np.random.default_rng(2), 32, propagate=True)
        assert bool(np.all(space.feasible_mask_rows(rows)))
        assert space.last_sample_stats["propagate"] is True

    def test_provably_infeasible_space_raises_immediately(self):
        space = SearchSpace(
            [OrdinalParameter("a", [1, 2, 3])],
            [Constraint("a > 5")],
            build_chain_of_trees=False,
        ).with_propagation()
        with pytest.raises(RuntimeError, match="no feasible configuration"):
            space.sample_rows(np.random.default_rng(0), 4)

    def test_real_domain_draws_respect_truncation(self):
        space = SearchSpace(
            [RealParameter("eps", 0.01, 1.0, transform="log")],
            [Constraint("eps >= 0.2")],
            build_chain_of_trees=False,
        ).with_propagation()
        rows = space.sample_rows(np.random.default_rng(3), 512)
        values = space.encoder.value_columns(rows, names=["eps"])["eps"]
        assert float(values.min()) >= 0.2
        assert float(values.max()) <= 1.0

    def test_neighbour_rows_agree_with_unpruned_path(self):
        space = _divisible_space()
        view = space.with_propagation()
        rows = space.sample_rows(np.random.default_rng(4), 8)
        base = space.neighbour_rows_batch(rows)
        pruned = view.neighbour_rows_batch(rows)
        assert len(base) == len(pruned)
        for lhs, rhs in zip(base, pruned):
            np.testing.assert_array_equal(lhs, rhs)


class TestRejectionDiagnostics:
    def test_failure_message_carries_acceptance_and_hint(self):
        space = SearchSpace(
            [OrdinalParameter("a", list(range(1000)))],
            [Constraint("a % 500 == 0")],
            build_chain_of_trees=False,
        )
        with pytest.raises(RuntimeError) as excinfo:
            space.sample_rows(np.random.default_rng(0), 64, max_rejection_rounds=2)
        message = str(excinfo.value)
        # the historical first line survives for callers matching on it
        assert message.startswith(
            "rejection sampling failed to find feasible configurations"
        )
        assert "acceptance rate" in message
        assert "a % 500 == 0" in message
        assert "with_propagation" in message

    def test_propagating_failure_omits_the_hint(self):
        space = SearchSpace(
            [
                OrdinalParameter("a", list(range(1000))),
                OrdinalParameter("b", list(range(1000))),
            ],
            # not reducible to per-parameter pruning: stays sparse even when
            # propagating, so the budget still exhausts
            [Constraint("a == b")],
            build_chain_of_trees=False,
        ).with_propagation()
        with pytest.raises(RuntimeError) as excinfo:
            space.sample_rows(np.random.default_rng(0), 64, max_rejection_rounds=2)
        assert "with_propagation" not in str(excinfo.value)


# ---------------------------------------------------------------------------
# chain-of-trees build equivalence
# ---------------------------------------------------------------------------

def _tree_shape(node):
    return (
        node.value,
        node.depth,
        node.leaf_count,
        [_tree_shape(child) for child in node.children],
    )


class TestTreeBuildEquivalence:
    def test_propagated_tree_is_structurally_identical(self):
        powers = [1, 2, 4, 8, 16, 32, 64]
        parameters = [
            OrdinalParameter("ts", powers),
            OrdinalParameter("ls", powers[:4]),
            OrdinalParameter("k", [1, 2, 3]),
        ]
        constraints = [
            Constraint("ts % ls == 0"),
            Constraint("ts * ls <= 256"),
            Constraint("k < ls"),
        ]
        plain = Tree(parameters, constraints)
        propagated = Tree(parameters, constraints, propagate=True)
        assert plain.n_feasible == propagated.n_feasible
        assert _tree_shape(plain.root) == _tree_shape(propagated.root)

    def test_propagated_root_domains_are_populated(self):
        parameters = [OrdinalParameter("x", list(range(10)))]
        tree = Tree(parameters, [Constraint("x % 2 == 0")], propagate=True)
        assert tree.root.domains is not None
        assert set(tree.root.domains["x"].values) == {0, 2, 4, 6, 8}


# ---------------------------------------------------------------------------
# hard-constraint workload suite
# ---------------------------------------------------------------------------

class TestHardConstraintSuite:
    def test_registry_and_names(self):
        from repro.workloads import (
            HARD_CONSTRAINT_DENSITIES,
            benchmark_names,
            get_benchmark,
            hard_constraint_benchmark_names,
        )

        names = hard_constraint_benchmark_names()
        assert names == [
            "hard_constraint_1e-2",
            "hard_constraint_1e-4",
            "hard_constraint_1e-6",
        ]
        # a scenario axis of its own, not one of the paper's 25 instances
        assert not set(names) & set(benchmark_names())
        assert HARD_CONSTRAINT_DENSITIES == {"1e-2": 2, "1e-4": 4, "1e-6": 6}
        for name in names:
            bench = get_benchmark(name)
            assert bench.name == name
            assert bench.space.chain_of_trees is None
            result = bench.evaluator(bench.default_configuration)
            assert result.feasible and result.value > 0
        with pytest.raises(KeyError):
            get_benchmark("hard_constraint_1e-9")

    def test_density_scales_with_k(self):
        """Empirical acceptance of the 1e-2 instance sits near its label."""
        from repro.workloads import get_benchmark

        space = get_benchmark("hard_constraint_1e-2").space
        space.sample_rows(np.random.default_rng(7), 128, max_rejection_rounds=2_000)
        stats = space.last_sample_stats
        empirical = stats["accepted"] / stats["drawn"]
        assert 0.002 < empirical < 0.05  # ~1e-2 up to sampling noise

    def test_sparsest_instance_needs_propagation(self):
        from repro.workloads import get_benchmark

        space = get_benchmark("hard_constraint_1e-6").space
        with pytest.raises(RuntimeError, match="rejection sampling failed"):
            space.sample_rows(np.random.default_rng(0), 32, max_rejection_rounds=50)
        rows = space.with_propagation().sample_rows(np.random.default_rng(0), 32)
        assert len(rows) == 32
        assert bool(np.all(space.feasible_mask_rows(rows)))

    def test_objective_is_deterministic_and_picklable(self):
        import pickle

        from repro.workloads import get_benchmark

        bench = get_benchmark("hard_constraint_1e-4")
        clone = pickle.loads(pickle.dumps(bench.evaluator))
        config = bench.default_configuration
        assert clone(config).value == bench.evaluator(config).value


# ---------------------------------------------------------------------------
# tuner plumbing
# ---------------------------------------------------------------------------

class TestTunerPlumbing:
    def test_baco_settings_flag_swaps_the_space(self):
        from repro.core.baco import BacoSettings, BacoTuner
        from repro.workloads import get_benchmark

        bench = get_benchmark("hard_constraint_1e-6")
        tuner = BacoTuner(
            bench.space,
            settings=BacoSettings(constraint_propagation=True),
            seed=0,
        )
        assert tuner.space is not bench.space
        assert tuner.space.propagate
        assert not bench.space.propagate  # the registry singleton is untouched
        assert tuner._space_encoder is tuner.space.encoder

    def test_session_meta_round_trips_propagate(self, tmp_path):
        from repro.core.session import drive
        from repro.experiments.runner import load_session, make_session, save_session

        session, bench = make_session(
            "hard_constraint_1e-6", "Uniform Sampling", 4, 11, propagate=True
        )
        assert session.meta["propagate"] is True
        drive(session, bench.evaluator)
        path = save_session(session, tmp_path / "prop.ckpt.json")
        restored, _bench = load_session(path)
        assert restored.tuner.space.propagate
        assert len(restored.history) == 4

    def test_default_sessions_record_no_propagate_key(self):
        from repro.experiments.runner import make_session

        session, _bench = make_session("hard_constraint_1e-2", "Uniform Sampling", 2, 1)
        assert "propagate" not in session.meta
        assert not session.tuner.space.propagate
