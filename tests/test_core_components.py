"""Tests for acquisition functions, feasibility model, DoE, local search, results."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.acquisition import (
    AcquisitionFunction,
    expected_improvement,
    lower_confidence_bound,
)
from repro.core.doe import default_doe_size, initial_design
from repro.core.feasibility import FeasibilityModel, FeasibilityThresholdSchedule
from repro.core.local_search import LocalSearchSettings, multistart_local_search, random_candidates
from repro.core.result import Evaluation, ObjectiveResult, TuningHistory
from repro.models.gp import GaussianProcess


# ---------------------------------------------------------------------------
# expected improvement
# ---------------------------------------------------------------------------

class TestExpectedImprovement:
    def test_zero_variance_at_worse_mean(self):
        ei = expected_improvement(np.array([5.0]), np.array([1e-18]), best_value=1.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-9)

    def test_certain_improvement_equals_gap(self):
        ei = expected_improvement(np.array([1.0]), np.array([1e-18]), best_value=3.0)
        assert ei[0] == pytest.approx(2.0, rel=1e-6)

    def test_more_uncertainty_more_ei_at_equal_mean(self):
        low = expected_improvement(np.array([2.0]), np.array([0.01]), best_value=2.0)
        high = expected_improvement(np.array([2.0]), np.array([1.0]), best_value=2.0)
        assert high[0] > low[0]

    def test_never_negative(self):
        means = np.linspace(-3, 3, 21)
        ei = expected_improvement(means, np.full(21, 0.3), best_value=0.0)
        assert np.all(ei >= 0)

    def test_lcb_prefers_uncertain_points(self):
        low = lower_confidence_bound(np.array([1.0]), np.array([0.01]))
        high = lower_confidence_bound(np.array([1.0]), np.array([1.0]))
        assert high[0] > low[0]


class TestAcquisitionFunction:
    def _fitted_gp(self, rng, space):
        configs = space.sample(rng, 15)
        values = [c["p1"] / c["p2"] + 1.0 for c in configs]
        gp = GaussianProcess(space.parameters, rng=rng, n_prior_samples=6, n_refined_starts=1)
        gp.fit(configs, values)
        return gp, configs, values

    def test_prefers_promising_configurations(self, rng, small_space):
        gp, configs, values = self._fitted_gp(rng, small_space)
        acquisition = AcquisitionFunction(gp, best_value=min(values))
        good = {"p1": 4, "p2": 4, "sched": "static", "order": (0, 1, 2)}
        bad = {"p1": 16, "p2": 2, "sched": "static", "order": (0, 1, 2)}
        values_out = acquisition([good, bad])
        assert values_out[0] >= values_out[1]

    def test_feasibility_weighting_zeroes_below_threshold(self, rng, small_space):
        gp, configs, values = self._fitted_gp(rng, small_space)

        class StubFeasibility:
            is_trained = True

            def predict_probability(self, candidates):
                return np.array([0.9 if c["p1"] <= 8 else 0.05 for c in candidates])

        acquisition = AcquisitionFunction(
            gp, best_value=min(values), feasibility_model=StubFeasibility(), feasibility_threshold=0.5
        )
        allowed = {"p1": 4, "p2": 2, "sched": "static", "order": (0, 1, 2)}
        cut = {"p1": 16, "p2": 2, "sched": "static", "order": (0, 1, 2)}
        out = acquisition([allowed, cut])
        assert np.isfinite(out[0])
        assert out[1] == -np.inf

    def test_requires_finite_best(self, rng, small_space):
        gp, _, _ = self._fitted_gp(rng, small_space)
        with pytest.raises(ValueError):
            AcquisitionFunction(gp, best_value=math.inf)

    def test_empty_batch(self, rng, small_space):
        gp, _, values = self._fitted_gp(rng, small_space)
        acquisition = AcquisitionFunction(gp, best_value=min(values))
        assert acquisition([]).shape == (0,)


# ---------------------------------------------------------------------------
# feasibility model and threshold schedule
# ---------------------------------------------------------------------------

class TestFeasibilityModel:
    def test_untrained_predicts_prior(self, small_space):
        model = FeasibilityModel(small_space)
        probabilities = model.predict_probability(
            [{"p1": 2, "p2": 2, "sched": "static", "order": (0, 1, 2)}]
        )
        assert probabilities[0] == pytest.approx(1.0)
        assert not model.is_trained

    def test_single_class_gives_smoothed_estimate(self, small_space, rng):
        model = FeasibilityModel(small_space, rng=rng)
        configs = small_space.sample(rng, 10)
        model.fit(configs, [True] * 10)
        assert not model.is_trained
        probability = model.predict_probability(configs[:1])[0]
        assert 0.8 < probability <= 1.0

    def test_learns_hidden_constraint(self, small_space, rng):
        model = FeasibilityModel(small_space, n_trees=24, rng=rng)
        configs = small_space.sample(rng, 120)
        labels = [c["p1"] <= 4 for c in configs]
        model.fit(configs, labels)
        assert model.is_trained
        feasible_cfg = {"p1": 2, "p2": 2, "sched": "static", "order": (0, 1, 2)}
        infeasible_cfg = {"p1": 16, "p2": 2, "sched": "static", "order": (0, 1, 2)}
        p_ok = model.predict_probability([feasible_cfg])[0]
        p_bad = model.predict_probability([infeasible_cfg])[0]
        assert p_ok > p_bad

    def test_length_mismatch(self, small_space, rng):
        model = FeasibilityModel(small_space, rng=rng)
        with pytest.raises(ValueError):
            model.fit(small_space.sample(rng, 3), [True, False])


class TestFeasibilityThresholdSchedule:
    def test_disabled_always_zero(self, rng):
        schedule = FeasibilityThresholdSchedule(enabled=False)
        assert all(schedule.sample(rng) == 0.0 for _ in range(20))

    def test_zero_probability_respected(self, rng):
        schedule = FeasibilityThresholdSchedule(zero_probability=0.5, max_threshold=0.8)
        samples = [schedule.sample(rng) for _ in range(2000)]
        zero_fraction = sum(1 for s in samples if s == 0.0) / len(samples)
        assert 0.4 < zero_fraction < 0.6
        assert max(samples) <= 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            FeasibilityThresholdSchedule(zero_probability=0.0)
        with pytest.raises(ValueError):
            FeasibilityThresholdSchedule(max_threshold=1.5)


# ---------------------------------------------------------------------------
# initial design
# ---------------------------------------------------------------------------

class TestInitialDesign:
    def test_produces_requested_count(self, small_space, rng):
        samples = initial_design(small_space, 12, rng)
        assert len(samples) == 12
        assert all(small_space.is_feasible(c) for c in samples)

    def test_deduplicates_when_possible(self, small_space, rng):
        samples = initial_design(small_space, 20, rng)
        keys = {small_space.freeze(c) for c in samples}
        assert len(keys) == 20

    def test_tiny_space_allows_duplicates(self, rng):
        from repro.space import OrdinalParameter, SearchSpace

        space = SearchSpace([OrdinalParameter("a", [1, 2])])
        samples = initial_design(space, 10, rng)
        assert len(samples) == 10

    def test_default_doe_size_bounds(self, small_space):
        assert default_doe_size(small_space, 60) >= small_space.dimension + 1
        assert default_doe_size(small_space, 9) <= 3
        assert default_doe_size(small_space, 3) >= 1

    def test_invalid_count(self, small_space, rng):
        with pytest.raises(ValueError):
            initial_design(small_space, 0, rng)


# ---------------------------------------------------------------------------
# local search
# ---------------------------------------------------------------------------

class TestLocalSearch:
    def test_finds_optimum_of_known_acquisition(self, small_space, rng):
        def acquisition(configs):
            # maximized at p1 == p2 and order == (2, 1, 0)
            return np.array(
                [
                    -(c["p1"] / c["p2"]) - sum(i * v for i, v in enumerate(c["order"]))
                    for c in configs
                ]
            )

        best, value = multistart_local_search(
            small_space,
            acquisition,
            rng,
            settings=LocalSearchSettings(n_random_samples=64, n_starts=4, max_steps=20),
        )
        assert best is not None
        assert best["p1"] == best["p2"]
        assert tuple(best["order"]) == (2, 1, 0)

    def test_respects_exclusion_set(self, small_space, rng):
        def acquisition(configs):
            return np.array([1.0 if c["p1"] == 2 and c["p2"] == 2 else 0.0 for c in configs])

        excluded_keys = {
            small_space.freeze({"p1": 2, "p2": 2, "sched": s, "order": o})
            for s in ("static", "dynamic", "guided")
            for o in small_space["order"].values_list()
        }
        best, _ = multistart_local_search(
            small_space, acquisition, rng, exclude=excluded_keys
        )
        assert best is not None
        assert small_space.freeze(best) not in excluded_keys

    def test_random_candidates_are_unique_and_feasible(self, small_space, rng):
        candidates = random_candidates(small_space, 64, rng)
        keys = {small_space.freeze(c) for c in candidates}
        assert len(keys) == len(candidates)
        assert all(small_space.is_feasible(c) for c in candidates)

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            LocalSearchSettings(n_random_samples=0)


# ---------------------------------------------------------------------------
# results / histories
# ---------------------------------------------------------------------------

class TestTuningHistory:
    def _history(self):
        history = TuningHistory(tuner_name="test", benchmark_name="bench", seed=7)
        history.append({"a": 1}, ObjectiveResult(5.0), phase="initial")
        history.append({"a": 2}, ObjectiveResult(math.inf, feasible=False))
        history.append({"a": 3}, ObjectiveResult(3.0))
        history.append({"a": 4}, ObjectiveResult(4.0))
        return history

    def test_best_ignores_infeasible(self):
        history = self._history()
        assert history.best().value == 3.0
        assert history.best_value() == 3.0
        assert history.n_feasible == 3

    def test_best_with_budget(self):
        history = self._history()
        assert history.best_value(budget=2) == 5.0
        assert history.best_value(budget=3) == 3.0

    def test_best_so_far_monotone(self):
        curve = self._history().best_so_far()
        assert list(curve) == [5.0, 5.0, 3.0, 3.0]
        assert all(curve[i + 1] <= curve[i] for i in range(len(curve) - 1))

    def test_evaluations_to_reach(self):
        history = self._history()
        assert history.evaluations_to_reach(5.0) == 1
        assert history.evaluations_to_reach(3.5) == 3
        assert history.evaluations_to_reach(0.1) is None

    def test_serialization_roundtrip(self):
        history = self._history()
        restored = TuningHistory.from_dict(history.to_dict())
        assert restored.tuner_name == history.tuner_name
        assert restored.best_value() == history.best_value()
        assert len(restored) == len(history)
        assert restored.evaluations[0].phase == "initial"

    def test_tuple_values_survive_roundtrip(self):
        history = TuningHistory(tuner_name="t")
        history.append({"perm": (2, 0, 1)}, ObjectiveResult(1.0))
        restored = TuningHistory.from_dict(history.to_dict())
        assert restored.evaluations[0].configuration["perm"] == (2, 0, 1)

    def test_objective_result_validation(self):
        with pytest.raises(ValueError):
            ObjectiveResult(value=math.inf, feasible=True)

    def test_empty_history(self):
        history = TuningHistory(tuner_name="empty")
        assert history.best() is None
        assert history.best_value() == math.inf
        assert list(history.best_so_far()) == []
