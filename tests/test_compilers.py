"""Tests for the simulated compiler toolchains (TACO, RISE & ELEVATE, HPVM2FPGA)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.compilers.hpvm2fpga import FPGA_BENCHMARKS, HpvmFpgaKernel
from repro.compilers.machines import ARRIA_10, NVIDIA_K80, XEON_GOLD_6130
from repro.compilers.rise import GPU_KERNEL_SPECS, RiseCpuKernel, RiseGpuKernel
from repro.compilers.taco import TACO_EXPRESSIONS, TacoKernel
from repro.compilers.tensors import TENSOR_REGISTRY, generate_tensor, get_tensor


# ---------------------------------------------------------------------------
# tensors
# ---------------------------------------------------------------------------

class TestSparseTensors:
    def test_registry_contains_table4_datasets(self):
        for name in ("scircuit", "cage12", "email-Enron", "facebook", "uber", "nips", "chicago"):
            assert name in TENSOR_REGISTRY

    def test_get_tensor_is_cached(self):
        assert get_tensor("cage12") is get_tensor("cage12")

    def test_tensor_statistics_are_sane(self):
        tensor = get_tensor("scircuit")
        assert tensor.shape == (170_998, 170_998)
        assert tensor.nnz == 958_936
        assert 0.0 < tensor.density < 1.0
        assert tensor.nnz_per_row == pytest.approx(tensor.nnz / tensor.n_rows)
        assert tensor.working_set_bytes() > tensor.nnz

    def test_powerlaw_more_skewed_than_uniform(self):
        powerlaw = generate_tensor("p", (50_000, 50_000), 1_000_000, distribution="powerlaw")
        uniform = generate_tensor("u", (50_000, 50_000), 1_000_000, distribution="uniform")
        assert powerlaw.skew > uniform.skew
        assert powerlaw.row_imbalance > uniform.row_imbalance

    def test_unknown_tensor_and_distribution_rejected(self):
        with pytest.raises(KeyError):
            get_tensor("not-a-tensor")
        with pytest.raises(ValueError):
            generate_tensor("x", (10, 10), 100, distribution="weird")
        with pytest.raises(ValueError):
            generate_tensor("x", (10, 10), 0)


# ---------------------------------------------------------------------------
# TACO cost model
# ---------------------------------------------------------------------------

def _taco_config(**overrides):
    config = {
        "chunk_size": 256,
        "chunk_size2": 16,
        "chunk_size3": 8,
        "omp_chunk_size": 16,
        "omp_scheduling": "dynamic",
        "unroll_factor": 8,
        "permutation": (0, 1, 2, 3, 4),
    }
    config.update(overrides)
    return config


class TestTacoKernel:
    def test_all_expressions_evaluate(self):
        tensor = get_tensor("cage12")
        for name in TACO_EXPRESSIONS:
            kernel = TacoKernel(name, tensor)
            n_loops = TACO_EXPRESSIONS[name].n_loops
            result = kernel.evaluate(_taco_config(permutation=tuple(range(n_loops))))
            assert result.feasible
            assert result.value > 0

    def test_deterministic_given_configuration(self):
        kernel = TacoKernel("spmm", get_tensor("scircuit"))
        config = _taco_config()
        assert kernel.evaluate(config).value == kernel.evaluate(config).value

    def test_unknown_expression_rejected(self):
        with pytest.raises(KeyError):
            TacoKernel("gemm", get_tensor("cage12"))

    def test_discordant_traversal_is_catastrophic(self):
        """Hoisting the compressed reduction loop outermost is orders of magnitude slower."""
        kernel = TacoKernel("spmv", get_tensor("scircuit"))
        good = kernel.evaluate(_taco_config(permutation=(0, 1, 2, 3, 4))).value
        bad = kernel.evaluate(_taco_config(permutation=(4, 1, 2, 3, 0))).value
        assert bad > 5 * good

    def test_best_loop_order_beats_identity(self):
        """The optimal order is slightly better than the default (RQ4: ~1.1x)."""
        kernel = TacoKernel("spmm", get_tensor("scircuit"), noise=0.0)
        identity = kernel.evaluate(_taco_config(permutation=(0, 1, 2, 3, 4))).value
        best = kernel.evaluate(_taco_config(permutation=kernel.best_loop_order)).value
        assert best < identity
        assert identity / best < 1.3

    def test_static_scheduling_hurts_skewed_tensors(self):
        kernel = TacoKernel("spmm", get_tensor("email-Enron"), noise=0.0)
        static = kernel.evaluate(_taco_config(omp_scheduling="static")).value
        dynamic = kernel.evaluate(_taco_config(omp_scheduling="dynamic")).value
        assert dynamic < static

    def test_chunk_size_has_an_interior_optimum(self):
        kernel = TacoKernel("spmm", get_tensor("cage12"), noise=0.0)
        values = {
            chunk: kernel.evaluate(_taco_config(chunk_size=chunk)).value
            for chunk in (2, 64, 512)
        }
        assert min(values, key=values.get) != 2

    def test_ttv_hidden_constraint(self):
        kernel = TacoKernel("ttv", get_tensor("facebook"))
        bad = kernel.evaluate(
            _taco_config(permutation=(4, 0, 1, 2, 3), omp_scheduling="dynamic")
        )
        assert not bad.feasible
        assert math.isinf(bad.value)
        ok = kernel.evaluate(
            _taco_config(permutation=(4, 0, 1, 2, 3), omp_scheduling="static")
        )
        assert ok.feasible

    def test_spmm_slower_than_spmv_per_tensor(self):
        tensor = get_tensor("cage12")
        spmv = TacoKernel("spmv", tensor, noise=0.0).evaluate(_taco_config()).value
        spmm = TacoKernel("spmm", tensor, noise=0.0).evaluate(_taco_config()).value
        assert spmm > spmv

    def test_noise_is_bounded(self):
        kernel_noisy = TacoKernel("spmm", get_tensor("cage12"), noise=0.05, seed=1)
        kernel_clean = TacoKernel("spmm", get_tensor("cage12"), noise=0.0, seed=1)
        noisy = kernel_noisy.evaluate(_taco_config()).value
        clean = kernel_clean.evaluate(_taco_config()).value
        assert abs(noisy - clean) / clean < 0.5


# ---------------------------------------------------------------------------
# RISE & ELEVATE cost models
# ---------------------------------------------------------------------------

def _mm_gpu_config(**overrides):
    config = {
        "ls0": 32, "ls1": 4, "ts0": 64, "ts1": 32, "tk": 8,
        "vw": 4, "sq0": 4, "sq1": 4, "split": 8, "swizzle": 1,
    }
    config.update(overrides)
    return config


class TestRiseGpuKernel:
    def test_all_specs_evaluate(self):
        for name in GPU_KERNEL_SPECS:
            kernel = RiseGpuKernel(name)
            result = kernel.evaluate(_mm_gpu_config())
            assert result.value > 0 or not result.feasible

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            RiseGpuKernel("fft_gpu")

    def test_shared_memory_overflow_is_hidden_constraint(self):
        kernel = RiseGpuKernel("mm_gpu")
        huge_tiles = _mm_gpu_config(ts0=128, ts1=128, tk=64)
        assert kernel.shared_memory_bytes(huge_tiles) > NVIDIA_K80.shared_memory_kib * 1024
        assert not kernel.evaluate(huge_tiles).feasible

    def test_reasonable_tiles_are_feasible(self):
        kernel = RiseGpuKernel("mm_gpu")
        assert kernel.evaluate(_mm_gpu_config()).feasible

    def test_tiny_work_groups_are_slow(self):
        kernel = RiseGpuKernel("mm_gpu", noise=0.0)
        small = kernel.evaluate(_mm_gpu_config(ls0=1, ls1=1)).value
        normal = kernel.evaluate(_mm_gpu_config()).value
        assert small > normal

    def test_coalescing_rewards_wider_vectors(self):
        kernel = RiseGpuKernel("scal_gpu", noise=0.0)
        narrow = kernel.evaluate({"ls0": 8, "ls1": 1, "vw": 1, "sq0": 8, "sq1": 1}).value
        wide = kernel.evaluate({"ls0": 8, "ls1": 1, "vw": 8, "sq0": 8, "sq1": 1}).value
        assert wide < narrow

    def test_benchmarks_without_hidden_constraints_never_fail(self, rng):
        kernel = RiseGpuKernel("stencil_gpu")
        for _ in range(50):
            config = {
                "ls0": int(2 ** rng.integers(0, 7)),
                "ls1": int(2 ** rng.integers(0, 7)),
                "ts0": int(2 ** rng.integers(2, 9)),
                "ts1": int(2 ** rng.integers(2, 9)),
            }
            assert kernel.evaluate(config).feasible


class TestRiseCpuKernel:
    def test_feasible_configuration(self):
        kernel = RiseCpuKernel(noise=0.0)
        result = kernel.evaluate({"ts0": 64, "ts1": 64, "tk": 64, "vw": 4, "permutation": (1, 0, 2)})
        assert result.feasible and result.value > 0

    def test_vectorizer_hidden_constraint(self):
        kernel = RiseCpuKernel()
        result = kernel.evaluate({"ts0": 64, "ts1": 2, "tk": 64, "vw": 8, "permutation": (0, 1, 2)})
        assert not result.feasible

    def test_loop_order_matters(self):
        kernel = RiseCpuKernel(noise=0.0)
        best = kernel.evaluate({"ts0": 64, "ts1": 64, "tk": 64, "vw": 8, "permutation": kernel.best_loop_order}).value
        worst = kernel.evaluate({"ts0": 64, "ts1": 64, "tk": 64, "vw": 8, "permutation": (0, 1, 2)}).value
        assert best < worst

    def test_oversized_tiles_thrash_cache(self):
        kernel = RiseCpuKernel(noise=0.0)
        good = kernel.evaluate({"ts0": 32, "ts1": 64, "tk": 32, "vw": 8, "permutation": (1, 0, 2)}).value
        huge = kernel.evaluate({"ts0": 512, "ts1": 512, "tk": 512, "vw": 8, "permutation": (1, 0, 2)}).value
        assert huge > good


# ---------------------------------------------------------------------------
# HPVM2FPGA cost model
# ---------------------------------------------------------------------------

class TestHpvmFpgaKernel:
    def test_all_benchmarks_evaluate_default(self):
        for name, spec in FPGA_BENCHMARKS.items():
            kernel = HpvmFpgaKernel(name)
            config = {f"unroll_{loop.name}": 1 for loop in spec.loops}
            result = kernel.evaluate(config)
            assert result.feasible and result.value > 0

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            HpvmFpgaKernel("mri-q")

    def test_unrolling_reduces_latency(self):
        kernel = HpvmFpgaKernel("bfs", noise=0.0)
        base = kernel.evaluate({"unroll_visit": 1, "unroll_frontier": 1}).value
        unrolled = kernel.evaluate({"unroll_visit": 4, "unroll_frontier": 4}).value
        assert unrolled < base

    def test_resource_exhaustion_is_hidden_constraint(self):
        kernel = HpvmFpgaKernel("preeuler")
        config = {f"unroll_{loop.name}": 16 for loop in FPGA_BENCHMARKS["preeuler"].loops}
        usage = kernel.resource_usage(config)
        assert usage["dsps"] > ARRIA_10.dsps or usage["luts"] > ARRIA_10.luts
        assert not kernel.evaluate(config).feasible

    def test_incompatible_fusion_fails(self):
        kernel = HpvmFpgaKernel("bfs")
        config = {"unroll_visit": 8, "unroll_frontier": 1, "fuse_0": 1}
        assert not kernel.evaluate(config).feasible

    def test_compatible_fusion_helps(self):
        kernel = HpvmFpgaKernel("bfs", noise=0.0)
        unfused = kernel.evaluate({"unroll_visit": 2, "unroll_frontier": 2, "fuse_0": 0}).value
        fused = kernel.evaluate({"unroll_visit": 2, "unroll_frontier": 2, "fuse_0": 1}).value
        assert fused < unfused

    def test_privatization_helps_memory_bound_loops(self):
        kernel = HpvmFpgaKernel("bfs", noise=0.0)
        without = kernel.evaluate({"unroll_visit": 2, "unroll_frontier": 2, "priv_levels": 0}).value
        with_priv = kernel.evaluate({"unroll_visit": 2, "unroll_frontier": 2, "priv_levels": 1}).value
        assert with_priv < without
