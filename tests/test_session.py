"""Tests for the ask/tell TuningSession API (repro.core.session).

Covers the tentpole guarantees of the API inversion:

* a manual ask/tell loop reproduces ``tune()`` bit for bit,
* snapshots round-trip through JSON and resume bit-identically, including
  in-flight (asked-but-untold) suggestions,
* batch asks never over-commit the budget, deduplicate against pending
  work, and yield deterministic traces for a fixed batch size,
* the legacy helpers raise a clear error outside an active session,
* the JSON-lines service drives a session end to end (``SessionService``
  is now the single-session view of ``SessionRegistry``; the multi-session
  registry, the TCP server, and the malformed-traffic hardening are covered
  by ``test_server.py`` and ``test_service_hardening.py``).
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.baselines.opentuner import OpenTunerLikeTuner
from repro.baselines.random_search import CoTSamplingTuner, UniformSamplingTuner
from repro.baselines.ytopt import YtoptLikeTuner
from repro.core.baco import BacoSettings, BacoTuner
from repro.core.result import ObjectiveResult
from repro.core.session import Suggestion, TuningSession, drive
from repro.service import SessionService


def _fast_settings(**overrides) -> BacoSettings:
    base = dict(
        gp_prior_samples=6,
        gp_refined_starts=1,
        gp_max_iterations=10,
        n_random_samples=64,
        n_local_search_starts=3,
        max_local_search_steps=10,
        feasibility_trees=8,
    )
    base.update(overrides)
    return BacoSettings(**base)


def _make_tuner(name, space, seed):
    factories = {
        "baco": lambda: BacoTuner(space, settings=_fast_settings(), seed=seed),
        "opentuner": lambda: OpenTunerLikeTuner(space, seed=seed),
        "ytopt": lambda: YtoptLikeTuner(space, seed=seed, rf_trees=8),
        "uniform": lambda: UniformSamplingTuner(space, seed=seed),
        "cot": lambda: CoTSamplingTuner(space, seed=seed),
    }
    return factories[name]()


ALL_TUNERS = ["baco", "opentuner", "ytopt", "uniform", "cot"]


def _trace(history):
    return [
        (e.configuration, e.value, e.feasible, e.phase) for e in history.evaluations
    ]


class TestAskTellEquivalence:
    @pytest.mark.parametrize("name", ALL_TUNERS)
    def test_manual_loop_matches_tune(self, name, small_space, quadratic_objective):
        budget = 14
        expected = _make_tuner(name, small_space, 4).tune(
            quadratic_objective, budget, benchmark_name="toy"
        )

        tuner = _make_tuner(name, small_space, 4)
        session = tuner.start_session(budget, benchmark_name="toy")
        while not session.done:
            [suggestion] = session.ask(1)
            session.tell(suggestion, quadratic_objective(suggestion.configuration))
        assert _trace(session.history) == _trace(expected)
        assert session.history.benchmark_name == "toy"
        assert session.history.seed == 4

    def test_drive_matches_tune(self, small_space, quadratic_objective):
        expected = _make_tuner("baco", small_space, 2).tune(quadratic_objective, 10)
        tuner = _make_tuner("baco", small_space, 2)
        session = tuner.start_session(10)
        history = drive(session, quadratic_objective)
        assert _trace(history) == _trace(expected)

    def test_suggestions_carry_metadata(self, small_space, quadratic_objective):
        tuner = _make_tuner("baco", small_space, 0)
        session = tuner.start_session(8)
        [suggestion] = session.ask(1)
        assert suggestion.id == 0
        assert suggestion.phase == "initial"
        assert set(suggestion.configuration) == set(small_space.parameter_names)
        row = small_space.encoder.encode(suggestion.configuration)
        assert suggestion.encoded_row == tuple(float(x) for x in row)


class TestSessionProtocol:
    def test_invalid_budget(self, small_space):
        with pytest.raises(ValueError):
            _make_tuner("uniform", small_space, 0).start_session(0)

    def test_tell_unknown_id_raises(self, small_space, quadratic_objective):
        session = _make_tuner("uniform", small_space, 0).start_session(5)
        [suggestion] = session.ask(1)
        with pytest.raises(KeyError):
            session.tell(suggestion.id + 1, ObjectiveResult(1.0))
        session.tell(suggestion, ObjectiveResult(1.0))
        with pytest.raises(KeyError):  # double tell
            session.tell(suggestion, ObjectiveResult(1.0))

    def test_ask_never_overcommits_budget(self, small_space, quadratic_objective):
        session = _make_tuner("uniform", small_space, 1).start_session(5)
        first = session.ask(3)
        assert len(first) == 3
        second = session.ask(10)
        assert len(second) == 2  # only 2 of 5 left after 3 pending
        assert session.ask(1) == []
        ids = [s.id for s in first + second]
        assert ids == sorted(ids) == list(range(5))
        for suggestion in first + second:
            session.tell(suggestion, quadratic_objective(suggestion.configuration))
        assert session.done
        assert session.ask(4) == []

    def test_batch_ask_deduplicates_pending(self, small_space):
        session = _make_tuner("uniform", small_space, 3).start_session(30)
        suggestions = session.ask(12)
        keys = {small_space.freeze(s.configuration) for s in suggestions}
        # the dedup loop has 32 tries per slot over a ~100-point space
        assert len(keys) >= 11

    def test_batch_ask_before_any_tell_exceeding_doe(self, small_space):
        """Regression: ask(n) straight after start, with n beyond the DoE.

        BaCO's learning-phase recommender runs with an empty history here
        (nothing told back yet) and must fall through to random proposals
        instead of fitting the feasibility model on zero rows.
        """
        from repro.core.baco import BacoTuner

        session = BacoTuner(small_space, seed=0).start_session(3)
        suggestions = session.ask(3)
        assert len(suggestions) == 3
        keys = {small_space.freeze(s.configuration) for s in suggestions}
        assert len(keys) == 3
        for suggestion in suggestions:
            assert small_space.is_feasible(suggestion.configuration)

    def test_out_of_order_tells_are_accepted(self, small_space, quadratic_objective):
        session = _make_tuner("uniform", small_space, 5).start_session(6)
        suggestions = session.ask(4)
        for suggestion in reversed(suggestions):
            session.tell(suggestion, quadratic_objective(suggestion.configuration))
        assert len(session.history) == 4
        # history order follows tell order
        told = [s.configuration for s in reversed(suggestions)]
        assert [e.configuration for e in session.history] == told

    @pytest.mark.parametrize("batch", [2, 4])
    def test_fixed_batch_size_is_deterministic(
        self, batch, small_space, quadratic_objective
    ):
        def run():
            tuner = _make_tuner("baco", small_space, 6)
            session = tuner.start_session(12)
            return drive(session, quadratic_objective, batch_size=batch)

        assert _trace(run()) == _trace(run())

    def test_drive_validates_arguments(self, small_space, quadratic_objective):
        session = _make_tuner("uniform", small_space, 0).start_session(4)
        with pytest.raises(ValueError):
            drive(session)
        with pytest.raises(ValueError):
            drive(session, quadratic_objective, batch_size=0)


class TestNoActiveSession:
    """Satellite: legacy helpers fail with a clear error before tune()."""

    def test_history_property(self, small_space):
        tuner = _make_tuner("uniform", small_space, 0)
        with pytest.raises(RuntimeError, match="no active tuning session"):
            tuner.history

    def test_remaining(self, small_space):
        tuner = _make_tuner("uniform", small_space, 0)
        with pytest.raises(RuntimeError, match="no active tuning session"):
            tuner._remaining(10)

    def test_evaluate(self, small_space):
        tuner = _make_tuner("uniform", small_space, 0)
        with pytest.raises(RuntimeError, match="no active tuning session"):
            tuner._evaluate(small_space.default_configuration())


class TestSnapshotRestore:
    @pytest.mark.parametrize("name", ALL_TUNERS)
    def test_resume_is_bit_identical(self, name, small_space, hidden_constraint_objective):
        budget, interrupt_at = 14, 6
        expected = _make_tuner(name, small_space, 8).tune(
            hidden_constraint_objective, budget
        )

        tuner = _make_tuner(name, small_space, 8)
        session = tuner.start_session(budget)
        while len(session.history) < interrupt_at:
            [suggestion] = session.ask(1)
            session.tell(
                suggestion, hidden_constraint_objective(suggestion.configuration)
            )
        payload = json.loads(json.dumps(session.snapshot()))

        restored = TuningSession.restore(payload, _make_tuner(name, small_space, 8))
        assert len(restored.history) == interrupt_at
        history = drive(restored, hidden_constraint_objective)
        assert _trace(history) == _trace(expected)

    def test_pending_suggestions_survive_snapshot(
        self, small_space, quadratic_objective
    ):
        tuner = _make_tuner("uniform", small_space, 9)
        session = tuner.start_session(8)
        issued = session.ask(3)
        payload = json.loads(json.dumps(session.snapshot()))

        restored = TuningSession.restore(payload, _make_tuner("uniform", small_space, 9))
        reissued = restored.ask(3)
        assert [s.id for s in reissued] == [s.id for s in issued]
        assert [s.configuration for s in reissued] == [s.configuration for s in issued]
        for suggestion in reissued:
            restored.tell(suggestion, quadratic_objective(suggestion.configuration))
        assert len(restored.history) == 3

    def test_restore_rejects_wrong_tuner(self, small_space):
        session = _make_tuner("uniform", small_space, 0).start_session(5)
        payload = session.snapshot()
        with pytest.raises(ValueError, match="snapshot was taken by tuner"):
            TuningSession.restore(payload, _make_tuner("cot", small_space, 0))

    def test_restore_rejects_unknown_version(self, small_space):
        session = _make_tuner("uniform", small_space, 0).start_session(5)
        payload = session.snapshot()
        payload["version"] = 99
        with pytest.raises(ValueError, match="snapshot version"):
            TuningSession.restore(payload, _make_tuner("uniform", small_space, 0))

    def test_snapshot_restores_baco_caches(self, small_space, quadratic_objective):
        """Encoder caches and the incremental GP tensor are rebuilt exactly."""
        tuner = _make_tuner("baco", small_space, 11)
        session = tuner.start_session(12)
        while len(session.history) < 7:
            [suggestion] = session.ask(1)
            session.tell(suggestion, quadratic_objective(suggestion.configuration))
        payload = json.loads(json.dumps(session.snapshot()))

        fresh = _make_tuner("baco", small_space, 11)
        TuningSession.restore(payload, fresh)
        assert len(fresh._space_rows_all) == len(tuner._space_rows_all)
        assert np.array_equal(
            np.vstack(fresh._space_rows_all), np.vstack(tuner._space_rows_all)
        )
        assert fresh._feasible_values == tuner._feasible_values
        assert fresh._evaluated_keys == tuner._evaluated_keys
        assert len(fresh._gp_distance_cache) == len(tuner._gp_distance_cache)
        assert np.array_equal(
            fresh._gp_distance_cache.tensor, tuner._gp_distance_cache.tensor
        )
        assert fresh._rng.bit_generator.state == tuner._rng.bit_generator.state


class TestSessionService:
    def _start(self, service, budget=6):
        response = service.handle(
            {
                "op": "start",
                "benchmark": "hpvm_bfs",
                "tuner": "Uniform Sampling",
                "budget": budget,
                "seed": 2,
            }
        )
        assert response["ok"], response
        return response

    def test_start_ask_tell_roundtrip(self):
        service = SessionService()
        started = self._start(service)
        assert started["benchmark"] == "hpvm_bfs"

        asked = service.handle({"op": "ask", "n": 2})
        assert asked["ok"] and len(asked["suggestions"]) == 2
        for entry, value in zip(asked["suggestions"], (4.5, 2.5)):
            told = service.handle({"op": "tell", "id": entry["id"], "value": value})
            assert told["ok"], told
        status = service.handle({"op": "status"})
        assert status["evaluations"] == 2
        assert status["best_value"] == 2.5

    def test_snapshot_restore_via_file(self, tmp_path):
        service = SessionService()
        self._start(service)
        asked = service.handle({"op": "ask", "n": 1})
        service.handle(
            {"op": "tell", "id": asked["suggestions"][0]["id"], "value": 1.25}
        )
        path = tmp_path / "session.ckpt.json"
        saved = service.handle({"op": "snapshot", "path": str(path)})
        assert saved["ok"] and path.exists()

        fresh = SessionService()
        restored = fresh.handle({"op": "restore", "path": str(path)})
        assert restored["ok"] and restored["evaluations"] == 1
        status = fresh.handle({"op": "status"})
        assert status["best_value"] == 1.25

    def test_errors_do_not_kill_the_service(self):
        service = SessionService()
        assert not service.handle({"op": "ask"})["ok"]  # no session yet
        assert not service.handle({"op": "nope"})["ok"]
        line = service.handle_line("{not json")
        assert json.loads(line)["ok"] is False
        self._start(service)
        assert not service.handle({"op": "tell", "id": 123, "value": 1.0})["ok"]
        assert service.handle({"op": "shutdown"})["ok"]
        assert not service.running
