"""Tests for the static invariant checker (``repro.analysis``).

Each rule gets the fixture-snippet triple — a positive finding, clean code,
and a suppressed finding — plus the cross-cutting machinery tests: the
suppression grammar, the rule inventory, CLI exit codes, and the
acceptance-level guarantee that the shipped tree itself checks clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import all_rules, run_check
from repro.analysis.engine import SUPPRESSION_RULE

REPRO_PACKAGE = Path(__file__).resolve().parent.parent / "src" / "repro"

EXPECTED_RULES = {
    "rng-discipline",
    "snapshot-drift",
    "lock-discipline",
    "strict-json",
    "float-determinism",
    "hot-path-purity",
}


def check_snippet(tmp_path: Path, name: str, source: str, select=None):
    """Write one fixture module and run the checker over it."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return run_check([path], select=select)


def rule_lines(report, rule_id: str) -> list[int]:
    return [f.line for f in report.findings if f.rule == rule_id]


# ----------------------------------------------------------------------
# registry / inventory
# ----------------------------------------------------------------------


def test_all_six_rules_registered():
    import repro.analysis.rules  # noqa: F401 - populates the registry

    assert EXPECTED_RULES <= set(all_rules())


def test_reports_list_every_active_rule(tmp_path):
    report = check_snippet(tmp_path, "empty.py", "x = 1\n")
    assert set(report.rules) == set(all_rules())
    assert report.ok


# ----------------------------------------------------------------------
# rng-discipline
# ----------------------------------------------------------------------


def test_rng_flags_legacy_global_api(tmp_path):
    report = check_snippet(
        tmp_path,
        "sampler.py",
        "import numpy as np\nx = np.random.rand(3)\n",
        select=["rng-discipline"],
    )
    assert rule_lines(report, "rng-discipline") == [2]


def test_rng_flags_stdlib_random_import(tmp_path):
    report = check_snippet(
        tmp_path, "mod.py", "import random\n", select=["rng-discipline"]
    )
    assert rule_lines(report, "rng-discipline") == [1]


def test_rng_flags_argless_default_rng_everywhere(tmp_path):
    # even in a whitelisted seed boundary, argless default_rng is entropy
    report = check_snippet(
        tmp_path,
        "tuner.py",
        "import numpy as np\nrng = np.random.default_rng()\n",
        select=["rng-discipline"],
    )
    assert rule_lines(report, "rng-discipline") == [2]


def test_rng_seeded_default_rng_outside_boundary(tmp_path):
    report = check_snippet(
        tmp_path,
        "helper.py",
        "import numpy as np\nrng = np.random.default_rng(7)\n",
        select=["rng-discipline"],
    )
    assert rule_lines(report, "rng-discipline") == [2]


def test_rng_seeded_default_rng_inside_boundary_is_clean(tmp_path):
    report = check_snippet(
        tmp_path,
        "tuner.py",  # whitelisted basename: the Tuner.__init__ seed boundary
        "import numpy as np\nrng = np.random.default_rng(7)\n",
        select=["rng-discipline"],
    )
    assert report.ok


def test_rng_generator_draws_are_clean(tmp_path):
    report = check_snippet(
        tmp_path,
        "mod.py",
        "def draw(rng):\n    return rng.normal(size=3)\n",
        select=["rng-discipline"],
    )
    assert report.ok


def test_rng_suppression(tmp_path):
    report = check_snippet(
        tmp_path,
        "mod.py",
        "import numpy as np\n"
        "x = np.random.rand(3)  # repro: allow[rng-discipline] legacy fixture kept verbatim\n",
        select=["rng-discipline"],
    )
    assert report.ok
    assert len(report.suppressed) == 1
    assert report.suppressed[0].justification == "legacy fixture kept verbatim"


# ----------------------------------------------------------------------
# snapshot-drift
# ----------------------------------------------------------------------

_TOY_TUNER_HEADER = """\
class Tuner:
    def _reset_state(self, budget):
        self._doe_queue = []
    def _propose(self, k, pending):
        raise NotImplementedError
    def _observe(self, configuration, result):
        pass
    def _state_dict(self):
        return {"doe_queue": self._doe_queue}
    def _load_state_dict(self, payload):
        self._doe_queue = payload["doe_queue"]
    def _post_restore(self):
        pass
"""

_BROKEN_TUNER = _TOY_TUNER_HEADER + """\

class BrokenTuner(Tuner):
    def _reset_state(self, budget):
        super()._reset_state(budget)
        self._ask_cache = {}
    def _propose(self, k, pending):
        self._ask_cache[k] = list(range(k))
        return []
"""

_FIXED_TUNER = _TOY_TUNER_HEADER + """\

class FixedTuner(Tuner):
    def _reset_state(self, budget):
        super()._reset_state(budget)
        self._ask_cache = {}
    def _propose(self, k, pending):
        self._ask_cache[k] = list(range(k))
        return []
    def _state_dict(self):
        payload = super()._state_dict()
        payload["ask_cache"] = self._ask_cache
        return payload
    def _load_state_dict(self, payload):
        super()._load_state_dict(payload)
        self._ask_cache = payload["ask_cache"]
"""


def test_snapshot_flags_ask_state_missing_from_snapshot(tmp_path):
    report = check_snippet(
        tmp_path, "toy.py", _BROKEN_TUNER, select=["snapshot-drift"]
    )
    findings = [f for f in report.findings if f.rule == "snapshot-drift"]
    assert len(findings) == 1
    assert "_ask_cache" in findings[0].message
    assert "BrokenTuner" in findings[0].message


def test_snapshot_covered_ask_state_is_clean(tmp_path):
    report = check_snippet(
        tmp_path, "toy.py", _FIXED_TUNER, select=["snapshot-drift"]
    )
    assert report.ok


def test_snapshot_post_restore_rebuild_counts_as_coverage(tmp_path):
    source = _TOY_TUNER_HEADER + """\

class DerivedCacheTuner(Tuner):
    def _reset_state(self, budget):
        super()._reset_state(budget)
        self._cache = {}
    def _propose(self, k, pending):
        self._cache[k] = k
        return []
    def _post_restore(self):
        self._cache = {"rebuilt": True}
"""
    report = check_snippet(
        tmp_path, "toy.py", source, select=["snapshot-drift"]
    )
    assert report.ok


def test_snapshot_replay_rebuilt_observe_state_is_clean(tmp_path):
    source = _TOY_TUNER_HEADER + """\

class ReplayTuner(Tuner):
    def _reset_state(self, budget):
        super()._reset_state(budget)
        self._rows = []
    def _propose(self, k, pending):
        return []
    def _observe(self, configuration, result):
        self._rows.append(configuration)
"""
    report = check_snippet(
        tmp_path, "toy.py", source, select=["snapshot-drift"]
    )
    assert report.ok


def test_snapshot_flags_observe_state_without_reset(tmp_path):
    source = _TOY_TUNER_HEADER + """\

class StaleTuner(Tuner):
    def _propose(self, k, pending):
        return []
    def _observe(self, configuration, result):
        self._rows = getattr(self, "_rows", [])
        self._rows.append(configuration)
"""
    report = check_snippet(
        tmp_path, "toy.py", source, select=["snapshot-drift"]
    )
    findings = [f for f in report.findings if f.rule == "snapshot-drift"]
    assert findings and "_rows" in findings[0].message


def test_snapshot_tracks_local_aliases(tmp_path):
    source = _TOY_TUNER_HEADER + """\

class AliasTuner(Tuner):
    def _reset_state(self, budget):
        super()._reset_state(budget)
        self._policy_state = {}
    def _propose(self, k, pending):
        st = self._policy_state
        st["last"] = k
        return []
"""
    report = check_snippet(
        tmp_path, "toy.py", source, select=["snapshot-drift"]
    )
    findings = [f for f in report.findings if f.rule == "snapshot-drift"]
    assert findings and "_policy_state" in findings[0].message


# ----------------------------------------------------------------------
# lock-discipline
# ----------------------------------------------------------------------

_LOCKED_CLASS = """\
import threading

class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._sessions = {}
    def put(self, name, session):
        with self._lock:
            self._sessions[name] = session
    def get(self, name):
        {body}
"""


def test_lock_flags_unlocked_read_of_guarded_attr(tmp_path):
    source = _LOCKED_CLASS.replace("{body}", "return self._sessions.get(name)")
    report = check_snippet(
        tmp_path, "service.py", source, select=["lock-discipline"]
    )
    findings = [f for f in report.findings if f.rule == "lock-discipline"]
    assert findings and "_sessions" in findings[0].message


def test_lock_locked_access_is_clean(tmp_path):
    source = _LOCKED_CLASS.replace(
        "{body}",
        "with self._lock:\n            return self._sessions.get(name)",
    )
    report = check_snippet(
        tmp_path, "service.py", source, select=["lock-discipline"]
    )
    assert report.ok


def test_lock_scope_is_limited_to_threaded_modules(tmp_path):
    source = _LOCKED_CLASS.replace("{body}", "return self._sessions.get(name)")
    report = check_snippet(
        tmp_path, "runner.py", source, select=["lock-discipline"]
    )
    assert report.ok


def test_lock_order_inversion_is_flagged(tmp_path):
    source = """\
import threading

class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._sessions = {}
    def evict(self, entry):
        with entry.lock:
            with self._lock:
                self._sessions.clear()
"""
    report = check_snippet(
        tmp_path, "service.py", source, select=["lock-discipline"]
    )
    findings = [f for f in report.findings if f.rule == "lock-discipline"]
    assert findings and "lock order" in findings[0].message


# ----------------------------------------------------------------------
# strict-json
# ----------------------------------------------------------------------


def test_strict_json_flags_permissive_dumps_and_loads(tmp_path):
    source = (
        "import json\n"
        "def send(x):\n"
        "    return json.dumps(x)\n"
        "def recv(raw):\n"
        "    return json.loads(raw)\n"
    )
    report = check_snippet(
        tmp_path, "client.py", source, select=["strict-json"]
    )
    assert rule_lines(report, "strict-json") == [3, 5]


def test_strict_json_convention_is_clean(tmp_path):
    source = (
        "import json\n"
        "def _reject_constant(token):\n"
        "    raise ValueError(token)\n"
        "def send(x):\n"
        "    return json.dumps(x, allow_nan=False)\n"
        "def recv(raw):\n"
        "    return json.loads(raw, parse_constant=_reject_constant)\n"
    )
    report = check_snippet(
        tmp_path, "service.py", source, select=["strict-json"]
    )
    assert report.ok


def test_strict_json_ignores_non_wire_modules(tmp_path):
    # disk checkpoints (runner.py) deliberately stay on permissive JSON
    source = "import json\ndef save(x):\n    return json.dumps(x)\n"
    report = check_snippet(
        tmp_path, "runner.py", source, select=["strict-json"]
    )
    assert report.ok


# ----------------------------------------------------------------------
# float-determinism
# ----------------------------------------------------------------------


def test_float_flags_mixed_families_in_one_function(tmp_path):
    source = (
        "# repro: hot-path\n"
        "import math\n"
        "import numpy as np\n"
        "def warp(values, x):\n"
        "    batch = np.log(values)\n"
        "    return batch, math.log(x)\n"
    )
    report = check_snippet(
        tmp_path, "warps.py", source, select=["float-determinism"]
    )
    assert rule_lines(report, "float-determinism") == [6]


def test_float_literal_math_constants_are_exempt(tmp_path):
    source = (
        "# repro: hot-path\n"
        "import math\n"
        "import numpy as np\n"
        "def logpdf(values):\n"
        "    return np.log(values) - 0.5 * math.log(2.0 * math.pi)\n"
    )
    report = check_snippet(
        tmp_path, "warps.py", source, select=["float-determinism"]
    )
    assert report.ok


def test_float_separate_functions_are_clean(tmp_path):
    source = (
        "# repro: hot-path\n"
        "import math\n"
        "import numpy as np\n"
        "def scalar(x):\n"
        "    return math.log(x)\n"
        "def batch(values):\n"
        "    return np.log(values)\n"
    )
    report = check_snippet(
        tmp_path, "warps.py", source, select=["float-determinism"]
    )
    assert report.ok


def test_float_encoding_basename_is_in_scope_without_marker(tmp_path):
    source = (
        "import math\n"
        "import numpy as np\n"
        "def warp(values, x):\n"
        "    return np.exp(values), math.exp(x)\n"
    )
    report = check_snippet(
        tmp_path, "encoding.py", source, select=["float-determinism"]
    )
    assert rule_lines(report, "float-determinism") == [4]


# ----------------------------------------------------------------------
# hot-path-purity
# ----------------------------------------------------------------------


def test_hot_path_flags_per_row_loop(tmp_path):
    source = (
        "# repro: hot-path\n"
        "def climb(rows):\n"
        "    out = []\n"
        "    for row in rows:\n"
        "        out.append(row.sum())\n"
        "    return out\n"
    )
    report = check_snippet(
        tmp_path, "mod.py", source, select=["hot-path-purity"]
    )
    assert rule_lines(report, "hot-path-purity") == [4]


def test_hot_path_flags_tolist(tmp_path):
    source = "# repro: hot-path\ndef f(values):\n    return values.tolist()\n"
    report = check_snippet(
        tmp_path, "mod.py", source, select=["hot-path-purity"]
    )
    assert rule_lines(report, "hot-path-purity") == [3]


def test_hot_path_flags_decode_in_loop(tmp_path):
    source = (
        "# repro: hot-path\n"
        "def winners(order, encoder):\n"
        "    out = []\n"
        "    for i in order:\n"
        "        out.append(encoder.decode(i))\n"
        "    return out\n"
    )
    report = check_snippet(
        tmp_path, "mod.py", source, select=["hot-path-purity"]
    )
    assert rule_lines(report, "hot-path-purity") == [5]


def test_hot_path_unmarked_module_is_ignored(tmp_path):
    source = "def f(rows):\n    return [row for row in rows.tolist()]\n"
    report = check_snippet(
        tmp_path, "mod.py", source, select=["hot-path-purity"]
    )
    assert report.ok


def test_hot_path_suppression_on_loop(tmp_path):
    source = (
        "# repro: hot-path\n"
        "def winners(rows):\n"
        "    # repro: allow[hot-path-purity] decodes the final k winners only\n"
        "    for row in rows:\n"
        "        pass\n"
    )
    report = check_snippet(
        tmp_path, "mod.py", source, select=["hot-path-purity"]
    )
    assert report.ok
    assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# suppression grammar
# ----------------------------------------------------------------------


def test_bare_suppression_does_not_suppress_and_is_flagged(tmp_path):
    source = (
        "import numpy as np\n"
        "x = np.random.rand(3)  # repro: allow[rng-discipline]\n"
    )
    report = check_snippet(tmp_path, "mod.py", source)
    rules = {f.rule for f in report.findings}
    assert "rng-discipline" in rules  # the finding survives
    assert SUPPRESSION_RULE in rules  # and the bare comment is reported


def test_suppression_with_unknown_rule_id_is_flagged(tmp_path):
    source = "x = 1  # repro: allow[made-up-rule] because reasons\n"
    report = check_snippet(tmp_path, "mod.py", source)
    assert [f.rule for f in report.findings] == [SUPPRESSION_RULE]


def test_suppressions_in_docstrings_are_ignored(tmp_path):
    source = '"""Docs show `# repro: allow[rule-id]` syntax."""\nx = 1\n'
    report = check_snippet(tmp_path, "mod.py", source)
    assert report.ok


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def cli(*argv: str) -> int:
    from repro.__main__ import main

    return main(list(argv))


def test_cli_exits_nonzero_on_seeded_violation(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
    assert cli("check", str(bad)) == 1
    out = capsys.readouterr().out
    assert f"{bad}:2" in out or "bad.py:2" in out
    assert "rng-discipline" in out


def test_cli_exits_zero_on_shipped_tree(capsys):
    assert cli("check", str(REPRO_PACKAGE)) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_cli_json_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    assert cli("check", "--format", "json", str(bad)) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["findings"][0]["rule"] == "rng-discipline"
    assert payload["findings"][0]["line"] == 1
    assert set(payload["rules"]) == set(all_rules())


def test_cli_list_rules(capsys):
    assert cli("check", "--list-rules") == 0
    out = capsys.readouterr().out
    for rule_id in EXPECTED_RULES:
        assert rule_id in out


def test_cli_select_and_ignore(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    assert cli("check", "--select", "strict-json", str(bad)) == 0
    capsys.readouterr()
    assert cli("check", "--ignore", "rng-discipline", str(bad)) == 0
    capsys.readouterr()
    assert cli("check", "--select", "rng-discipline", str(bad)) == 1
    capsys.readouterr()


def test_cli_unknown_rule_is_usage_error(tmp_path, capsys):
    assert cli("check", "--select", "no-such-rule", str(tmp_path)) == 2
    assert "unknown rule" in capsys.readouterr().out


# ----------------------------------------------------------------------
# acceptance: the shipped tree is clean and every suppression is justified
# ----------------------------------------------------------------------


def test_shipped_tree_is_clean():
    report = run_check([REPRO_PACKAGE])
    assert report.ok, report.render_human()
    assert report.checked_files > 50
    for finding in report.suppressed:
        assert finding.justification, finding.location()
