"""Hardening tests for the tuning service (repro.service).

Regression tests for the four serve-loop bugs:

* a non-string / unhashable ``op`` (``{"op": ["ask"]}``) used to escape
  ``handle()`` as a TypeError and kill the serve loop,
* ``tell`` used to answer ``best_value: Infinity`` — an invalid JSON token —
  while every result so far was infeasible,
* a non-finite feasible ``value`` (``NaN`` / ``Infinity`` / ``1e999``) was
  only rejected with a generic error deep inside ``ObjectiveResult``,
* ``start`` silently discarded an active session with in-flight
  suggestions.

Plus coverage of every documented error path and a fuzz-style test feeding
500+ adversarial request lines through ``handle_line``, asserting it never
raises and always answers strict JSON.
"""

from __future__ import annotations

import json
import math
import string

import pytest

from repro.service import (
    MAX_LINE_BYTES,
    SessionRegistry,
    SessionService,
    json_safe,
    wire_decode,
    wire_encode,
)

BENCH = "hpvm_bfs"


def start_request(**overrides):
    request = {
        "op": "start",
        "benchmark": BENCH,
        "tuner": "Uniform Sampling",
        "budget": 4,
        "seed": 2,
    }
    request.update(overrides)
    return request


def strict_loads(line: str):
    """json.loads that refuses the non-strict Infinity/NaN tokens."""

    def boom(token):
        raise AssertionError(f"non-strict JSON token {token!r} in response: {line!r}")

    return json.loads(line, parse_constant=boom)


class TestOpValidation:
    """Regression: malformed ``op`` values must not escape handle()."""

    @pytest.mark.parametrize(
        "op", [["ask"], {"ask": 1}, 7, 1.5, None, True, [[["deep"]]]]
    )
    def test_non_string_op_is_an_error_not_a_crash(self, op):
        service = SessionService()
        line = service.handle_line(json.dumps({"op": op}))
        response = strict_loads(line)
        assert response["ok"] is False
        assert "'op' must be a string" in response["error"]

    def test_missing_op(self):
        response = SessionService().handle({})
        assert response["ok"] is False and "'op'" in response["error"]

    def test_unknown_op_lists_available(self):
        response = SessionService().handle({"op": "frobnicate"})
        assert response["ok"] is False
        assert "ask" in response["error"] and "start" in response["error"]

    def test_huge_op_is_truncated_in_the_error(self):
        response = SessionService().handle({"op": "x" * 10_000})
        assert response["ok"] is False
        assert len(response["error"]) < 500


class TestBestValueStrictJson:
    """Regression: infeasible-only histories must not emit ``Infinity``."""

    def test_tell_best_value_is_null_until_feasible(self):
        service = SessionService()
        assert service.handle(start_request())["ok"]
        service.handle({"op": "ask", "n": 2})

        line = service.handle_line('{"op": "tell", "id": 0, "feasible": false}')
        response = strict_loads(line)
        assert response["ok"] is True
        assert response["best_value"] is None

        line = service.handle_line('{"op": "status"}')
        assert strict_loads(line)["best_value"] is None

        told = service.handle({"op": "tell", "id": 1, "value": 3.25})
        assert told["best_value"] == 3.25

    def test_snapshot_with_infeasible_history_is_strict_json(self):
        service = SessionService()
        assert service.handle(start_request())["ok"]
        service.handle({"op": "ask", "n": 1})
        service.handle({"op": "tell", "id": 0, "feasible": False})
        line = service.handle_line('{"op": "snapshot"}')
        payload = strict_loads(line)["snapshot"]
        # the inf value is wire-encoded, and decodes back to the exact float
        decoded = wire_decode(payload)
        assert decoded["history"]["evaluations"][0]["value"] == math.inf

    def test_json_safe_helper(self):
        assert json_safe(math.inf) is None
        assert json_safe(-math.inf) is None
        assert json_safe(math.nan) is None
        assert json_safe(1.5) == 1.5
        assert json_safe("Infinity") == "Infinity"

    def test_wire_roundtrip(self):
        payload = {"a": [1.0, math.inf, -math.inf], "b": {"c": math.nan}}
        encoded = wire_encode(payload)
        line = json.dumps(encoded, allow_nan=False)  # must not raise
        decoded = wire_decode(json.loads(line))
        assert decoded["a"] == [1.0, math.inf, -math.inf]
        assert math.isnan(decoded["b"]["c"])


class TestNonFiniteTellRejected:
    """Regression: ``tell`` must reject non-finite feasible values."""

    def _started(self):
        service = SessionService()
        assert service.handle(start_request())["ok"]
        service.handle({"op": "ask", "n": 1})
        return service

    @pytest.mark.parametrize("token", ["Infinity", "-Infinity", "NaN"])
    def test_nonfinite_tokens_rejected_at_parse_time(self, token):
        service = self._started()
        line = service.handle_line('{"op": "tell", "id": 0, "value": %s}' % token)
        response = strict_loads(line)
        assert response["ok"] is False
        assert "non-finite" in response["error"]

    def test_overflowing_literal_rejected_with_clear_error(self):
        # 1e999 overflows to inf without ever producing an Infinity token,
        # so strict parsing alone cannot catch it
        service = self._started()
        response = strict_loads(service.handle_line('{"op": "tell", "id": 0, "value": 1e999}'))
        assert response["ok"] is False
        assert "finite 'value'" in response["error"]
        assert "feasible" in response["error"]

    def test_rejected_tell_does_not_consume_the_suggestion(self):
        service = self._started()
        assert not service.handle({"op": "tell", "id": 0, "value": math.inf})["ok"]
        # the suggestion survives the rejected tell and can still be told
        assert service.handle({"op": "tell", "id": 0, "value": 2.0})["ok"]

    def test_infeasible_tell_may_omit_the_value(self):
        service = self._started()
        response = service.handle({"op": "tell", "id": 0, "feasible": False})
        assert response["ok"] is True

    def test_nonfinite_elapsed_rejected(self):
        service = self._started()
        response = service.handle(
            {"op": "tell", "id": 0, "value": 1.0, "elapsed": 1e999}
        )
        assert not response["ok"] and "elapsed" in response["error"]


class TestStartConflicts:
    """Regression: ``start`` must not silently discard an active session."""

    def test_start_over_in_flight_suggestions_refused(self):
        service = SessionService()
        assert service.handle(start_request())["ok"]
        service.handle({"op": "ask", "n": 2})
        response = service.handle(start_request())
        assert response["ok"] is False
        assert "in-flight" in response["error"] and "force" in response["error"]

    def test_start_over_active_session_refused(self):
        service = SessionService()
        assert service.handle(start_request())["ok"]
        response = service.handle(start_request())
        assert response["ok"] is False
        assert "active" in response["error"]

    def test_force_discards_and_restarts(self):
        service = SessionService()
        assert service.handle(start_request())["ok"]
        service.handle({"op": "ask", "n": 1})
        response = service.handle(start_request(force=True))
        assert response["ok"] is True
        assert service.handle({"op": "status"})["evaluations"] == 0

    def test_finished_session_is_silently_replaceable(self):
        service = SessionService()
        assert service.handle(start_request(budget=1))["ok"]
        service.handle({"op": "ask", "n": 1})
        service.handle({"op": "tell", "id": 0, "value": 1.0})
        assert service.handle({"op": "status"})["done"]
        assert service.handle(start_request())["ok"]

    def test_named_session_conflict_in_registry_mode(self, tmp_path):
        registry = SessionRegistry(sessions_dir=tmp_path, max_sessions=4)
        assert registry.handle(start_request(session="gpu"))["ok"]
        response = registry.handle(start_request(session="gpu"))
        assert response["ok"] is False and "'gpu'" in response["error"]
        # a different name is not a conflict
        assert registry.handle(start_request(session="fpga"))["ok"]

    def test_concurrent_starts_admit_exactly_one(self):
        """Regression: two racing non-force starts of the same name must not
        both succeed — the conflict check is re-run atomically inside the
        admission, so exactly one client owns the session."""
        import threading

        registry = SessionRegistry(max_sessions=4)
        outcomes = []
        barrier = threading.Barrier(4)

        def racer():
            barrier.wait()
            outcomes.append(registry.handle(start_request(session="contested")))

        threads = [threading.Thread(target=racer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(1 for r in outcomes if r["ok"]) == 1, outcomes
        for response in outcomes:
            if not response["ok"]:
                assert "force" in response["error"] or "busy" in response["error"]

    def test_autosaved_checkpoint_is_a_conflict(self, tmp_path):
        registry = SessionRegistry(sessions_dir=tmp_path, max_sessions=4)
        assert registry.handle(start_request(session="gpu"))["ok"]
        assert registry.handle({"op": "close", "session": "gpu"})["ok"]
        response = registry.handle(start_request(session="gpu"))
        assert response["ok"] is False and "autosaved" in response["error"]
        assert registry.handle(start_request(session="gpu", force=True))["ok"]
        # force unlinked the stale checkpoint so it cannot resurrect
        assert not (tmp_path / "gpu.ckpt.json").exists()


class TestErrorPaths:
    """Every documented error path answers ok=false and keeps serving."""

    def test_malformed_json(self):
        service = SessionService()
        for line in ["{not json", "", "}{", '"just a string"', "[1, 2]", "null", "42"]:
            response = strict_loads(service.handle_line(line))
            assert response["ok"] is False, line
            assert "bad request" in response["error"]

    def test_oversized_line(self):
        service = SessionService()
        response = strict_loads(service.handle_line("x" * (MAX_LINE_BYTES + 1)))
        assert response["ok"] is False and "exceeds" in response["error"]

    def test_ops_before_start(self):
        for op in ["ask", "tell", "status", "snapshot", "close"]:
            response = SessionService().handle({"op": op, "id": 0, "value": 1.0})
            assert response["ok"] is False, op
            assert "unknown session" in response["error"]

    def test_tell_unknown_id(self):
        service = SessionService()
        service.handle(start_request())
        response = service.handle({"op": "tell", "id": 123, "value": 1.0})
        assert response["ok"] is False and "123" in response["error"]

    def test_tell_without_value(self):
        service = SessionService()
        service.handle(start_request())
        service.handle({"op": "ask"})
        response = service.handle({"op": "tell", "id": 0})
        assert response["ok"] is False and "'value'" in response["error"]

    def test_tell_non_boolean_feasible(self):
        service = SessionService()
        service.handle(start_request())
        service.handle({"op": "ask"})
        response = service.handle(
            {"op": "tell", "id": 0, "value": 1.0, "feasible": "false"}
        )
        assert response["ok"] is False and "boolean" in response["error"]

    def test_restore_needs_exactly_one_source(self, tmp_path):
        service = SessionService()
        for extra in [{}, {"path": str(tmp_path / "x.json"), "payload": {}}]:
            response = service.handle({"op": "restore", **extra})
            assert response["ok"] is False
            assert "exactly one" in response["error"]

    def test_restore_malformed_payload(self):
        for payload in [{}, {"session": 3}, {"session": {}}, [1], "x"]:
            response = SessionService().handle({"op": "restore", "payload": payload})
            assert response["ok"] is False

    def test_restore_missing_file(self, tmp_path):
        response = SessionService().handle(
            {"op": "restore", "path": str(tmp_path / "missing.json")}
        )
        assert response["ok"] is False

    def test_restore_payload_without_seed(self):
        # an entropy-seeded restore would silently lose determinism
        service = SessionService()
        service.handle(start_request())
        payload = service.handle({"op": "snapshot"})["snapshot"]
        del payload["tuner"]["seed"]
        response = SessionService().handle({"op": "restore", "payload": payload})
        assert response["ok"] is False and "seed" in response["error"]

    def test_ask_after_done_returns_empty(self):
        service = SessionService()
        service.handle(start_request(budget=1))
        service.handle({"op": "ask"})
        service.handle({"op": "tell", "id": 0, "value": 1.0})
        response = service.handle({"op": "ask", "n": 3})
        assert response["ok"] is True
        assert response["suggestions"] == [] and response["done"] is True

    def test_invalid_session_names(self):
        registry = SessionRegistry(max_sessions=4)
        for name in ["", "../evil", "a/b", "x" * 200, 7, None, ["s"], ".hidden"]:
            response = registry.handle(start_request(session=name))
            assert response["ok"] is False, name
            assert "'session'" in response["error"]

    def test_unknown_benchmark_and_tuner(self):
        service = SessionService()
        assert not service.handle(start_request(benchmark="nope_bench"))["ok"]
        assert not service.handle(start_request(tuner="NopeTuner"))["ok"]
        assert not service.handle(start_request(budget="many"))["ok"]
        assert not service.handle(start_request(budget=0))["ok"]


def adversarial_lines(n: int = 520) -> list[str]:
    """A deterministic battery of adversarial request lines."""
    import random

    rng = random.Random(0xBAC0)
    ops = ["start", "ask", "tell", "status", "snapshot", "restore",
           "close", "sessions", "shutdown", "nope", "", None, 3, ["ask"],
           {"op": "ask"}, True, 1.5]
    junk_values = [
        None, True, False, 0, -1, 3.5, 1e999, -1e999, "x", "", [], {}, [[]],
        {"a": [1, {"b": None}]}, "Infinity", "\x00", "日本語", 10**40,
    ]
    keys = ["session", "n", "id", "value", "feasible", "elapsed", "benchmark",
            "tuner", "budget", "seed", "fidelity", "path", "payload", "force"]
    lines: list[str] = []
    while len(lines) < n:
        roll = rng.random()
        if roll < 0.25:
            # structurally broken text
            alphabet = string.printable
            lines.append("".join(rng.choice(alphabet) for _ in range(rng.randrange(0, 60))))
        elif roll < 0.35:
            # valid JSON, wrong shape
            lines.append(json.dumps(rng.choice([[1, 2], "op", 42, None, [{"op": "ask"}]])))
        elif roll < 0.5:
            # non-strict JSON tokens in random positions
            key = rng.choice(keys)
            token = rng.choice(["NaN", "Infinity", "-Infinity"])
            lines.append('{"op": "tell", "%s": %s}' % (key, token))
        else:
            # a request object with a random op and corrupted fields
            request = {"op": rng.choice(ops)}
            for _ in range(rng.randrange(0, 4)):
                request[rng.choice(keys)] = rng.choice(junk_values)
            # never let a fuzz snapshot/restore touch a real path
            if "path" in request:
                request["path"] = rng.choice([None, "", 3, []])
            try:
                lines.append(json.dumps(request))
            except (TypeError, ValueError):
                continue
    return lines


class TestFuzzNeverRaisesStrictJson:
    """500+ adversarial lines: no uncaught exception, only strict JSON out."""

    def test_fuzz_empty_registry(self):
        registry = SessionRegistry(max_sessions=2)
        for line in adversarial_lines():
            response = strict_loads(registry.handle_line(line))
            assert isinstance(response, dict) and "ok" in response, line

    def test_fuzz_with_live_session(self):
        # a live session with an in-flight suggestion exercises the deeper
        # handler paths (tell routing, conflicts, snapshots)
        registry = SessionRegistry(max_sessions=2)
        assert registry.handle(start_request(budget=500))["ok"]
        registry.handle({"op": "ask", "n": 3})
        for line in adversarial_lines():
            response = strict_loads(registry.handle_line(line))
            assert isinstance(response, dict) and "ok" in response, line
        # and the registry still serves afterwards (a fuzz line may have
        # legitimately closed the session or requested shutdown, but the
        # dispatcher itself must remain usable)
        status = registry.handle({"op": "status"})
        assert status["ok"] is True or "unknown session" in status["error"]
        assert registry.handle(start_request(session="fresh", budget=3))["ok"]
