"""Integration tests: the full pipeline from benchmark to headline claims.

These are scaled-down versions of the paper's experiments; they check the
*qualitative* results (who wins, who handles constraints) rather than exact
numbers, and they use small budgets / few repetitions to stay fast.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines import OpenTunerLikeTuner, UniformSamplingTuner
from repro.core import BacoTuner
from repro.core.baco import BacoSettings
from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import mean_best_value, relative_performance
from repro.experiments.runner import run_benchmark
from repro.workloads import get_benchmark


def _fast_settings(**overrides) -> BacoSettings:
    base = dict(
        gp_prior_samples=6,
        gp_refined_starts=1,
        gp_max_iterations=10,
        n_random_samples=96,
        n_local_search_starts=3,
        max_local_search_steps=12,
        feasibility_trees=8,
    )
    base.update(overrides)
    return BacoSettings(**base)


@pytest.mark.slow
class TestHeadlineClaims:
    def test_baco_beats_random_sampling_on_taco(self):
        """RQ1/RQ2 (scaled down): BaCO finds better schedules than random sampling."""
        benchmark = get_benchmark("taco_spmm_scircuit")
        budget = 25
        baco = [
            BacoTuner(benchmark.space, settings=_fast_settings(), seed=s)
            .tune(benchmark.evaluator, budget)
            .best_value()
            for s in range(2)
        ]
        random_best = [
            UniformSamplingTuner(benchmark.space, seed=s).tune(benchmark.evaluator, budget).best_value()
            for s in range(2)
        ]
        assert np.mean(baco) < np.mean(random_best) * 1.05

    def test_baco_approaches_expert_on_taco(self):
        benchmark = get_benchmark("taco_sddmm_email-Enron")
        history = BacoTuner(benchmark.space, settings=_fast_settings(), seed=3).tune(
            benchmark.evaluator, 40
        )
        assert history.best_value() <= benchmark.expert_value * 1.25

    def test_baco_handles_hidden_constraints_on_gpu_benchmark(self):
        """Most learning-phase proposals should be feasible despite hidden constraints."""
        benchmark = get_benchmark("rise_scal_gpu")
        history = BacoTuner(benchmark.space, settings=_fast_settings(), seed=1).tune(
            benchmark.evaluator, 30
        )
        learning = [e for e in history if e.phase == "learning"]
        feasible_fraction = sum(1 for e in learning if e.feasible) / max(len(learning), 1)
        assert feasible_fraction > 0.4
        assert history.best_value() < benchmark.default_value

    def test_fpga_dse_improves_over_default(self):
        benchmark = get_benchmark("hpvm_preeuler")
        history = BacoTuner(benchmark.space, settings=_fast_settings(), seed=2).tune(
            benchmark.evaluator, 30
        )
        assert history.best_value() < benchmark.default_value

    def test_run_benchmark_relative_performance_is_sane(self, tmp_path):
        config = ExperimentConfig(
            repetitions=2, budget_scale=0.4, cache_dir=tmp_path, use_cache=True
        )
        benchmark = get_benchmark("hpvm_bfs")
        results = run_benchmark(
            benchmark, ("Uniform Sampling", "CoT Sampling"), config=config
        )
        for histories in results.values():
            assert mean_best_value(histories) < math.inf
            rel = relative_performance(benchmark, histories, reference=benchmark.default_value)
            assert rel >= 1.0  # random search finds at least the default-level design

    def test_opentuner_competitive_on_simple_spmv(self):
        """RQ4: the exploit-heavy baseline does fine on the well-behaved SpMV kernel."""
        benchmark = get_benchmark("taco_spmv_cage12")
        history = OpenTunerLikeTuner(benchmark.space, seed=5).tune(benchmark.evaluator, 40)
        assert history.best_value() < benchmark.default_value
