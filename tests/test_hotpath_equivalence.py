"""Equivalence guarantees for the vectorized hot path and the session API.

Four layers of protection for the encoding-layer and ask/tell refactors:

* the vectorized per-type distance blocks (including the Kendall semimetric,
  whose legacy implementation was a per-pair Python double loop) are pinned
  against the reference implementation,
* GP predictions through the encoded-rows path match the legacy dict path,
  and the incremental train-train tensor matches a full recompute,
* a seeded end-to-end ``BacoTuner`` run reproduces the recorded pre-refactor
  evaluation trace bit for bit on one RISE, one TACO, and one HPVM2FPGA
  workload (``tests/data/bitcompat_trajectories.json``) — now driven through
  the ask/tell ``TuningSession`` underneath ``tune()``,
* every tuner checkpointed mid-run and restored **in a fresh process**
  completes with a trace bit-identical to an uninterrupted run,
* a session driven over the concurrent TCP tuning server — with another
  session running on the same server at the same time — produces the same
  trajectory as the same seed driven in-process.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.baco import BacoTuner
from repro.models.distances import (
    DistanceComputer,
    IncrementalDistanceTensor,
    kendall_pairwise_rows,
)
from repro.models.gp import GaussianProcess
from repro.space.parameters import (
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
    PermutationParameter,
    RealParameter,
    kendall_distance,
)

FIXTURES = Path(__file__).parent / "data" / "bitcompat_trajectories.json"


def _params(metric: str = "kendall"):
    return [
        OrdinalParameter("tile", [2, 4, 8, 16, 32], transform="log"),
        IntegerParameter("threads", 1, 16),
        RealParameter("alpha", 0.1, 10.0, transform="log"),
        CategoricalParameter("sched", ["a", "b", "c"]),
        PermutationParameter("perm", 6, metric=metric),
    ]


def _configs(params, n, seed=0):
    rng = np.random.default_rng(seed)
    return [{p.name: p.sample(rng) for p in params} for _ in range(n)]


class TestKendallVectorization:
    """Regression: vectorized Kendall equals the per-pair double loop."""

    def test_matches_scalar_kendall_distance(self):
        rng = np.random.default_rng(3)
        perms_a = [tuple(int(i) for i in rng.permutation(6)) for _ in range(15)]
        perms_b = [tuple(int(i) for i in rng.permutation(6)) for _ in range(11)]
        got = kendall_pairwise_rows(np.array(perms_a, float), np.array(perms_b, float))
        for i, pa in enumerate(perms_a):
            for j, pb in enumerate(perms_b):
                assert got[i, j] == kendall_distance(pa, pb)

    def test_single_element_permutations(self):
        out = kendall_pairwise_rows(np.zeros((3, 1)), np.zeros((2, 1)))
        assert np.array_equal(out, np.zeros((3, 2)))

    @pytest.mark.parametrize("metric", ["kendall", "spearman", "hamming", "naive"])
    def test_pairwise_rows_matches_reference(self, metric):
        params = _params(metric)
        computer = DistanceComputer(params)
        a = _configs(params, 12, seed=1)
        b = _configs(params, 9, seed=2)
        reference = computer.pairwise_reference(a, b)
        rows_a = computer.encoder.encode_batch(a)
        rows_b = computer.encoder.encode_batch(b)
        assert np.array_equal(computer.pairwise_rows(rows_a, rows_b), reference)
        # the dict adapter goes through the same vectorized path
        assert np.array_equal(computer.pairwise(a, b), reference)

    def test_self_tensor_matches_reference(self):
        params = _params("kendall")
        computer = DistanceComputer(params)
        configs = _configs(params, 10, seed=4)
        assert np.array_equal(
            computer.pairwise(configs), computer.pairwise_reference(configs)
        )


class TestIncrementalTensor:
    def test_append_one_at_a_time_matches_full(self):
        params = _params("spearman")
        computer = DistanceComputer(params)
        configs = _configs(params, 14, seed=5)
        rows = computer.encoder.encode_batch(configs)
        cache = IncrementalDistanceTensor(computer)
        for i in range(len(rows)):
            cache.append(rows[i : i + 1])
        assert len(cache) == 14
        assert np.array_equal(cache.rows, rows)
        assert np.array_equal(cache.tensor, computer.pairwise_rows(rows))

    def test_batch_appends_and_reset(self):
        params = _params("hamming")
        computer = DistanceComputer(params)
        rows = computer.encoder.encode_batch(_configs(params, 9, seed=6))
        cache = IncrementalDistanceTensor(computer)
        cache.append(rows[:4])
        cache.append(rows[4:])
        assert np.array_equal(cache.tensor, computer.pairwise_rows(rows))
        cache.reset()
        assert len(cache) == 0
        assert cache.tensor.shape == (computer.n_dimensions, 0, 0)

    def test_views_stay_valid_across_growth(self):
        params = _params("naive")
        computer = DistanceComputer(params)
        rows = computer.encoder.encode_batch(_configs(params, 20, seed=7))
        cache = IncrementalDistanceTensor(computer)
        cache.append(rows[:3])
        snapshot = cache.tensor.copy()
        view = cache.tensor
        cache.append(rows[3:])  # forces at least one reallocation
        assert np.array_equal(view, snapshot)


class TestGPEquivalence:
    def test_rows_path_matches_dict_path(self):
        params = _params("kendall")
        train = _configs(params, 25, seed=8)
        rng = np.random.default_rng(9)
        y = list(rng.uniform(0.5, 4.0, size=25))
        candidates = _configs(params, 40, seed=10)

        gp_dict = GaussianProcess(params, rng=np.random.default_rng(11))
        gp_dict.fit(train, y)
        mean_dict, var_dict = gp_dict.predict(candidates)

        gp_rows = GaussianProcess(params, rng=np.random.default_rng(11))
        rows = gp_rows.encoder.encode_batch(train)
        cache = IncrementalDistanceTensor(gp_rows._distance)
        for i in range(len(rows)):
            cache.append(rows[i : i + 1])
        gp_rows.fit_rows(cache.rows, y, distance_tensor=cache.tensor)
        mean_rows, var_rows = gp_rows.predict_rows(
            gp_rows.encoder.encode_batch(candidates)
        )

        assert np.allclose(mean_dict, mean_rows, atol=1e-8, rtol=0)
        assert np.allclose(var_dict, var_rows, atol=1e-8, rtol=0)

    def test_fit_rows_rejects_mismatched_tensor(self):
        params = _params("spearman")
        gp = GaussianProcess(params, rng=np.random.default_rng(12))
        rows = gp.encoder.encode_batch(_configs(params, 6, seed=13))
        bad = gp._distance.pairwise_rows(rows[:5])
        with pytest.raises(ValueError):
            gp.fit_rows(rows, list(range(1, 7)), distance_tensor=bad)


class TestTrajectoryBitCompatibility:
    """The refactored tuner reproduces pre-refactor runs exactly.

    Fixtures were recorded from the pre-refactor implementation (per-pair
    dict distances, per-start local search, full GP recompute each
    iteration) on one workload per compiler framework.
    """

    @pytest.fixture(scope="class")
    def fixtures(self):
        return json.loads(FIXTURES.read_text())

    @pytest.mark.parametrize(
        "benchmark_name", ["rise_mm_gpu", "taco_spmm_scircuit", "hpvm_audio"]
    )
    def test_identical_trace(self, fixtures, benchmark_name):
        from repro.workloads.registry import get_benchmark

        fx = fixtures[benchmark_name]
        bench = get_benchmark(benchmark_name)
        tuner = BacoTuner(bench.space, seed=fx["seed"])
        history = tuner.tune(bench.evaluate, fx["budget"], benchmark_name=benchmark_name)
        got = [
            {
                "configuration": {
                    k: (list(v) if isinstance(v, tuple) else v)
                    for k, v in e.configuration.items()
                },
                "value": e.value,
                "feasible": e.feasible,
                "phase": e.phase,
            }
            for e in history
        ]
        assert got == fx["evaluations"]
        assert list(history.best_so_far()) == fx["incumbent"]


# the script a "crashed and restarted" tuning process would run: load the
# checkpoint, rebuild the tuner from the registry, finish the run, dump the
# trace as JSON
_RESUME_SCRIPT = """
import json, sys
from repro.core.session import drive
from repro.experiments.runner import load_session

session, benchmark = load_session(sys.argv[1])
history = drive(session, benchmark.evaluator)
payload = history.to_dict()
payload.pop("tuner_seconds", None)
payload.pop("evaluation_seconds", None)
json.dump(payload, open(sys.argv[2], "w"))
"""


class TestCheckpointResumeBitCompatibility:
    """Satellite guarantee: snapshot at iteration k, restore in a *fresh
    process*, and the completed trace is bit-identical to an uninterrupted
    run — for BaCO and every baseline."""

    BENCHMARK = "hpvm_bfs"
    BUDGET = 12
    INTERRUPT_AT = 5

    @pytest.mark.parametrize(
        "tuner_name",
        ["BaCO", "ATF with OpenTuner", "Ytopt", "Uniform Sampling", "CoT Sampling"],
    )
    def test_fresh_process_resume_identical(self, tuner_name, tmp_path):
        from repro.experiments.runner import make_session, make_tuner, save_session
        from repro.workloads.registry import get_benchmark

        bench = get_benchmark(self.BENCHMARK)

        # the uninterrupted reference trace
        reference = make_tuner(tuner_name, bench.space, seed=17).tune(
            bench.evaluator, self.BUDGET, benchmark_name=bench.name
        )
        expected = reference.to_dict()
        expected.pop("tuner_seconds", None)
        expected.pop("evaluation_seconds", None)

        # run to the interruption point, checkpoint, and "crash"
        session, _ = make_session(self.BENCHMARK, tuner_name, self.BUDGET, 17)
        while len(session.history) < self.INTERRUPT_AT:
            [suggestion] = session.ask(1)
            session.tell(suggestion, bench.evaluator(suggestion.configuration))
        checkpoint = tmp_path / "session.ckpt.json"
        save_session(session, checkpoint)
        del session

        # restore and finish in a fresh interpreter
        out = tmp_path / "resumed_history.json"
        proc = subprocess.run(
            [sys.executable, "-c", _RESUME_SCRIPT, str(checkpoint), str(out)],
            capture_output=True,
            text=True,
            env={
                **os.environ,
                "PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src"),
            },
        )
        assert proc.returncode == 0, proc.stderr
        resumed = json.loads(out.read_text())
        assert resumed == expected


class TestTcpServiceBitCompatibility:
    """Tentpole guarantee of the TCP serving layer: a session driven over
    the network — concurrently with an unrelated session on the same server
    — produces a trajectory bit-identical to the same seed driven
    in-process.  The framing, the wire encoding, per-session locking, and
    cross-session interleaving must all be invisible to the trace."""

    BENCHMARK = "hpvm_bfs"
    BUDGET = 10

    @pytest.mark.parametrize("tuner_name", ["BaCO", "Ytopt", "CoT Sampling"])
    def test_tcp_trace_matches_in_process(self, tuner_name):
        import threading

        from repro.client import TuningClient
        from repro.core.session import drive
        from repro.experiments.runner import make_session
        from repro.server import running_server
        from repro.service import SessionRegistry
        from repro.workloads.registry import get_benchmark

        bench = get_benchmark(self.BENCHMARK)

        # the serial in-process reference trajectory
        session, _ = make_session(self.BENCHMARK, tuner_name, self.BUDGET, 17)
        drive(session, bench.evaluator)
        expected = session.snapshot()["history"]["evaluations"]

        registry = SessionRegistry(max_sessions=4)
        errors: list[BaseException] = []
        got: dict[str, list] = {}

        def main_client(port):
            try:
                with TuningClient(port=port, session="under-test") as client:
                    client.start(benchmark=self.BENCHMARK, tuner=tuner_name,
                                 budget=self.BUDGET, seed=17)
                    client.drive(bench.evaluator)
                    snapshot = client.snapshot()["snapshot"]
                    got["trace"] = snapshot["history"]["evaluations"]
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def noisy_neighbour(port):
            # unrelated traffic interleaving on the same server must not
            # perturb the session under test
            try:
                with TuningClient(port=port, session="neighbour") as client:
                    client.start(benchmark=self.BENCHMARK,
                                 tuner="Uniform Sampling", budget=8, seed=3)
                    client.drive(bench.evaluator)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        with running_server(registry) as server:
            threads = [
                threading.Thread(target=main_client, args=(server.port,)),
                threading.Thread(target=noisy_neighbour, args=(server.port,)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors, errors
        assert got["trace"] == expected


class TestFastPolicyCheckpointBitCompatibility:
    """Satellite guarantee for the fast surrogate policy: the incremental
    refit state (warm-started hyper-parameters, Cholesky coverage, refit
    cadence counters) snapshots and restores *exactly*.  A run interrupted at
    iteration k and resumed — in-process, in a fresh interpreter, or over
    TCP — finishes bit-identical to the uninterrupted run, for every policy
    shape including the GP-to-RF budget switch."""

    BENCHMARK = "hpvm_bfs"
    BUDGET = 18
    INTERRUPT_AT = 7
    POLICIES = ("fast", "fast,refit_every=3,sweep_every=10", "fast,rf_at=8")

    def _expected_trace(self, policy):
        from repro.experiments.runner import make_tuner
        from repro.workloads.registry import get_benchmark

        bench = get_benchmark(self.BENCHMARK)
        history = make_tuner(
            "BaCO", bench.space, seed=17, surrogate_policy=policy
        ).tune(bench.evaluator, self.BUDGET, benchmark_name=bench.name)
        expected = history.to_dict()
        expected.pop("tuner_seconds", None)
        expected.pop("evaluation_seconds", None)
        return bench, expected

    def _partial_session(self, bench, policy):
        from repro.experiments.runner import make_session

        session, _ = make_session(
            self.BENCHMARK, "BaCO", self.BUDGET, 17, surrogate_policy=policy
        )
        while len(session.history) < self.INTERRUPT_AT:
            [suggestion] = session.ask(1)
            session.tell(suggestion, bench.evaluator(suggestion.configuration))
        return session

    @pytest.mark.parametrize("policy", POLICIES)
    def test_in_process_resume_identical(self, policy):
        from repro.core.session import drive
        from repro.experiments.runner import restore_session

        bench, expected = self._expected_trace(policy)
        session = self._partial_session(bench, policy)
        # the JSON round-trip is part of the contract: every float in the
        # policy state must survive serialization bit-exactly
        payload = json.loads(json.dumps(session.snapshot()))
        del session

        resumed, _ = restore_session(payload)
        history = drive(resumed, bench.evaluator)
        got = history.to_dict()
        got.pop("tuner_seconds", None)
        got.pop("evaluation_seconds", None)
        assert got == expected

    @pytest.mark.parametrize("policy", POLICIES)
    def test_fresh_process_resume_identical(self, policy, tmp_path):
        from repro.experiments.runner import save_session

        bench, expected = self._expected_trace(policy)
        session = self._partial_session(bench, policy)
        checkpoint = tmp_path / "session.ckpt.json"
        save_session(session, checkpoint)
        del session

        out = tmp_path / "resumed_history.json"
        proc = subprocess.run(
            [sys.executable, "-c", _RESUME_SCRIPT, str(checkpoint), str(out)],
            capture_output=True,
            text=True,
            env={
                **os.environ,
                "PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src"),
            },
        )
        assert proc.returncode == 0, proc.stderr
        resumed = json.loads(out.read_text())
        assert resumed == expected

    def test_tcp_trace_matches_in_process(self):
        import threading

        from repro.client import TuningClient
        from repro.server import running_server
        from repro.service import SessionRegistry

        policy = "fast,refit_every=3,sweep_every=10"
        bench, expected = self._expected_trace(policy)

        registry = SessionRegistry(max_sessions=2)
        errors: list[BaseException] = []
        got: dict[str, list] = {}

        def client_thread(port):
            try:
                with TuningClient(port=port, session="fast-policy") as client:
                    client.start(
                        benchmark=self.BENCHMARK, tuner="BaCO",
                        budget=self.BUDGET, seed=17, surrogate_policy=policy,
                    )
                    client.drive(bench.evaluator)
                    snapshot = client.snapshot()["snapshot"]
                    got["trace"] = snapshot["history"]["evaluations"]
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        with running_server(registry) as server:
            thread = threading.Thread(target=client_thread, args=(server.port,))
            thread.start()
            thread.join()
        assert not errors, errors
        assert got["trace"] == expected["evaluations"]

    def test_snapshot_records_policy_state(self):
        from repro.workloads.registry import get_benchmark

        bench = get_benchmark(self.BENCHMARK)
        session = self._partial_session(bench, "fast,refit_every=3,sweep_every=10")
        state = session.snapshot()["tuner_state"]["surrogate_policy"]
        assert state["spec"] == "fast,refit_every=3,sweep_every=10"
        assert state["hypers"] is not None
        assert state["chol_base_n"] >= 2
        assert state["last_sweep_n"] >= 2

        # exact-mode snapshots must not grow the key (committed bit-compat
        # fixtures predate the policy and must keep matching byte-for-byte)
        exact = self._partial_session(bench, None)
        assert "surrogate_policy" not in exact.snapshot()["tuner_state"]

    def test_service_rejects_bad_policy_specs(self):
        from repro.service import SessionRegistry

        registry = SessionRegistry(max_sessions=2)
        base = {
            "op": "start", "session": "s", "benchmark": self.BENCHMARK,
            "tuner": "BaCO", "budget": 4, "seed": 0,
        }
        for bad in ("fast,warp=9", "turbo", 7, ["fast"]):
            response = registry.handle({**base, "surrogate_policy": bad})
            assert not response["ok"], bad
            assert "surrogate_policy" in response["error"] or "policy" in response["error"]
        # and the valid spec still starts
        response = registry.handle({**base, "surrogate_policy": "fast"})
        assert response["ok"], response


class TestAutoRfPolicy:
    """``rf_at=auto``: the measured GP-to-RF switch.

    The latch decision is driven by wall-clock measurements, so the tests
    inject timings rather than rely on the host being slow: the spec layer is
    pinned exactly, the latch is forced and verified one-way, snapshots carry
    the timing state only in auto mode, and with the probe pinned to +inf an
    ``auto`` run replays a plain ``fast`` run bit for bit (the probe draws
    from its own fixed-seed generator, never the tuner's stream)."""

    BENCHMARK = "hpvm_bfs"

    def _tuner(self, policy: str):
        from repro.experiments.runner import make_tuner
        from repro.workloads.registry import get_benchmark

        bench = get_benchmark(self.BENCHMARK)
        return get_benchmark(self.BENCHMARK), make_tuner(
            "BaCO", bench.space, seed=23, surrogate_policy=policy
        )

    def test_spec_parse_round_trip(self):
        from repro.core.baco import SurrogatePolicy

        policy = SurrogatePolicy.parse("fast,rf_at=auto")
        assert policy.rf_auto and policy.rf_threshold is None
        assert policy.spec() == "fast,refit_every=8,sweep_every=40,rf_at=auto"
        assert SurrogatePolicy.parse(policy.spec()) == policy
        for bad in ("fast,rf_at=auto,rf_at=4", "fast,rf_at=soon", "exact,rf_at=auto"):
            with pytest.raises(ValueError):
                SurrogatePolicy.parse(bad)
        with pytest.raises(ValueError, match="fixed count and 'auto'"):
            from repro.core.baco import SurrogatePolicy as SP

            SP(mode="fast", rf_threshold=8, rf_auto=True)

    def test_injected_timings_latch_one_way(self):
        bench, tuner = self._tuner("fast,rf_at=auto")
        tuner.tune(bench.evaluator, 18, benchmark_name=bench.name)
        state = tuner._auto_rf_state
        assert state["gp_ema"] is not None  # fits were timed

        n = len(tuner._feasible_values)
        tuner._auto_rf_state.update(
            {"gp_ema": 10.0, "rf_probe": 1e-4, "probe_n": n}
        )
        assert tuner._auto_rf_active(tuner._feasible_values)
        assert tuner._auto_rf_state["active_from"] == n
        assert tuner._fast_gp is None  # incremental GP state dropped
        # one-way: even a (stale) favourable EMA cannot unlatch
        tuner._auto_rf_state["gp_ema"] = 0.0
        assert tuner._auto_rf_active(tuner._feasible_values)

    def test_pinned_probe_replays_plain_fast_exactly(self):
        spec = "fast,refit_every=3,sweep_every=10"
        bench, reference = self._tuner(spec)
        expected = reference.tune(bench.evaluator, 14, benchmark_name=bench.name).to_dict()

        _, auto = self._tuner(spec + ",rf_at=auto")
        # an unreachable probe: the latch can never engage, so the only
        # remaining difference would be an RNG or cadence leak — there is none
        auto._auto_rf_state.update({"rf_probe": float("inf"), "probe_n": 10**9})
        got = auto.tune(bench.evaluator, 14, benchmark_name=bench.name).to_dict()
        for trace in (expected, got):
            trace.pop("tuner_seconds", None)
            trace.pop("evaluation_seconds", None)
        assert got == expected
        assert auto._auto_rf_state["active_from"] is None

    def test_snapshot_round_trips_auto_state(self):
        from repro.core.baco import BacoSettings, BacoTuner
        from repro.workloads.registry import get_benchmark

        bench, tuner = self._tuner("fast,rf_at=auto")
        tuner.tune(bench.evaluator, 18, benchmark_name=bench.name)
        n = len(tuner._feasible_values)
        tuner._auto_rf_state.update({"gp_ema": 10.0, "rf_probe": 1e-4, "probe_n": n})
        assert tuner._auto_rf_active(tuner._feasible_values)

        payload = json.loads(json.dumps(tuner._state_dict()))
        assert payload["surrogate_policy"]["auto_rf"]["active_from"] == n

        space = get_benchmark(self.BENCHMARK).space
        restored = BacoTuner(
            space,
            settings=BacoSettings(surrogate_policy="fast,rf_at=auto"),
            seed=23,
        )
        restored._load_state_dict(payload)
        assert restored._policy.rf_auto
        assert restored._auto_rf_state["active_from"] == n
        assert restored._auto_rf_state["gp_ema"] == 10.0

    def test_plain_fast_snapshots_carry_no_auto_key(self):
        bench, tuner = self._tuner("fast,refit_every=3,sweep_every=10")
        tuner.tune(bench.evaluator, 10, benchmark_name=bench.name)
        assert "auto_rf" not in tuner._state_dict()["surrogate_policy"]
