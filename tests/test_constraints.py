"""Tests for known-constraint expressions and co-dependence grouping."""

from __future__ import annotations

import pytest

from repro.space.constraints import (
    Constraint,
    ConstraintError,
    extract_variables,
    group_codependent,
)


class TestConstraintExpressions:
    def test_simple_comparison(self):
        constraint = Constraint("a >= b")
        assert constraint({"a": 4, "b": 2})
        assert not constraint({"a": 1, "b": 2})

    def test_arithmetic_and_functions(self):
        constraint = Constraint("a * b <= 1024 and log2(a) >= 2")
        assert constraint({"a": 4, "b": 8})
        assert not constraint({"a": 2, "b": 8})
        assert not constraint({"a": 64, "b": 64})

    def test_modulo_divisibility(self):
        constraint = Constraint("n % tile == 0")
        assert constraint({"n": 64, "tile": 16})
        assert not constraint({"n": 60, "tile": 16})

    def test_membership(self):
        constraint = Constraint("mode in ('a', 'b')")
        assert constraint({"mode": "a"})
        assert not constraint({"mode": "z"})

    def test_variables_extraction(self):
        assert extract_variables("a + b >= max(c, 2)") == {"a", "b", "c"}
        assert Constraint("x * y >= 2").variables == {"x", "y"}

    def test_missing_variable_raises_keyerror(self):
        with pytest.raises(KeyError):
            Constraint("a >= b").evaluate({"a": 1})

    def test_is_applicable(self):
        constraint = Constraint("a >= b")
        assert constraint.is_applicable({"a": 1, "b": 2, "c": 3})
        assert not constraint.is_applicable({"a": 1})

    def test_invalid_syntax_rejected(self):
        with pytest.raises(ConstraintError):
            Constraint("a >=")

    def test_constant_expression_rejected(self):
        with pytest.raises(ConstraintError):
            Constraint("1 < 2")

    def test_disallowed_calls_rejected(self):
        with pytest.raises(ConstraintError):
            Constraint("__import__('os').system('true')")
        with pytest.raises(ConstraintError):
            Constraint("open('x') and a > 1")

    def test_attribute_access_rejected(self):
        with pytest.raises(ConstraintError):
            Constraint("a.__class__ is not None")

    def test_callable_constraint(self):
        constraint = Constraint.from_callable(
            lambda cfg: cfg["a"] + cfg["b"] < 10, ["a", "b"], name="sum_below_ten"
        )
        assert constraint({"a": 3, "b": 4})
        assert not constraint({"a": 8, "b": 4})
        assert constraint.variables == {"a", "b"}
        assert constraint.name == "sum_below_ten"

    def test_callable_constraint_requires_variables(self):
        with pytest.raises(ConstraintError):
            Constraint.from_callable(lambda cfg: True, [])


class TestGrouping:
    def test_paper_example_grouping(self):
        """Fig. 4: {p1,p2} and {p3,p4,p5} are the two co-dependent groups."""
        constraints = [
            Constraint("p1 >= p2"),
            Constraint("p4 >= p3"),
            Constraint("p5 >= 2 * p4"),
        ]
        groups = group_codependent(["p1", "p2", "p3", "p4", "p5"], constraints)
        assert ["p1", "p2"] in groups
        assert ["p3", "p4", "p5"] in groups

    def test_unconstrained_parameters_form_singletons(self):
        groups = group_codependent(["a", "b", "c"], [Constraint("a >= 2")])
        assert ["a"] in groups and ["b"] in groups and ["c"] in groups

    def test_transitive_grouping(self):
        constraints = [Constraint("a >= b"), Constraint("b >= c")]
        groups = group_codependent(["a", "b", "c", "d"], constraints)
        assert ["a", "b", "c"] in groups
        assert ["d"] in groups

    def test_group_order_follows_parameter_order(self):
        constraints = [Constraint("z >= y")]
        groups = group_codependent(["x", "y", "z"], constraints)
        assert groups[0] == ["x"]
        assert groups[1] == ["y", "z"]
