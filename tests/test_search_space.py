"""Tests for the SearchSpace: sampling, feasibility, neighbourhoods, encoding."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space import (
    CategoricalParameter,
    Constraint,
    OrdinalParameter,
    PermutationParameter,
    RealParameter,
    SearchSpace,
)


class TestConstruction:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace([OrdinalParameter("a", [1]), OrdinalParameter("a", [2])])

    def test_constraint_with_unknown_parameter_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace([OrdinalParameter("a", [1, 2])], [Constraint("a >= b")])

    def test_chain_of_trees_built_for_constrained_discrete_groups(self, small_space):
        assert small_space.chain_of_trees is not None
        assert set(small_space.chain_of_trees.parameter_names) == {"p1", "p2"}

    def test_no_chain_of_trees_without_constraints(self, unconstrained_space):
        assert unconstrained_space.chain_of_trees is None

    def test_continuous_constrained_group_falls_back_to_rejection(self, rng):
        space = SearchSpace(
            [RealParameter("x", 0.0, 1.0), RealParameter("y", 0.0, 1.0)],
            [Constraint("x >= y")],
        )
        assert space.chain_of_trees is None
        for config in space.sample(rng, 20):
            assert config["x"] >= config["y"]


class TestSizes:
    def test_dense_size(self, small_space):
        # 4 * 4 * 3 * 3! = 288
        assert small_space.dense_size() == 288

    def test_feasible_size_counts_constraint(self, small_space):
        # p1 >= p2 over 4x4 power-of-two grids leaves 10 of 16 combinations
        assert small_space.feasible_size() == 10 * 3 * 6

    def test_feasible_size_matches_brute_force(self, paper_cot_space):
        brute = 0
        for config in paper_cot_space.iter_dense():
            if all(c.evaluate(config) for c in paper_cot_space.constraints):
                brute += 1
        assert paper_cot_space.feasible_size() == brute

    def test_dense_size_infinite_with_real_parameter(self, unconstrained_space):
        assert unconstrained_space.dense_size() == math.inf

    def test_describe_reports_types(self, small_space):
        info = small_space.describe()
        assert info["types"] == "O/C/P"
        assert info["dimension"] == 4
        assert info["n_known_constraints"] == 1


class TestFeasibility:
    def test_is_feasible_checks_constraints(self, small_space):
        feasible = {"p1": 8, "p2": 4, "sched": "static", "order": (0, 1, 2)}
        infeasible = {"p1": 2, "p2": 8, "sched": "static", "order": (0, 1, 2)}
        assert small_space.is_feasible(feasible)
        assert not small_space.is_feasible(infeasible)

    def test_is_feasible_checks_parameter_membership(self, small_space):
        bad_value = {"p1": 3, "p2": 2, "sched": "static", "order": (0, 1, 2)}
        assert not small_space.is_feasible(bad_value)

    def test_missing_parameter_raises(self, small_space):
        with pytest.raises(KeyError):
            small_space.is_feasible({"p1": 2, "p2": 2})

    def test_paper_example_configuration(self, paper_cot_space):
        config = {"p1": 2, "p2": 2, "p3": 4, "p4": 4, "p5": 8}
        assert paper_cot_space.is_feasible(config)


class TestSampling:
    def test_samples_are_feasible(self, small_space, rng):
        for config in small_space.sample(rng, 100):
            assert small_space.is_feasible(config)

    def test_samples_cover_permutations(self, small_space, rng):
        perms = {tuple(c["order"]) for c in small_space.sample(rng, 200)}
        assert len(perms) == 6

    def test_sampling_is_uniform_over_feasible_region(self, paper_cot_space, rng):
        keys = [paper_cot_space.freeze(c) for c in paper_cot_space.sample(rng, 9000)]
        n_feasible = int(paper_cot_space.feasible_size())
        counts = {}
        for key in keys:
            counts[key] = counts.get(key, 0) + 1
        assert len(counts) == n_feasible
        expected = len(keys) / n_feasible
        for count in counts.values():
            assert abs(count - expected) < 0.35 * expected

    def test_default_configuration_contains_all_parameters(self, small_space):
        default = small_space.default_configuration()
        assert set(default) == set(small_space.parameter_names)


class TestNeighbours:
    def test_neighbours_differ_in_exactly_one_parameter(self, small_space):
        config = {"p1": 8, "p2": 4, "sched": "static", "order": (0, 1, 2)}
        for neighbour in small_space.neighbours(config):
            diffs = [
                name
                for name in small_space.parameter_names
                if neighbour[name] != config[name]
            ]
            assert len(diffs) == 1

    def test_neighbours_are_feasible(self, small_space):
        config = {"p1": 4, "p2": 4, "sched": "dynamic", "order": (2, 1, 0)}
        for neighbour in small_space.neighbours(config):
            assert small_space.is_feasible(neighbour)

    def test_constrained_neighbours_use_cot_values(self, small_space):
        config = {"p1": 2, "p2": 2, "sched": "static", "order": (0, 1, 2)}
        p2_values = {n["p2"] for n in small_space.neighbours(config) if n["p2"] != 2}
        # p2 can only stay <= p1 = 2, so no feasible alternative value exists
        assert p2_values == set()

    def test_unconstrained_neighbours(self, unconstrained_space):
        config = {"tile": 4, "threads": 4, "alpha": 1.0, "mode": "a"}
        neighbours = unconstrained_space.neighbours(config)
        assert any(n["mode"] == "b" for n in neighbours)
        assert any(n["tile"] in (2, 8) for n in neighbours)


class TestEncoding:
    def test_encode_length(self, small_space):
        config = {"p1": 8, "p2": 4, "sched": "static", "order": (0, 2, 1)}
        encoded = small_space.encode(config)
        # p1, p2, sched index, and 3 permutation entries
        assert encoded.shape == (6,)

    def test_encode_many_shape(self, small_space, rng):
        configs = small_space.sample(rng, 7)
        assert small_space.encode_many(configs).shape == (7, 6)

    def test_log_parameters_encoded_in_log_space(self, small_space):
        a = small_space.encode({"p1": 2, "p2": 2, "sched": "static", "order": (0, 1, 2)})
        b = small_space.encode({"p1": 4, "p2": 2, "sched": "static", "order": (0, 1, 2)})
        c = small_space.encode({"p1": 8, "p2": 2, "sched": "static", "order": (0, 1, 2)})
        assert b[0] - a[0] == pytest.approx(c[0] - b[0])

    def test_freeze_is_hashable_and_stable(self, small_space):
        config = {"p1": 8, "p2": 4, "sched": "static", "order": (0, 2, 1)}
        key = small_space.freeze(config)
        assert key == small_space.freeze(dict(config))
        hash(key)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_any_sampled_configuration_is_feasible(seed):
    """Property: sampling never produces a configuration violating constraints."""
    space = SearchSpace(
        [
            OrdinalParameter("a", [1, 2, 4, 8]),
            OrdinalParameter("b", [1, 2, 4, 8]),
            CategoricalParameter("c", ["x", "y"]),
        ],
        [Constraint("a * b <= 16")],
    )
    rng = np.random.default_rng(seed)
    config = space.sample_one(rng)
    assert space.is_feasible(config)
    assert config["a"] * config["b"] <= 16
