"""Numerical-equivalence harness for the incremental surrogate-refit engine.

The fast surrogate policy replaces BaCO's per-iteration refit-from-scratch
with incremental linear algebra (rank-1 Cholesky extension, warm-started
hyper-parameter fits, frozen-hyper alpha refreshes).  Instead of hoping the
numerics hold, this suite *proves* equivalence against the exact paths on
hypothesis-randomized R/I/O/C/P spaces:

* a rank-1-extended Cholesky factor matches the full refactorization of the
  same kernel matrix (``allclose`` with pinned tolerances);
* a warm-started hyper-parameter fit reaches a posterior at least as good as
  the cold multistart sweep (within tolerance);
* ``log_likelihood`` after N incremental observes equals a fresh
  ``fit_rows`` on the same data;
* the ``log_likelihood`` bugfix: one factorization per fit, zero per
  diagnostic call (the pre-fix implementation refactorized every call).

Plus the :class:`~repro.core.baco.SurrogatePolicy` unit surface (spec
parsing, refit cadence, GP→RF budget switch) and the policy's behavior
inside a live :class:`~repro.core.baco.BacoTuner`.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baco import BacoSettings, BacoTuner, SurrogatePolicy
from repro.core.result import ObjectiveResult
from repro.models.distances import DistanceComputer, IncrementalDistanceTensor
from repro.models.gp import GaussianProcess, GPHyperparameters
from repro.space.parameters import (
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
    PermutationParameter,
    RealParameter,
)
from repro.space.space import SearchSpace

# pinned equivalence tolerances: the incremental updates are backward-stable
# triangular solves on jitter-regularized matrices, so they track the full
# refactorization to near machine precision
ATOL = 1e-8
RTOL = 1e-8


@st.composite
def riocp_parameters(draw):
    """Random parameter lists covering all five parameter types."""
    parameters = [
        RealParameter("r", 0.5, 4.0),
        IntegerParameter("i", 1, draw(st.integers(3, 10))),
        OrdinalParameter("o", [2, 4, 8, 16, 32], transform="log"),
        CategoricalParameter("c", ["x", "y", "z"][: draw(st.integers(2, 3))]),
        PermutationParameter("p", draw(st.integers(2, 3))),
    ]
    # drop a random suffix so dimensionality varies too (keep >= 2 params)
    return parameters[: draw(st.integers(2, len(parameters)))]


def _dataset(parameters, seed, n):
    rng = np.random.default_rng(seed)
    configs = [{p.name: p.sample(rng) for p in parameters} for _ in range(n)]
    values = [float(v) for v in rng.uniform(0.5, 5.0, size=n)]
    return configs, values


def _make_gp(parameters, seed, computer=None, **kwargs):
    kwargs.setdefault("n_prior_samples", 4)
    kwargs.setdefault("n_refined_starts", 1)
    kwargs.setdefault("max_optimizer_iterations", 10)
    return GaussianProcess(
        parameters,
        rng=np.random.default_rng(seed),
        distance_computer=computer,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# rank-1 Cholesky extension vs full refactorization
# ---------------------------------------------------------------------------

class TestCholeskyExtension:
    @given(riocp_parameters(), st.integers(0, 2**31 - 1), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_extension_matches_full_refactorization(self, parameters, seed, n_new):
        """Property: growing L row by row == refactorizing the full kernel."""
        from scipy import linalg

        n_total = 8 + n_new
        configs, values = _dataset(parameters, seed, n_total)
        computer = DistanceComputer(parameters)
        rows = computer.encoder.encode_batch(configs)
        tensor = computer.pairwise_rows(rows)

        gp = _make_gp(parameters, seed, computer=computer)
        gp.fit_rows(rows[:8], values[:8], distance_tensor=tensor[:, :8, :8])
        extended = gp.extend_cholesky(rows, tensor)
        assert extended, "extension unexpectedly fell back to refactorization"
        assert gp._chol_n == n_total
        assert gp._chol_base_n == 8

        full_k = gp._kernel_matrix(tensor, gp.hyperparameters, noise=True)
        full_l = linalg.cholesky(full_k, lower=True)
        assert np.allclose(gp._cholesky, full_l, atol=ATOL, rtol=RTOL)

    @given(riocp_parameters(), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_incremental_posterior_matches_frozen_refit(self, parameters, seed):
        """extend + refit_targets predicts like a from-scratch frozen fit."""
        configs, values = _dataset(parameters, seed, 12)
        computer = DistanceComputer(parameters)
        rows = computer.encoder.encode_batch(configs)
        tensor = computer.pairwise_rows(rows)

        incremental = _make_gp(parameters, seed, computer=computer)
        incremental.fit_rows(rows[:9], values[:9], distance_tensor=tensor[:, :9, :9])
        incremental.extend_cholesky(rows, tensor)
        incremental.refit_targets(values)

        fresh = _make_gp(parameters, seed, computer=computer)
        fresh.hyperparameters = incremental.hyperparameters
        fresh.fit_rows(rows, values, distance_tensor=tensor, hyper_strategy="frozen")

        test_rows = rows[:5]
        mean_inc, var_inc = incremental.predict_rows(test_rows)
        mean_ref, var_ref = fresh.predict_rows(test_rows)
        assert np.allclose(mean_inc, mean_ref, atol=ATOL, rtol=RTOL)
        assert np.allclose(var_inc, var_ref, atol=ATOL, rtol=RTOL)

    def test_extension_tracks_incremental_distance_tensor(self):
        """The tuner's usage pattern: one IncrementalDistanceTensor append
        per observation, extension reading the (read-only) tensor views."""
        parameters = [
            OrdinalParameter("tile", [2, 4, 8, 16, 32], transform="log"),
            CategoricalParameter("sched", ["a", "b"]),
        ]
        configs, values = _dataset(parameters, 3, 14)
        computer = DistanceComputer(parameters)
        cache = IncrementalDistanceTensor(computer)
        all_rows = computer.encoder.encode_batch(configs)
        for row in all_rows[:10]:
            cache.append(row[None, :])
        gp = _make_gp(parameters, 3, computer=computer)
        gp.fit_rows(cache.rows, values[:10], distance_tensor=cache.tensor)
        for i in range(10, 14):
            cache.append(all_rows[i][None, :])
            assert gp.extend_cholesky(cache.rows, cache.tensor)
            gp.refit_targets(values[: i + 1])
            assert gp.is_fitted
        assert gp._chol_n == 14
        assert gp.n_train_factorizations == 1

        fresh = _make_gp(parameters, 3, computer=computer)
        fresh.hyperparameters = gp.hyperparameters
        fresh.fit_rows(cache.rows, values, distance_tensor=cache.tensor, hyper_strategy="frozen")
        assert np.allclose(gp._cholesky, fresh._cholesky, atol=ATOL, rtol=RTOL)
        assert np.allclose(gp._alpha, fresh._alpha, atol=ATOL, rtol=RTOL)

    def test_extension_requires_fit(self):
        parameters = [OrdinalParameter("t", [1, 2, 4])]
        computer = DistanceComputer(parameters)
        gp = _make_gp(parameters, 0, computer=computer)
        rows = np.zeros((3, computer.encoder.width))
        with pytest.raises(RuntimeError):
            gp.extend_cholesky(rows, computer.pairwise_rows(rows))

    def test_extension_rejects_shrinking_rows(self):
        parameters = [OrdinalParameter("t", [1, 2, 4, 8])]
        configs, values = _dataset(parameters, 5, 6)
        computer = DistanceComputer(parameters)
        rows = computer.encoder.encode_batch(configs)
        gp = _make_gp(parameters, 5, computer=computer)
        gp.fit_rows(rows, values)
        with pytest.raises(ValueError):
            gp.extend_cholesky(rows[:3], computer.pairwise_rows(rows[:3]))

    def test_refit_targets_requires_matching_length(self):
        parameters = [OrdinalParameter("t", [1, 2, 4, 8])]
        configs, values = _dataset(parameters, 7, 6)
        computer = DistanceComputer(parameters)
        rows = computer.encoder.encode_batch(configs)
        gp = _make_gp(parameters, 7, computer=computer)
        gp.fit_rows(rows, values)
        with pytest.raises(ValueError):
            gp.refit_targets(values[:-1])


# ---------------------------------------------------------------------------
# warm-started hyper-parameter fits vs cold multistart
# ---------------------------------------------------------------------------

class TestWarmStartedFits:
    @given(riocp_parameters(), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_warm_fit_posterior_no_worse_than_cold(self, parameters, seed):
        """Property: seeding L-BFGS from the previous optimum never loses to
        the cold multistart it replaces (same data, same priors)."""
        configs, values = _dataset(parameters, seed, 10)
        computer = DistanceComputer(parameters)
        rows = computer.encoder.encode_batch(configs)
        tensor = computer.pairwise_rows(rows)

        cold = _make_gp(parameters, seed, computer=computer)
        cold.fit_rows(rows, values, distance_tensor=tensor)
        cold_ll = cold.log_likelihood()

        warm = _make_gp(parameters, seed + 1, computer=computer)
        warm.fit_rows(
            rows, values, distance_tensor=tensor,
            hyper_strategy="warm", warm_start=cold.hyperparameters.to_vector(),
        )
        assert warm.log_likelihood() >= cold_ll - 1e-6

    def test_warm_fit_consumes_no_rng(self):
        parameters = [OrdinalParameter("t", [2, 4, 8, 16], transform="log")]
        configs, values = _dataset(parameters, 11, 8)
        computer = DistanceComputer(parameters)
        rows = computer.encoder.encode_batch(configs)
        gp = _make_gp(parameters, 11, computer=computer)
        gp.fit_rows(rows, values)
        state_before = gp._rng.bit_generator.state
        gp.fit_rows(rows, values, hyper_strategy="warm")
        assert gp._rng.bit_generator.state == state_before

    def test_sweep_with_warm_start_never_regresses(self):
        """The warm vector joins the sweep pool, so a (deliberately tiny)
        multistart search cannot do worse than the previous optimum."""
        parameters = [
            OrdinalParameter("t", [2, 4, 8, 16, 32], transform="log"),
            IntegerParameter("u", 1, 9),
        ]
        configs, values = _dataset(parameters, 13, 12)
        computer = DistanceComputer(parameters)
        rows = computer.encoder.encode_batch(configs)

        strong = _make_gp(parameters, 13, computer=computer, n_prior_samples=16)
        strong.fit_rows(rows, values)
        strong_ll = strong.log_likelihood()

        weak = _make_gp(
            parameters, 14, computer=computer,
            n_prior_samples=1, max_optimizer_iterations=1,
        )
        weak.fit_rows(
            rows, values,
            hyper_strategy="sweep", warm_start=strong.hyperparameters.to_vector(),
        )
        assert weak.log_likelihood() >= strong_ll - 1e-6

    def test_unknown_strategy_rejected(self):
        parameters = [OrdinalParameter("t", [1, 2, 4])]
        configs, values = _dataset(parameters, 17, 5)
        gp = _make_gp(parameters, 17)
        with pytest.raises(ValueError):
            gp.fit(configs, values) if False else gp.fit_rows(
                gp.encoder.encode_batch(configs), values, hyper_strategy="bogus"
            )

    def test_warm_without_history_rejected(self):
        parameters = [OrdinalParameter("t", [1, 2, 4])]
        configs, values = _dataset(parameters, 19, 5)
        gp = _make_gp(parameters, 19)
        with pytest.raises(RuntimeError):
            gp.fit_rows(gp.encoder.encode_batch(configs), values, hyper_strategy="warm")
        with pytest.raises(RuntimeError):
            gp.fit_rows(gp.encoder.encode_batch(configs), values, hyper_strategy="frozen")


# ---------------------------------------------------------------------------
# log_likelihood: incremental observes == fresh fit; cached, no refactorization
# ---------------------------------------------------------------------------

class TestLogLikelihood:
    @given(riocp_parameters(), st.integers(0, 2**31 - 1), st.integers(1, 5))
    @settings(max_examples=15, deadline=None)
    def test_incremental_observes_equal_fresh_fit(self, parameters, seed, n_new):
        """Property: N incremental observes == one fresh fit_rows on the
        same data, as seen through log_likelihood."""
        n_total = 7 + n_new
        configs, values = _dataset(parameters, seed, n_total)
        computer = DistanceComputer(parameters)
        rows = computer.encoder.encode_batch(configs)
        tensor = computer.pairwise_rows(rows)

        incremental = _make_gp(parameters, seed, computer=computer)
        incremental.fit_rows(rows[:7], values[:7], distance_tensor=tensor[:, :7, :7])
        for i in range(7, n_total):
            m = i + 1
            incremental.extend_cholesky(rows[:m], tensor[:, :m, :m])
            incremental.refit_targets(values[:m])

        fresh = _make_gp(parameters, seed, computer=computer)
        fresh.hyperparameters = incremental.hyperparameters
        fresh.fit_rows(rows, values, distance_tensor=tensor, hyper_strategy="frozen")

        assert incremental.log_likelihood() == pytest.approx(
            fresh.log_likelihood(), abs=1e-7, rel=1e-9
        )

    def test_one_factorization_per_fit_none_per_call(self):
        """Regression for the log_likelihood bugfix: the diagnostic must read
        the cached factor, not rebuild the kernel and refactorize."""
        parameters = [
            OrdinalParameter("tile", [2, 4, 8, 16, 32], transform="log"),
            CategoricalParameter("sched", ["a", "b"]),
        ]
        configs, values = _dataset(parameters, 23, 10)
        gp = _make_gp(parameters, 23)
        gp.fit(configs, values)
        assert gp.n_train_factorizations == 1
        first = gp.log_likelihood()
        for _ in range(5):
            assert gp.log_likelihood() == first
        assert gp.n_train_factorizations == 1  # zero factorizations per call

    def test_matches_negative_log_posterior(self):
        """The cached value agrees with the optimizer's objective at the
        fitted hyper-parameters (the quantity the old code recomputed)."""
        parameters = [OrdinalParameter("tile", [2, 4, 8, 16, 32], transform="log")]
        configs, values = _dataset(parameters, 29, 9)
        gp = _make_gp(parameters, 29)
        gp.fit(configs, values)
        direct = -gp._negative_log_posterior(gp.hyperparameters.to_vector(), gp._train_y)
        assert gp.log_likelihood() == pytest.approx(direct, abs=1e-9)

    def test_alias_and_guards(self):
        parameters = [OrdinalParameter("tile", [2, 4, 8])]
        configs, values = _dataset(parameters, 31, 6)
        gp = _make_gp(parameters, 31)
        with pytest.raises(RuntimeError):
            gp.log_likelihood()
        gp.fit(configs, values)
        assert gp.log_marginal_likelihood() == gp.log_likelihood()
        assert math.isfinite(gp.log_likelihood())


# ---------------------------------------------------------------------------
# SurrogatePolicy: spec grammar, cadence, budget switch
# ---------------------------------------------------------------------------

class TestSurrogatePolicy:
    def test_defaults_are_exact(self):
        policy = SurrogatePolicy()
        assert policy.mode == "exact"
        assert policy.spec() == "exact"
        assert SurrogatePolicy.parse(None) == policy

    @pytest.mark.parametrize(
        "spec",
        ["exact", "fast", "fast,refit_every=3", "fast,refit_every=8,sweep_every=40,rf_at=256"],
    )
    def test_spec_round_trip(self, spec):
        policy = SurrogatePolicy.parse(spec)
        assert SurrogatePolicy.parse(policy.spec()) == policy

    def test_parse_options(self):
        policy = SurrogatePolicy.parse("fast,refit_every=5,sweep_every=20,rf_at=100")
        assert policy.mode == "fast"
        assert policy.refit_hypers_every == 5
        assert policy.sweep_every == 20
        assert policy.rf_threshold == 100

    @pytest.mark.parametrize(
        "spec",
        [
            "", "turbo", "exact,refit_every=3", "fast,bogus=1", "fast,refit_every",
            "fast,refit_every=x", "fast,refit_every=0", "fast,rf_at=1",
            "fast,refit_every=2,refit_every=3",
        ],
    )
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            SurrogatePolicy.parse(spec)

    def test_settings_validate_the_spec(self):
        with pytest.raises(ValueError):
            BacoSettings(surrogate_policy="nope")

    def test_fit_strategy_cadence(self):
        policy = SurrogatePolicy.parse("fast,refit_every=3,sweep_every=10")
        # nothing swept yet -> sweep
        assert policy.fit_strategy(5, 0, 0) == "sweep"
        # freshly swept at n=5 -> frozen until the refit cadence fires
        assert policy.fit_strategy(6, 5, 5) == "frozen"
        assert policy.fit_strategy(7, 5, 5) == "frozen"
        assert policy.fit_strategy(8, 5, 5) == "warm"
        # warm refit at 8 resets the refit counter, not the sweep counter
        assert policy.fit_strategy(9, 5, 8) == "frozen"
        assert policy.fit_strategy(15, 5, 8) == "sweep"
        # exact mode always sweeps
        assert SurrogatePolicy().fit_strategy(100, 50, 99) == "sweep"

    def test_surrogate_for_threshold(self):
        policy = SurrogatePolicy.parse("fast,rf_at=16")
        assert policy.surrogate_for(15) == "gp"
        assert policy.surrogate_for(16) == "rf"
        assert SurrogatePolicy.parse("fast").surrogate_for(10**6) == "gp"
        assert SurrogatePolicy().surrogate_for(10**6) == "gp"


# ---------------------------------------------------------------------------
# the policy inside a live BacoTuner
# ---------------------------------------------------------------------------

def _toy_space() -> SearchSpace:
    return SearchSpace(
        [
            OrdinalParameter("tile", [2, 4, 8, 16, 32, 64], transform="log"),
            IntegerParameter("unroll", 1, 8),
            CategoricalParameter("sched", ["a", "b"]),
        ],
        build_chain_of_trees=False,
    )


def _toy_objective(config) -> ObjectiveResult:
    value = (
        1.0
        + abs(math.log2(config["tile"]) - 3.0)
        + 0.1 * config["unroll"]
        + (0.5 if config["sched"] == "b" else 0.0)
    )
    return ObjectiveResult(value=value)


def _fast_settings(**kwargs) -> BacoSettings:
    kwargs.setdefault("gp_prior_samples", 4)
    kwargs.setdefault("gp_refined_starts", 1)
    kwargs.setdefault("gp_max_iterations", 10)
    kwargs.setdefault("n_random_samples", 64)
    kwargs.setdefault("n_local_search_starts", 2)
    kwargs.setdefault("max_local_search_steps", 8)
    kwargs.setdefault("feasibility_trees", 8)
    return BacoSettings(**kwargs)


class TestBacoTunerPolicy:
    def test_default_policy_is_exact(self):
        tuner = BacoTuner(_toy_space(), settings=_fast_settings(), seed=0)
        assert tuner.surrogate_policy.mode == "exact"

    def test_exact_mode_state_dict_is_unchanged(self):
        """Exact-mode snapshots must stay byte-identical to the pre-policy
        format (no surrogate_policy key), so committed fixtures keep passing."""
        tuner = BacoTuner(_toy_space(), settings=_fast_settings(), seed=1)
        tuner.tune(_toy_objective, 8)
        assert "surrogate_policy" not in tuner._state_dict()

    def test_fast_mode_reduces_factorizations(self):
        budget = 16
        space = _toy_space()
        policy = "fast,refit_every=100,sweep_every=100"
        tuner = BacoTuner(
            space, settings=_fast_settings(surrogate_policy=policy), seed=2
        )
        tuner.tune(_toy_objective, budget)
        gp = tuner._fast_gp
        assert gp is not None
        # one full sweep when the learning phase began, frozen extensions after
        assert gp.n_train_factorizations == 1
        # the last observation is never fit (no recommendation follows it)
        assert gp._chol_n == len(tuner._feasible_values) - 1
        assert gp._chol_base_n < gp._chol_n

    def test_fast_mode_warm_refits_on_cadence(self):
        policy = "fast,refit_every=2,sweep_every=100"
        tuner = BacoTuner(
            _toy_space(), settings=_fast_settings(surrogate_policy=policy), seed=3
        )
        tuner.tune(_toy_objective, 16)
        st = tuner._policy_state
        assert st["hypers"] is not None
        assert st["last_refit_n"] > st["last_sweep_n"]
        # warm refits refactorize (new hypers) but never re-run the sweep
        assert tuner._fast_gp.n_train_factorizations > 1

    def test_rf_threshold_switches_surrogate(self):
        policy = "fast,refit_every=100,sweep_every=100,rf_at=6"
        tuner = BacoTuner(
            _toy_space(), settings=_fast_settings(surrogate_policy=policy), seed=4
        )
        tuner.tune(_toy_objective, 20)
        gp = tuner._fast_gp
        # the GP stopped being refit once the RF took over at 6 observations
        assert gp is None or gp._chol_n <= 6 + 1
        assert len(tuner._feasible_values) > 6

    def test_set_surrogate_policy_rejects_bad_spec(self):
        tuner = BacoTuner(_toy_space(), settings=_fast_settings(), seed=5)
        with pytest.raises(ValueError):
            tuner.set_surrogate_policy("fast,warp=9")

    def test_fast_and_exact_reach_similar_quality(self):
        """Sanity guard: the fast policy is an approximation, but on a toy
        problem it must still optimize (not degrade to random search)."""
        budget = 20
        exact = BacoTuner(_toy_space(), settings=_fast_settings(), seed=6)
        best_exact = exact.tune(_toy_objective, budget).best_value()
        fast = BacoTuner(
            _toy_space(),
            settings=_fast_settings(surrogate_policy="fast,refit_every=4,sweep_every=12"),
            seed=6,
        )
        best_fast = fast.tune(_toy_objective, budget).best_value()
        assert best_fast <= best_exact * 1.5 + 0.5
