"""Property-based and unit tests for the fixed-width configuration encoder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space import (
    CategoricalParameter,
    ConfigEncoder,
    IntegerParameter,
    OrdinalParameter,
    PermutationParameter,
    RealParameter,
)


def _mixed_parameters():
    return [
        OrdinalParameter("tile", [2, 4, 8, 16, 32], transform="log"),
        IntegerParameter("threads", 1, 64, transform="log"),
        RealParameter("alpha", 0.1, 10.0, transform="log"),
        RealParameter("beta", -5.0, 5.0),
        CategoricalParameter("sched", ["static", "dynamic", "guided"]),
        PermutationParameter("order", 5),
    ]


class TestLayout:
    def test_width_and_blocks(self):
        enc = ConfigEncoder(_mixed_parameters())
        assert enc.width == 4 + 1 + 5
        kinds = [b.kind for b in enc.blocks]
        assert kinds == ["numeric"] * 4 + ["categorical", "permutation"]
        assert enc.columns("order") == slice(5, 10)

    def test_matches_search_space_encode(self, small_space, rng):
        configs = small_space.sample(rng, 10)
        batch = small_space.encode_batch(configs)
        stacked = np.vstack([small_space.encode(c) for c in configs])
        assert np.array_equal(batch, stacked)

    def test_empty_batch(self):
        enc = ConfigEncoder(_mixed_parameters())
        assert enc.encode_batch([]).shape == (0, enc.width)

    def test_signature_detects_transform_difference(self):
        log_enc = ConfigEncoder([OrdinalParameter("t", [2, 4], transform="log")])
        lin_enc = ConfigEncoder([OrdinalParameter("t", [2, 4])])
        assert log_enc.signature() != lin_enc.signature()
        assert log_enc.signature() == ConfigEncoder(
            [OrdinalParameter("t", [2, 4], transform="log")]
        ).signature()


class TestRoundTrip:
    """decode(encode(c)) must be the identity for every parameter type."""

    @given(st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_mixed_space_round_trip(self, pyrandom):
        params = _mixed_parameters()
        enc = ConfigEncoder(params)
        rng = np.random.default_rng(pyrandom.randrange(2**32))
        config = {p.name: p.sample(rng) for p in params}
        decoded = enc.decode(enc.encode(config))
        for p in params:
            original, restored = config[p.name], decoded[p.name]
            if isinstance(p, RealParameter):
                assert restored == pytest.approx(original, rel=1e-9)
            else:
                assert restored == p.canonical(original) or restored == original

    @given(st.integers(min_value=1, max_value=7))
    @settings(max_examples=30, deadline=None)
    def test_permutation_round_trip_all_sizes(self, n):
        param = PermutationParameter("p", n)
        enc = ConfigEncoder([param])
        rng = np.random.default_rng(n)
        for _ in range(10):
            value = param.sample(rng)
            assert enc.decode(enc.encode({"p": value}))["p"] == value

    def test_ordinal_log_round_trip_exact(self):
        param = OrdinalParameter("t", [2, 4, 8, 16, 1024], transform="log")
        enc = ConfigEncoder([param])
        for value in param.values:
            assert enc.decode(enc.encode({"t": value}))["t"] == value

    def test_integer_log_round_trip_exact(self):
        param = IntegerParameter("n", 1, 10_000, transform="log")
        enc = ConfigEncoder([param])
        for value in (1, 2, 3, 17, 255, 9_999, 10_000):
            assert enc.decode(enc.encode({"n": value}))["n"] == value

    def test_categorical_round_trip(self):
        param = CategoricalParameter("c", ["a", "b", "c", "d"])
        enc = ConfigEncoder([param])
        for value in param.values:
            assert enc.decode(enc.encode({"c": value}))["c"] == value


class TestDecodeProjection:
    """Arbitrary rows decode to the nearest legal configuration."""

    def test_numeric_clipping(self):
        enc = ConfigEncoder([RealParameter("x", 0.0, 1.0), IntegerParameter("n", 2, 9)])
        decoded = enc.decode([5.0, 100.0])
        assert decoded["x"] == 1.0
        assert decoded["n"] == 9

    def test_ordinal_snaps_to_nearest_value(self):
        enc = ConfigEncoder([OrdinalParameter("t", [2, 4, 8, 16], transform="log")])
        row = enc.encode({"t": 8}) + 0.05  # nudge inside the warped gap
        assert enc.decode(row)["t"] == 8

    def test_categorical_out_of_range_index(self):
        enc = ConfigEncoder([CategoricalParameter("c", ["a", "b"])])
        assert enc.decode([7.3])["c"] == "b"
        assert enc.decode([-2.0])["c"] == "a"

    def test_invalid_permutation_projected_by_rank(self):
        param = PermutationParameter("p", 4)
        enc = ConfigEncoder([param])
        decoded = enc.decode([0.2, 3.7, 3.6, -1.0])["p"]
        assert param.contains(decoded)
        assert decoded == (1, 3, 2, 0)

    def test_wrong_width_raises(self):
        enc = ConfigEncoder([CategoricalParameter("c", ["a", "b"])])
        with pytest.raises(ValueError):
            enc.decode([0.0, 1.0])

    def test_decode_batch(self, small_space, rng):
        configs = small_space.sample(rng, 6)
        rows = small_space.encode_batch(configs)
        decoded = small_space.encoder.decode_batch(rows)
        assert [small_space.freeze(c) for c in decoded] == [
            small_space.freeze(c) for c in configs
        ]
