"""Unit and property-based tests for the parameter types."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space.parameters import (
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
    PermutationParameter,
    RealParameter,
    PERMUTATION_METRICS,
    hamming_permutation_distance,
    kendall_distance,
    spearman_distance,
)


# ---------------------------------------------------------------------------
# RealParameter
# ---------------------------------------------------------------------------

class TestRealParameter:
    def test_sampling_stays_in_bounds(self, rng):
        param = RealParameter("x", 0.5, 2.5)
        samples = [param.sample(rng) for _ in range(200)]
        assert all(0.5 <= s <= 2.5 for s in samples)

    def test_log_sampling_stays_in_bounds(self, rng):
        param = RealParameter("x", 1.0, 1024.0, transform="log")
        samples = [param.sample(rng) for _ in range(200)]
        assert all(1.0 <= s <= 1024.0 for s in samples)

    def test_distance_is_absolute_difference(self):
        param = RealParameter("x", 0.0, 10.0)
        assert param.distance(2.0, 5.0) == pytest.approx(3.0)
        assert param.distance(5.0, 2.0) == pytest.approx(3.0)

    def test_log_distance_matches_paper_example(self):
        """Tile sizes 2/4 should be as similar as 512/1024 (Sec. 4.1)."""
        param = RealParameter("tile", 1.0, 2048.0, transform="log")
        assert param.distance(2, 4) == pytest.approx(param.distance(512, 1024))
        assert param.distance(512, 514) < param.distance(2, 4)

    def test_contains(self):
        param = RealParameter("x", 0.0, 1.0)
        assert param.contains(0.5)
        assert param.contains(0.0) and param.contains(1.0)
        assert not param.contains(-0.01)
        assert not param.contains("not a number")

    def test_neighbours_stay_in_bounds(self):
        param = RealParameter("x", 0.0, 1.0)
        for value in (0.0, 0.37, 1.0):
            for neighbour in param.neighbours(value):
                assert 0.0 <= neighbour <= 1.0
                assert neighbour != value

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            RealParameter("x", 2.0, 1.0)
        with pytest.raises(ValueError):
            RealParameter("x", -1.0, 1.0, transform="log")

    def test_continuous_has_no_cardinality(self):
        param = RealParameter("x", 0.0, 1.0)
        assert param.cardinality() is None
        assert not param.is_discrete


# ---------------------------------------------------------------------------
# IntegerParameter
# ---------------------------------------------------------------------------

class TestIntegerParameter:
    def test_sampling_covers_range(self, rng):
        param = IntegerParameter("n", 1, 4)
        samples = {param.sample(rng) for _ in range(300)}
        assert samples == {1, 2, 3, 4}

    def test_contains_rejects_non_integers(self):
        param = IntegerParameter("n", 0, 10)
        assert param.contains(3)
        assert not param.contains(3.5)
        assert not param.contains(11)

    def test_neighbours_are_adjacent(self):
        param = IntegerParameter("n", 0, 10)
        assert set(param.neighbours(5)) >= {4, 6}
        assert 0 not in param.neighbours(0) and -1 not in param.neighbours(0)

    def test_wide_range_neighbours_include_jumps(self):
        param = IntegerParameter("n", 0, 1000)
        neighbours = param.neighbours(500)
        assert any(abs(n - 500) > 1 for n in neighbours)

    def test_values_list_and_cardinality(self):
        param = IntegerParameter("n", 3, 7)
        assert param.values_list() == [3, 4, 5, 6, 7]
        assert param.cardinality() == 5

    def test_log_distance(self):
        param = IntegerParameter("n", 1, 1024, transform="log")
        assert param.distance(2, 4) == pytest.approx(param.distance(256, 512))


# ---------------------------------------------------------------------------
# OrdinalParameter
# ---------------------------------------------------------------------------

class TestOrdinalParameter:
    def test_values_are_sorted_and_deduplicated(self):
        param = OrdinalParameter("o", [8, 2, 4, 2])
        assert param.values_list() == [2, 4, 8]

    def test_neighbours_are_adjacent_in_order(self):
        param = OrdinalParameter("o", [1, 2, 4, 8, 16])
        assert param.neighbours(4) == [2, 8]
        assert param.neighbours(1) == [2]
        assert param.neighbours(16) == [8]

    def test_distance_uses_values_not_ranks(self):
        param = OrdinalParameter("o", [1, 2, 100])
        assert param.distance(1, 2) == pytest.approx(1.0)
        assert param.distance(2, 100) == pytest.approx(98.0)

    def test_log_transform_distance(self):
        param = OrdinalParameter("o", [2, 4, 512, 1024], transform="log")
        assert param.distance(2, 4) == pytest.approx(param.distance(512, 1024))

    def test_default_must_be_member(self):
        with pytest.raises(ValueError):
            OrdinalParameter("o", [1, 2, 4], default=3)

    def test_contains_canonicalizes_floats(self):
        param = OrdinalParameter("o", [1, 2, 4])
        assert param.contains(2.0)
        assert not param.contains(3)

    def test_sample_only_returns_members(self, rng):
        param = OrdinalParameter("o", [1, 2, 4, 8])
        assert {param.sample(rng) for _ in range(200)} <= {1, 2, 4, 8}


# ---------------------------------------------------------------------------
# CategoricalParameter
# ---------------------------------------------------------------------------

class TestCategoricalParameter:
    def test_hamming_distance(self):
        param = CategoricalParameter("c", ["a", "b", "c"])
        assert param.distance("a", "a") == 0.0
        assert param.distance("a", "b") == 1.0

    def test_neighbours_are_all_other_values(self):
        param = CategoricalParameter("c", ["a", "b", "c"])
        assert set(param.neighbours("a")) == {"b", "c"}

    def test_numeric_encoding_is_index(self):
        param = CategoricalParameter("c", ["x", "y", "z"])
        assert param.to_numeric("y") == 1.0

    def test_duplicate_values_collapsed(self):
        param = CategoricalParameter("c", ["a", "b", "a"])
        assert param.values_list() == ["a", "b"]

    def test_default_validation(self):
        with pytest.raises(ValueError):
            CategoricalParameter("c", ["a", "b"], default="z")


# ---------------------------------------------------------------------------
# permutation semimetrics
# ---------------------------------------------------------------------------

class TestPermutationSemimetrics:
    def test_paper_figure3_example(self):
        """Fig. 3: distances between [1,2,3,4] and [2,4,3,1] (0-indexed here)."""
        a = (0, 1, 2, 3)
        b = (1, 3, 2, 0)
        assert kendall_distance(a, b) == 4.0
        assert spearman_distance(a, b) == (1 + 4 + 0 + 9)
        assert hamming_permutation_distance(a, b) == 3.0

    def test_identity_distances_are_zero(self):
        perm = (3, 1, 0, 2)
        for metric in PERMUTATION_METRICS.values():
            assert metric(perm, perm) == 0.0

    def test_symmetry(self):
        a, b = (0, 1, 2, 3, 4), (4, 2, 0, 1, 3)
        for metric in PERMUTATION_METRICS.values():
            assert metric(a, b) == metric(b, a)

    def test_kendall_of_adjacent_swap_is_one(self):
        assert kendall_distance((0, 1, 2, 3), (1, 0, 2, 3)) == 1.0

    def test_spearman_emphasizes_large_moves(self):
        """The paper's example: swapping the outermost loops moves elements far."""
        a = (1, 2, 0, 3)
        b = (3, 2, 0, 1)
        assert spearman_distance(a, b) > kendall_distance(a, b)
        assert spearman_distance(a, b) > hamming_permutation_distance(a, b)

    @given(
        st.permutations(list(range(5))),
        st.permutations(list(range(5))),
    )
    @settings(max_examples=100, deadline=None)
    def test_semimetric_properties(self, a, b):
        """Non-negativity, identity of indiscernibles, and symmetry."""
        for name, metric in PERMUTATION_METRICS.items():
            d_ab = metric(tuple(a), tuple(b))
            assert d_ab >= 0.0
            assert metric(tuple(a), tuple(a)) == 0.0
            assert d_ab == metric(tuple(b), tuple(a))
            if tuple(a) != tuple(b):
                assert d_ab > 0.0, name


# ---------------------------------------------------------------------------
# PermutationParameter
# ---------------------------------------------------------------------------

class TestPermutationParameter:
    def test_sampling_produces_valid_permutations(self, rng):
        param = PermutationParameter("perm", 4)
        for _ in range(50):
            value = param.sample(rng)
            assert sorted(value) == [0, 1, 2, 3]

    def test_contains(self):
        param = PermutationParameter("perm", 3)
        assert param.contains((2, 0, 1))
        assert not param.contains((0, 1))
        assert not param.contains((0, 0, 1))
        assert not param.contains("abc")

    def test_cardinality_is_factorial(self):
        assert PermutationParameter("perm", 5).cardinality() == 120

    def test_values_list_small(self):
        param = PermutationParameter("perm", 3)
        values = param.values_list()
        assert len(values) == 6
        assert len(set(values)) == 6

    def test_values_list_refuses_large(self):
        with pytest.raises(TypeError):
            PermutationParameter("perm", 9).values_list()

    def test_neighbours_are_adjacent_swaps(self):
        param = PermutationParameter("perm", 4)
        neighbours = param.neighbours((0, 1, 2, 3))
        assert len(neighbours) == 3
        for n in neighbours:
            assert hamming_permutation_distance((0, 1, 2, 3), n) == 2.0

    def test_all_swaps_count(self):
        param = PermutationParameter("perm", 4)
        assert len(param.all_swaps((0, 1, 2, 3))) == 6

    def test_metric_selection_changes_distance(self):
        a, b = (0, 1, 2, 3), (3, 2, 1, 0)
        spearman = PermutationParameter("perm", 4, metric="spearman")
        hamming = PermutationParameter("perm", 4, metric="hamming")
        naive = PermutationParameter("perm", 4, metric="naive")
        assert spearman.distance(a, b) == 20.0
        assert hamming.distance(a, b) == 4.0
        assert naive.distance(a, b) == 1.0

    def test_max_distance_is_attained_by_reversal(self):
        param = PermutationParameter("perm", 5, metric="spearman")
        assert param.distance(tuple(range(5)), tuple(reversed(range(5)))) == param.max_distance()

    def test_unknown_metric_raises(self):
        with pytest.raises(ValueError):
            PermutationParameter("perm", 4, metric="bogus")

    def test_default_is_identity(self):
        assert PermutationParameter("perm", 4).default == (0, 1, 2, 3)

    def test_to_numeric(self):
        param = PermutationParameter("perm", 3)
        assert param.to_numeric((2, 0, 1)) == (2.0, 0.0, 1.0)


def test_parameter_names_must_be_nonempty():
    with pytest.raises(ValueError):
        OrdinalParameter("", [1, 2])
