"""Tests for the benchmark workload definitions (Table 3)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.workloads import (
    Benchmark,
    benchmark_names,
    benchmarks_by_framework,
    expert_search,
    get_benchmark,
    hpvm_benchmark_names,
    representative_benchmarks,
    rise_benchmark_names,
    taco_benchmark_names,
)
from repro.workloads.taco_suite import build_taco_benchmark


class TestRegistry:
    def test_benchmark_counts(self):
        assert len(taco_benchmark_names()) == 15
        assert len(rise_benchmark_names()) == 7
        assert len(hpvm_benchmark_names()) == 3
        assert len(benchmark_names()) == 25

    def test_grouping_by_framework(self):
        groups = benchmarks_by_framework()
        assert set(groups) == {"TACO", "RISE & ELEVATE", "HPVM2FPGA"}
        assert sum(len(v) for v in groups.values()) == 25

    def test_all_benchmarks_constructible(self):
        for name in benchmark_names():
            benchmark = get_benchmark(name)
            assert isinstance(benchmark, Benchmark)
            assert benchmark.name == name

    def test_construction_is_cached(self):
        assert get_benchmark("hpvm_bfs") is get_benchmark("hpvm_bfs")

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            get_benchmark("taco_spmm_not_a_tensor")
        with pytest.raises(KeyError):
            get_benchmark("llvm_something")

    def test_representatives_exist(self):
        for name in representative_benchmarks().values():
            assert name in benchmark_names()

    def test_ablation_tensors_buildable(self):
        benchmark = build_taco_benchmark("spmm", "amazon0312")
        assert benchmark.space.dimension == 6


# expected Table 3 characteristics: (dimension, type string, constraint string)
_TABLE3_EXPECTATIONS = {
    "taco_spmv_cage12": (7, "O/C/P", ""),
    "taco_spmm_scircuit": (6, "O/C/P", "K"),
    "taco_sddmm_email-Enron": (6, "O/C/P", "K"),
    "taco_ttv_facebook": (7, "O/C/P", "K/H"),
    "taco_mttkrp_uber": (6, "O/C/P", "K"),
    "rise_mm_cpu": (5, "O/P", "K/H"),
    "rise_mm_gpu": (10, "O", "K/H"),
    "rise_asum_gpu": (5, "O", "K"),
    "rise_scal_gpu": (7, "O", "K/H"),
    "rise_kmeans_gpu": (4, "O", "K/H"),
    "rise_harris_gpu": (7, "O", "K"),
    "rise_stencil_gpu": (4, "O", "K"),
    "hpvm_bfs": (4, "O/C", "H"),
    "hpvm_audio": (15, "O/C", "H"),
    "hpvm_preeuler": (7, "O/C", "H"),
}


class TestTable3Characteristics:
    @pytest.mark.parametrize("name,expected", sorted(_TABLE3_EXPECTATIONS.items()))
    def test_dimensions_types_constraints(self, name, expected):
        dimension, types, constraints = expected
        info = get_benchmark(name).describe()
        assert info["dimension"] == dimension
        assert info["types"] == types
        assert info["constraints"] == constraints

    def test_budgets_match_table3(self):
        assert get_benchmark("taco_spmv_cage12").full_budget == 70
        assert get_benchmark("taco_spmm_scircuit").full_budget == 60
        assert get_benchmark("rise_mm_cpu").full_budget == 100
        assert get_benchmark("rise_mm_gpu").full_budget == 120
        assert get_benchmark("hpvm_bfs").full_budget == 20
        assert get_benchmark("hpvm_audio").full_budget == 60

    def test_budget_levels(self):
        benchmark = get_benchmark("taco_spmm_scircuit")
        assert benchmark.tiny_budget == 20
        assert benchmark.small_budget == 40
        assert benchmark.budget("full") == 60
        with pytest.raises(KeyError):
            benchmark.budget("huge")

    def test_feasible_size_not_larger_than_dense(self):
        for name in ("taco_spmm_scircuit", "rise_mm_gpu", "rise_stencil_gpu"):
            info = get_benchmark(name).describe()
            assert info["feasible_size"] <= info["dense_size"]


class TestReferenceConfigurations:
    @pytest.mark.parametrize("name", sorted(_TABLE3_EXPECTATIONS))
    def test_default_configuration_is_feasible(self, name):
        benchmark = get_benchmark(name)
        assert benchmark.default_configuration is not None
        assert benchmark.space.is_feasible(benchmark.default_configuration)
        assert math.isfinite(benchmark.default_value)

    def test_taco_and_rise_have_experts(self):
        for name in ("taco_spmm_scircuit", "taco_spmv_cage12", "rise_mm_gpu", "rise_asum_gpu"):
            benchmark = get_benchmark(name)
            assert benchmark.has_expert
            assert benchmark.expert_value <= benchmark.default_value

    def test_hpvm_has_no_expert(self):
        for name in hpvm_benchmark_names():
            benchmark = get_benchmark(name)
            assert not benchmark.has_expert
            assert benchmark.reference_value == benchmark.default_value

    def test_expert_uses_default_loop_order(self):
        """The TACO experts only consider the default permutation (RQ4)."""
        benchmark = get_benchmark("taco_spmm_scircuit")
        n = len(benchmark.expert_configuration["permutation"])
        assert tuple(benchmark.expert_configuration["permutation"]) == tuple(range(n))

    def test_expert_is_not_globally_optimal_for_taco(self):
        """A better-than-expert schedule exists (so autotuners can beat the expert)."""
        benchmark = get_benchmark("taco_spmm_scircuit")
        better = dict(benchmark.expert_configuration)
        kernel = benchmark.evaluator
        better["permutation"] = kernel.best_loop_order
        result = benchmark.evaluate(better)
        assert result.feasible
        assert result.value < benchmark.expert_value * 1.05


class TestExpertSearch:
    def test_pinned_parameters_are_not_modified(self, small_space, quadratic_objective):
        start = {"p1": 16, "p2": 2, "sched": "dynamic", "order": (0, 1, 2)}
        expert = expert_search(
            small_space, quadratic_objective, start, pinned=("order", "sched")
        )
        assert expert["order"] == (0, 1, 2)
        assert expert["sched"] == "dynamic"

    def test_improves_on_start(self, small_space, quadratic_objective):
        start = {"p1": 16, "p2": 2, "sched": "dynamic", "order": (0, 1, 2)}
        expert = expert_search(small_space, quadratic_objective, start)
        assert quadratic_objective(expert).value <= quadratic_objective(start).value

    def test_requires_feasible_start(self, small_space, quadratic_objective):
        with pytest.raises(ValueError):
            expert_search(
                small_space,
                quadratic_objective,
                {"p1": 2, "p2": 16, "sched": "static", "order": (0, 1, 2)},
            )

    def test_result_is_feasible(self, paper_cot_space):
        from repro.core.result import ObjectiveResult

        def objective(config):
            return ObjectiveResult(float(sum(config.values())))

        start = {"p1": 4, "p2": 4, "p3": 4, "p4": 4, "p5": 8}
        expert = expert_search(paper_cot_space, objective, start)
        assert paper_cot_space.is_feasible(expert)


class TestBenchmarkEvaluation:
    def test_random_configurations_evaluate(self, rng):
        for name in ("taco_ttv_facebook", "rise_mm_gpu", "hpvm_preeuler"):
            benchmark = get_benchmark(name)
            for config in benchmark.space.sample(rng, 10):
                result = benchmark.evaluate(config)
                assert result.value > 0 or not result.feasible

    def test_hidden_constraints_actually_trigger(self, rng):
        """Benchmarks marked H produce some infeasible evaluations under random sampling."""
        benchmark = get_benchmark("rise_mm_gpu")
        results = [benchmark.evaluate(c) for c in benchmark.space.sample(rng, 200)]
        assert any(not r.feasible for r in results)
        assert any(r.feasible for r in results)
