"""Tests for distance tensors, kernels, and hyper-parameter priors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.distances import DistanceComputer, parameter_scale
from repro.models.kernels import matern52, rbf, scaled_distance
from repro.models.priors import GammaPrior, LogNormalPrior, UniformPrior
from repro.space.parameters import (
    CategoricalParameter,
    OrdinalParameter,
    PermutationParameter,
    RealParameter,
)


def _params():
    return [
        OrdinalParameter("tile", [2, 4, 8, 16, 32], transform="log"),
        CategoricalParameter("sched", ["a", "b", "c"]),
        PermutationParameter("perm", 4, metric="spearman"),
    ]


def _configs(rng, params, n):
    return [
        {p.name: p.sample(rng) for p in params}
        for _ in range(n)
    ]


class TestParameterScale:
    def test_ordinal_log_scale(self):
        param = OrdinalParameter("tile", [2, 4, 8, 16, 32], transform="log")
        assert parameter_scale(param) == pytest.approx(np.log(32) - np.log(2))

    def test_categorical_scale_is_one(self):
        assert parameter_scale(CategoricalParameter("c", ["a", "b"])) == 1.0

    def test_permutation_scale_is_sqrt_max_distance(self):
        param = PermutationParameter("perm", 4, metric="spearman")
        assert parameter_scale(param) == pytest.approx(np.sqrt(param.max_distance()))

    def test_real_scale(self):
        assert parameter_scale(RealParameter("x", 0.0, 5.0)) == 5.0


class TestDistanceComputer:
    def test_matches_parameter_distance(self, rng):
        params = _params()
        computer = DistanceComputer(params)
        configs = _configs(rng, params, 6)
        tensor = computer.pairwise(configs)
        for k, param in enumerate(params):
            scale = parameter_scale(param)
            for i in range(6):
                for j in range(6):
                    expected = param.distance(configs[i][param.name], configs[j][param.name])
                    if isinstance(param, PermutationParameter):
                        expected = np.sqrt(expected)
                    assert tensor[k, i, j] == pytest.approx(expected / scale)

    def test_symmetric_and_zero_diagonal(self, rng):
        params = _params()
        computer = DistanceComputer(params)
        configs = _configs(rng, params, 8)
        tensor = computer.pairwise(configs)
        assert np.allclose(tensor, np.swapaxes(tensor, 1, 2))
        for k in range(tensor.shape[0]):
            assert np.allclose(np.diag(tensor[k]), 0.0)

    def test_cross_distances_shape(self, rng):
        params = _params()
        computer = DistanceComputer(params)
        a = _configs(rng, params, 5)
        b = _configs(rng, params, 3)
        assert computer.pairwise(a, b).shape == (3, 5, 3)

    def test_kendall_metric_falls_back_to_loop(self, rng):
        params = [PermutationParameter("perm", 4, metric="kendall")]
        computer = DistanceComputer(params)
        configs = _configs(rng, params, 5)
        tensor = computer.pairwise(configs)
        for i in range(5):
            for j in range(5):
                expected = np.sqrt(params[0].distance(configs[i]["perm"], configs[j]["perm"]))
                assert tensor[0, i, j] * parameter_scale(params[0]) == pytest.approx(expected)

    def test_normalized_distances_at_most_one(self, rng):
        params = _params()
        computer = DistanceComputer(params)
        tensor = computer.pairwise(_configs(rng, params, 20))
        assert tensor.max() <= 1.0 + 1e-9


class TestKernels:
    def _tensor(self, rng, n=10):
        params = _params()
        computer = DistanceComputer(params)
        return computer.pairwise(_configs(rng, params, n))

    def test_matern_diagonal_equals_outputscale(self, rng):
        tensor = self._tensor(rng)
        k = matern52(tensor, np.ones(tensor.shape[0]), outputscale=2.5)
        assert np.allclose(np.diag(k), 2.5)

    def test_matern_is_symmetric_psd(self, rng):
        tensor = self._tensor(rng, n=15)
        k = matern52(tensor, np.full(tensor.shape[0], 0.7), outputscale=1.0)
        assert np.allclose(k, k.T)
        eigenvalues = np.linalg.eigvalsh(k + 1e-10 * np.eye(k.shape[0]))
        assert eigenvalues.min() > -1e-8

    def test_rbf_is_symmetric_psd(self, rng):
        tensor = self._tensor(rng, n=12)
        k = rbf(tensor, np.full(tensor.shape[0], 0.5))
        assert np.allclose(k, k.T)
        assert np.linalg.eigvalsh(k + 1e-10 * np.eye(k.shape[0])).min() > -1e-8

    def test_kernel_decreases_with_distance(self):
        tensor = np.array([[[0.0, 0.1, 1.0], [0.1, 0.0, 0.5], [1.0, 0.5, 0.0]]])
        k = matern52(tensor, np.ones(1))
        assert k[0, 0] > k[0, 1] > k[0, 2]

    def test_shorter_lengthscale_decays_faster(self):
        tensor = np.array([[[0.0, 0.5], [0.5, 0.0]]])
        k_long = matern52(tensor, np.array([2.0]))
        k_short = matern52(tensor, np.array([0.2]))
        assert k_short[0, 1] < k_long[0, 1]

    def test_lengthscale_dimension_mismatch_raises(self):
        tensor = np.zeros((3, 2, 2))
        with pytest.raises(ValueError):
            scaled_distance(tensor, np.ones(2))


class TestPriors:
    def test_gamma_log_pdf_matches_scipy_shape(self):
        prior = GammaPrior(shape=2.0, rate=2.0)
        assert prior.log_pdf(prior.mean) > prior.log_pdf(100.0)
        assert prior.log_pdf(prior.mean) > prior.log_pdf(1e-6)

    def test_gamma_samples_positive(self, rng):
        prior = GammaPrior(2.0, 2.0)
        samples = prior.sample(rng, size=500)
        assert np.all(samples > 0)
        assert abs(samples.mean() - prior.mean) < 0.2

    def test_lognormal(self, rng):
        prior = LogNormalPrior(mu=0.0, sigma=0.5)
        samples = prior.sample(rng, size=200)
        assert np.all(samples > 0)
        assert np.isfinite(prior.log_pdf(1.0))

    def test_uniform_prior_support(self):
        prior = UniformPrior(low=0.1, high=10.0)
        assert np.isneginf(prior.log_pdf(0.01))
        assert np.isfinite(prior.log_pdf(1.0))

    @given(st.floats(min_value=0.01, max_value=50.0))
    @settings(max_examples=50, deadline=None)
    def test_gamma_log_pdf_finite_on_support(self, value):
        assert np.isfinite(GammaPrior(2.0, 2.0).log_pdf(value))
