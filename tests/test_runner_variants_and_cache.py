"""Additional coverage for the experiment runner: variants, caching, fidelity."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.baco import BacoTuner
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    MAIN_TUNERS,
    TUNER_VARIANTS,
    _cache_path,
    make_tuner,
    run_single,
    run_suite,
)
from repro.workloads import get_benchmark


class TestVariantConstruction:
    def test_baco_variants_set_expected_settings(self, small_space):
        ablations = {
            "BaCO (kendall)": ("permutation_metric", "kendall"),
            "BaCO (hamming)": ("permutation_metric", "hamming"),
            "BaCO (naive permutations)": ("permutation_metric", "naive"),
            "BaCO (no transformations)": ("use_transformations", False),
            "BaCO (no priors)": ("use_lengthscale_priors", False),
            "BaCO (no hidden constraints)": ("use_feasibility_model", False),
            "BaCO (no feasibility limit)": ("use_feasibility_threshold", False),
            "BaCO (RF surrogate)": ("surrogate", "rf"),
        }
        for name, (attribute, expected) in ablations.items():
            tuner = make_tuner(name, small_space, seed=0)
            assert isinstance(tuner, BacoTuner)
            assert getattr(tuner.settings, attribute) == expected

    def test_baco_minus_minus_variant(self, small_space):
        tuner = make_tuner("BaCO--", small_space, seed=0)
        assert isinstance(tuner, BacoTuner)
        assert not tuner.settings.use_local_search
        assert tuner.settings.permutation_metric == "naive"

    def test_fidelity_controls_effort(self, small_space):
        fast = make_tuner("BaCO", small_space, seed=0, fidelity="fast")
        paper = make_tuner("BaCO", small_space, seed=0, fidelity="paper")
        assert fast.settings.gp_prior_samples < paper.settings.gp_prior_samples
        assert fast.settings.n_random_samples < paper.settings.n_random_samples

    def test_variant_names_are_stable(self):
        # benchmarks and EXPERIMENTS.md refer to these names; keep them stable
        for name in MAIN_TUNERS:
            assert name in TUNER_VARIANTS
        for name in ("BaCO--", "Ytopt (GP)", "BaCO (RF surrogate)"):
            assert name in TUNER_VARIANTS


class TestCaching:
    def test_cache_path_depends_on_all_key_fields(self, tmp_path):
        config = ExperimentConfig(cache_dir=tmp_path)
        base = _cache_path(config, "bench", "BaCO", 30, 1)
        assert _cache_path(config, "bench", "BaCO", 30, 2) != base
        assert _cache_path(config, "bench", "BaCO", 40, 1) != base
        assert _cache_path(config, "bench", "Ytopt", 30, 1) != base
        assert _cache_path(config, "other", "BaCO", 30, 1) != base

    def test_corrupt_cache_entry_is_recomputed(self, tmp_path):
        config = ExperimentConfig(repetitions=1, cache_dir=tmp_path, use_cache=True)
        history = run_single("hpvm_bfs", "Uniform Sampling", budget=6, seed=3, config=config)
        path = next(tmp_path.glob("*.json"))
        path.write_text("{not valid json")
        recomputed = run_single("hpvm_bfs", "Uniform Sampling", budget=6, seed=3, config=config)
        assert [e.value for e in recomputed] == [e.value for e in history]
        assert json.loads(next(tmp_path.glob("*.json")).read_text())

    def test_malformed_cache_payload_is_recomputed(self, tmp_path):
        """Valid JSON with the wrong shape (TypeError / ValueError territory)
        takes the same unlink-and-recompute path as corrupt JSON."""
        config = ExperimentConfig(repetitions=1, cache_dir=tmp_path, use_cache=True)
        history = run_single("hpvm_bfs", "Uniform Sampling", budget=6, seed=3, config=config)
        path = next(tmp_path.glob("*.json"))
        malformed_payloads = [
            # evaluations is null -> TypeError when iterating
            json.dumps({"tuner": "Uniform Sampling", "evaluations": None}),
            # payload is a list, not a mapping -> TypeError on key lookup
            json.dumps([1, 2, 3]),
            # missing keys -> KeyError
            json.dumps({"benchmark": "hpvm_bfs"}),
        ]
        for payload in malformed_payloads:
            path.write_text(payload)
            recomputed = run_single(
                "hpvm_bfs", "Uniform Sampling", budget=6, seed=3, config=config
            )
            assert [e.value for e in recomputed] == [e.value for e in history]
            # the cache entry was rewritten with a well-formed payload
            assert json.loads(path.read_text())["evaluations"]

    def test_timing_sidecar_keeps_history_json_deterministic(self, tmp_path):
        """Wall-clock measurements live in a ``.timing`` sidecar so the history
        JSON is a pure function of (benchmark, tuner, budget, seed, fidelity)."""
        config = ExperimentConfig(repetitions=1, cache_dir=tmp_path, use_cache=True)
        first = run_single("hpvm_bfs", "Uniform Sampling", budget=6, seed=3, config=config)
        path = next(tmp_path.glob("*.json"))
        payload = json.loads(path.read_text())
        assert "tuner_seconds" not in payload
        assert "evaluation_seconds" not in payload
        # the sidecar restores the measured timings on cache reads
        reloaded = run_single("hpvm_bfs", "Uniform Sampling", budget=6, seed=3, config=config)
        assert reloaded.tuner_seconds == pytest.approx(first.tuner_seconds)
        assert reloaded.evaluation_seconds == pytest.approx(first.evaluation_seconds)

    def test_cache_disabled_writes_nothing(self, tmp_path):
        config = ExperimentConfig(repetitions=1, cache_dir=tmp_path, use_cache=False)
        run_single("hpvm_bfs", "CoT Sampling", budget=5, seed=0, config=config)
        assert not list(tmp_path.glob("*.json"))

    def test_run_suite_structure(self, tmp_path):
        config = ExperimentConfig(repetitions=1, budget_scale=0.5, cache_dir=tmp_path)
        results = run_suite(["hpvm_bfs"], ("Uniform Sampling",), config=config)
        assert set(results) == {"hpvm_bfs"}
        assert set(results["hpvm_bfs"]) == {"Uniform Sampling"}
        assert len(results["hpvm_bfs"]["Uniform Sampling"]) == 1

    def test_cached_histories_are_seed_deterministic(self, tmp_path):
        """Two fresh runs with the same seed produce identical traces."""
        config = ExperimentConfig(repetitions=1, cache_dir=tmp_path, use_cache=False)
        first = run_single("hpvm_bfs", "CoT Sampling", budget=8, seed=11, config=config)
        second = run_single("hpvm_bfs", "CoT Sampling", budget=8, seed=11, config=config)
        assert [e.value for e in first] == [e.value for e in second]


class TestBenchmarkIntegrationSmoke:
    def test_make_tuner_runs_on_real_benchmark(self):
        benchmark = get_benchmark("hpvm_bfs")
        tuner = make_tuner("BaCO", benchmark.space, seed=0, fidelity="fast")
        history = tuner.tune(benchmark.evaluator, budget=8, benchmark_name=benchmark.name)
        assert len(history) == 8
        assert history.tuner_name == "BaCO"
        assert history.best_value() < float("inf")
