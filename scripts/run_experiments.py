#!/usr/bin/env python
"""Pre-compute every tuning run needed by the benchmark harness.

The benchmark files under ``benchmarks/`` read tuning histories from the
on-disk cache (``results/cache``); running this script first makes the whole
harness fast and lets the expensive optimization runs be executed once, e.g.
on a beefier machine or overnight at paper scale:

    python scripts/run_experiments.py                 # CI-scale defaults
    REPRO_REPETITIONS=30 REPRO_BUDGET_SCALE=1.0 \
    REPRO_FIDELITY=paper REPRO_FULL_SUITE=1 \
    python scripts/run_experiments.py                 # paper-scale sweep
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.config import default_config
from repro.experiments.figures import (
    figure5_data,
    figure6_data,
    figure8_data,
    figure9_data,
    figure10_data,
)
from repro.experiments.reporting import format_checkpoint_study, format_figure5
from repro.experiments.tables import table10_rows


def main() -> int:
    config = default_config()
    print(f"experiment config: {config}")
    stages = [
        ("Fig. 5 / Tables 5-9 main sweep", lambda: format_figure5(figure5_data(config))),
        ("Fig. 6 representative kernels", lambda: str(len(figure6_data(config))) + " entries"),
        ("Fig. 8 BO comparison", lambda: format_checkpoint_study(figure8_data(config), "[Fig. 8]")),
        ("Fig. 9 ablation", lambda: format_checkpoint_study(figure9_data(config), "[Fig. 9]")),
        ("Fig. 10 hidden constraints", lambda: format_checkpoint_study(figure10_data(config), "[Fig. 10]")),
        ("Table 10 wall-clock", lambda: str(table10_rows(config))),
    ]
    for name, stage in stages:
        start = time.time()
        print(f"== {name} ...", flush=True)
        output = stage()
        print(output)
        print(f"== {name} done in {time.time() - start:.1f}s", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
