#!/usr/bin/env python
"""Pre-compute every tuning run needed by the benchmark harness.

The benchmark files under ``benchmarks/`` read tuning histories from the
on-disk cache (``results/cache``); running this script first makes the whole
harness fast and lets the expensive optimization runs be executed once, e.g.
on a beefier machine or overnight at paper scale.

Stage 0 enumerates every cell the figures and tables need — the main-tuner
sweep (Fig. 5/6/7, Tables 5-10), the SpMM ablation studies (Fig. 8/9) and the
hidden-constraint study (Fig. 10) — and executes the missing ones through the
parallel orchestrator (:mod:`repro.experiments.orchestrator`).  Set
``REPRO_WORKERS`` to fan the sweep out over worker processes; the subsequent
figure/table stages then only read from the cache:

    python scripts/run_experiments.py                 # CI-scale defaults
    REPRO_WORKERS=8 python scripts/run_experiments.py # 8-way parallel sweep
    REPRO_REPETITIONS=30 REPRO_BUDGET_SCALE=1.0 \
    REPRO_FIDELITY=paper REPRO_FULL_SUITE=1 \
    REPRO_WORKERS=16 \
    python scripts/run_experiments.py                 # paper-scale sweep

An interrupted sweep is safe to re-run: completed cells are skipped via the
cache and the checkpoint manifest (``results/cache/sweep_manifest.json``).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.config import default_config
from repro.experiments.figures import (
    FIGURE8_VARIANTS,
    FIGURE9_VARIANTS,
    FIGURE10_VARIANTS,
    SPMM_ABLATION_TENSORS,
    figure5_data,
    figure6_data,
    figure8_data,
    figure9_data,
    figure10_data,
    suite_benchmarks,
)
from repro.experiments.orchestrator import enumerate_cells, run_cells
from repro.experiments.reporting import (
    format_cell_event,
    format_checkpoint_study,
    format_figure5,
    format_sweep_summary,
)
from repro.experiments.runner import MAIN_TUNERS
from repro.experiments.tables import table10_rows

def paper_grid(config):
    """Every cell the figure/table stages will read from the cache."""
    suite = [name for names in suite_benchmarks(config).values() for name in names]
    cells = enumerate_cells(suite, MAIN_TUNERS, config)
    spmm = [f"taco_spmm_{tensor}" for tensor in SPMM_ABLATION_TENSORS]
    spmm_variants = tuple(dict.fromkeys(FIGURE8_VARIANTS + FIGURE9_VARIANTS))
    cells += enumerate_cells(spmm, spmm_variants, config)
    cells += enumerate_cells(["rise_mm_gpu", "rise_scal_gpu"], FIGURE10_VARIANTS, config)
    return cells


def main() -> int:
    config = default_config()
    print(f"experiment config: {config}")

    cells = paper_grid(config)
    print(f"== Stage 0: orchestrated sweep over {len(cells)} cells "
          f"({config.workers} worker(s)) ...", flush=True)
    result = run_cells(
        cells, config, on_event=lambda event: print(format_cell_event(event), flush=True)
    )
    print(format_sweep_summary(result.counts, result.elapsed, config.workers))
    for outcome in result.failures:
        print(f"  failed: {outcome.cell.key}: {outcome.error}", file=sys.stderr)

    stages = [
        ("Fig. 5 / Tables 5-9 main sweep", lambda: format_figure5(figure5_data(config))),
        ("Fig. 6 representative kernels", lambda: str(len(figure6_data(config))) + " entries"),
        ("Fig. 8 BO comparison", lambda: format_checkpoint_study(figure8_data(config), "[Fig. 8]")),
        ("Fig. 9 ablation", lambda: format_checkpoint_study(figure9_data(config), "[Fig. 9]")),
        ("Fig. 10 hidden constraints", lambda: format_checkpoint_study(figure10_data(config), "[Fig. 10]")),
        ("Table 10 wall-clock", lambda: str(table10_rows(config))),
    ]
    for name, stage in stages:
        start = time.time()
        print(f"== {name} ...", flush=True)
        output = stage()
        print(output)
        print(f"== {name} done in {time.time() - start:.1f}s", flush=True)
    return 1 if result.failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
