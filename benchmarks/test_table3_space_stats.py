"""Table 3: benchmark search-space statistics (dimensions, types, constraints, sizes)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.reporting import format_table
from repro.experiments.tables import table3_rows
from repro.workloads import benchmark_names


def test_table3_space_statistics(benchmark, emit):
    """Regenerate Table 3 for all 25 benchmark instances."""

    def build():
        return table3_rows(benchmark_names())

    headers, rows = run_once(benchmark, build)
    emit(format_table(headers, rows, title="[Table 3] Benchmark search spaces"))
    assert len(rows) == 25
    # spot-check a few rows against the paper's qualitative characteristics
    by_name = {row[0]: row for row in rows}
    assert by_name["rise_mm_gpu"][1] == 10
    assert by_name["hpvm_audio"][1] == 15
    assert by_name["taco_ttv_facebook"][3] == "K/H"
