"""Table 5: how many repetitions (out of N) reach expert-level performance."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.reporting import format_table
from repro.experiments.tables import table5_rows


def test_table5_runs_reaching_expert(benchmark, emit, experiment_config):
    headers, rows = run_once(benchmark, lambda: table5_rows(experiment_config))
    emit(format_table(headers, rows, title="[Table 5] Repetitions reaching expert-level performance"))

    totals = rows[-1]
    assert totals[0] == "TOTAL"
    by_tuner = dict(zip(headers[1:-1], totals[1:-1]))
    # BaCO reaches expert level in at least as many runs as any baseline
    assert by_tuner["BaCO"] >= max(v for k, v in by_tuner.items() if k != "BaCO")
    assert by_tuner["BaCO"] > 0
