"""Fig. 10: impact of the hidden-constraint (feasibility) model and the ε_f limit.

Benchmarks: RISE & ELEVATE MM_GPU and Scal_GPU, whose hidden constraints come
from GPU shared-memory / register limits.  The paper reports that modelling
hidden constraints has a clearly positive impact (especially later in the
search) and that the minimum-feasibility limit stabilizes the interaction
between the feasibility predictor and the surrogate.
"""

from __future__ import annotations

import math

from conftest import run_once

from repro.experiments.figures import figure10_data
from repro.experiments.reporting import format_checkpoint_study


def test_fig10_hidden_constraint_model(benchmark, emit, experiment_config):
    data = run_once(benchmark, lambda: figure10_data(experiment_config))
    emit(
        format_checkpoint_study(
            data, "[Fig. 10] Hidden constraints (geomean rel. to expert, MM_GPU + Scal_GPU)"
        )
    )

    assert set(data) == {
        "BaCO",
        "BaCO (no hidden constraints)",
        "BaCO (no feasibility limit)",
    }
    for variant, values in data.items():
        for level, value in values.items():
            assert math.isfinite(value), (variant, level)

    # Shape of the paper's claim: the full hidden-constraint machinery is at
    # least as good as running without the feasibility model at full budget.
    full = {variant: values["full"] for variant, values in data.items()}
    assert full["BaCO"] >= full["BaCO (no hidden constraints)"] * 0.9
