"""Fig. 9: ablation of BaCO's design choices on the TACO SpMM kernel.

Ablated features: the permutation semimetric (Spearman vs Kendall vs Hamming
vs naive categorical), the log transformations of parameters / objective, and
the lengthscale priors.  The paper finds that no single choice dominates but
that the default (Spearman + transformations + priors) is the strongest
overall, with transformations mattering most.
"""

from __future__ import annotations

import math

from conftest import run_once

from repro.experiments.figures import figure9_data
from repro.experiments.reporting import format_checkpoint_study

_VARIANTS = {
    "BaCO",
    "BaCO (kendall)",
    "BaCO (hamming)",
    "BaCO (naive permutations)",
    "BaCO (no transformations)",
    "BaCO (no priors)",
}


def test_fig9_design_choice_ablation(benchmark, emit, experiment_config):
    data = run_once(benchmark, lambda: figure9_data(experiment_config))
    emit(format_checkpoint_study(data, "[Fig. 9] Ablation (geomean rel. to expert, SpMM)"))

    assert set(data) == _VARIANTS
    for variant, values in data.items():
        for level, value in values.items():
            assert math.isfinite(value) and value > 0, (variant, level)

    full = {variant: values["full"] for variant, values in data.items()}
    best = max(full.values())
    # default BaCO is at (or very near) the top of the ablation at full budget
    assert full["BaCO"] >= best * 0.9
    # removing the log transformations should not help
    assert full["BaCO"] >= full["BaCO (no transformations)"] * 0.9
