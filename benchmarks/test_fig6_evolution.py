"""Fig. 6: evolution of the average best runtime, one representative kernel per framework.

The paper's annotations report that BaCO reaches the baselines' final
performance using roughly 3-5x fewer evaluations; the assertion here only
requires BaCO to be no slower than the baselines (factor >= 1) wherever the
factor is defined, preserving the claim's direction.
"""

from __future__ import annotations

import math

from conftest import run_once

from repro.experiments.figures import figure6_data
from repro.experiments.reporting import format_evolution, format_table


def test_fig6_representative_evolution(benchmark, emit, experiment_config):
    entries = run_once(benchmark, lambda: figure6_data(experiment_config))
    emit(format_evolution(entries))

    headers = ["Benchmark", "baseline", "BaCO speedup (evals)"]
    rows = []
    for entry in entries:
        for baseline, factor in entry["speedup_vs"].items():
            rows.append([entry["benchmark"], baseline, factor])
    emit(format_table(headers, rows, title="[Fig. 6] How much faster BaCO matches each baseline"))

    assert len(entries) == 3
    for entry in entries:
        curves = entry["curves"]
        assert "BaCO" in curves
        # best-so-far curves are monotonically non-increasing
        for curve in curves.values():
            assert all(curve[i + 1] <= curve[i] + 1e-9 for i in range(len(curve) - 1))
        # BaCO's final best is at least as good as every baseline's
        final_baco = curves["BaCO"][-1]
        for tuner, curve in curves.items():
            if tuner != "BaCO":
                assert final_baco <= curve[-1] * 1.1
        for factor in entry["speedup_vs"].values():
            if math.isfinite(factor):
                assert factor >= 1.0
