"""Fig. 8: comparison of BO implementations on the TACO SpMM kernel.

Variants: full BaCO, BaCO-- (no transformations, priors, local search,
permutation structure, or advanced GP fitting), Ytopt with a GP surrogate,
and BaCO with a random-forest surrogate.  The paper reports BaCO ahead of
BaCO-- (about a 20% gap), both ahead of Ytopt (GP), and the GP surrogate
ahead of the RF surrogate at small budgets.
"""

from __future__ import annotations

import math

from conftest import run_once

from repro.experiments.figures import figure8_data
from repro.experiments.reporting import format_checkpoint_study


def test_fig8_bo_implementation_comparison(benchmark, emit, experiment_config):
    data = run_once(benchmark, lambda: figure8_data(experiment_config))
    emit(format_checkpoint_study(data, "[Fig. 8] BO implementations (geomean rel. to expert, SpMM)"))

    assert set(data) == {"BaCO", "BaCO--", "Ytopt (GP)", "BaCO (RF surrogate)"}
    for variant, values in data.items():
        for level, value in values.items():
            assert math.isfinite(value), (variant, level)

    # Shape of the paper's result: full BaCO is the best variant at the full
    # checkpoint, and it is at least as good as the stripped-down BaCO--.
    full = {variant: values["full"] for variant, values in data.items()}
    assert full["BaCO"] >= full["BaCO--"] * 0.95
    assert full["BaCO"] >= full["Ytopt (GP)"] * 0.95
    assert full["BaCO"] >= full["BaCO (RF surrogate)"] * 0.95
