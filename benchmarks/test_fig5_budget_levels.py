"""Fig. 5: average performance relative to expert at tiny / small / full budgets.

Paper claims being reproduced (shape, not absolute numbers):

* BaCO delivers the highest average performance at every budget level for all
  three compiler frameworks;
* with the small budget BaCO reaches (or exceeds) expert-level performance on
  TACO and RISE & ELEVATE;
* the baselines remain clearly below expert level even at the full budget.
"""

from __future__ import annotations

import math

from conftest import run_once

from repro.experiments.figures import figure5_data
from repro.experiments.reporting import format_figure5


def test_fig5_average_performance_by_budget(benchmark, emit, experiment_config):
    data = run_once(benchmark, lambda: figure5_data(experiment_config))
    emit(format_figure5(data))

    for framework, levels in data.items():
        for level in ("tiny", "small", "full"):
            assert "BaCO" in levels[level]
        # BaCO at full budget is at least as good as every baseline at full budget
        full = levels["full"]
        baco = full["BaCO"]
        assert math.isfinite(baco)
        for tuner, value in full.items():
            if tuner in ("BaCO", "Default"):
                continue
            assert baco >= value * 0.9, (framework, tuner, baco, value)

    # BaCO reaches roughly expert level with the full (scaled) budget on the
    # frameworks that define an expert configuration.
    assert data["TACO"]["full"]["BaCO"] > 0.85
    assert data["RISE & ELEVATE"]["full"]["BaCO"] > 0.85
