"""Sec. 5.3 (Chain-of-Trees): efficiency of the CoT on the MM_GPU search space.

The paper reports that on MM_GPU the CoT reduced the time spent evaluating
constraints during local search by ~6x and random sampling by ~80x.  This
benchmark measures the analogous micro-operations on the reproduction's
MM_GPU space:

* feasible random sampling through the CoT vs. rejection sampling with
  explicit constraint evaluation,
* membership tests through the CoT vs. explicit constraint evaluation.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import run_once

from repro.experiments.reporting import format_table
from repro.space.space import SearchSpace
from repro.workloads import get_benchmark


def _rejection_sample(space: SearchSpace, rng: np.random.Generator, n: int) -> list[dict]:
    samples = []
    while len(samples) < n:
        config = {p.name: p.sample(rng) for p in space.parameters}
        if all(c.evaluate(config) for c in space.constraints):
            samples.append(config)
    return samples


def test_cot_sampling_and_membership_efficiency(benchmark, emit):
    mm_gpu = get_benchmark("rise_mm_gpu")
    space_with_cot = mm_gpu.space
    space_without_cot = SearchSpace(
        space_with_cot.parameters, space_with_cot.constraints, build_chain_of_trees=False
    )
    rng = np.random.default_rng(0)
    n = 400

    def measured():
        results = {}
        start = time.perf_counter()
        cot_samples = space_with_cot.sample(np.random.default_rng(1), n)
        results["cot_sampling_s"] = time.perf_counter() - start

        start = time.perf_counter()
        rejection_samples = _rejection_sample(space_without_cot, np.random.default_rng(1), n)
        results["rejection_sampling_s"] = time.perf_counter() - start

        start = time.perf_counter()
        for config in cot_samples:
            space_with_cot.is_feasible(config)
        results["cot_membership_s"] = time.perf_counter() - start

        start = time.perf_counter()
        for config in cot_samples:
            space_without_cot.is_feasible(config)
        results["explicit_membership_s"] = time.perf_counter() - start
        results["n"] = n
        assert len(rejection_samples) == n
        return results

    results = run_once(benchmark, measured)
    sampling_ratio = results["rejection_sampling_s"] / max(results["cot_sampling_s"], 1e-9)
    membership_ratio = results["explicit_membership_s"] / max(results["cot_membership_s"], 1e-9)
    emit(
        format_table(
            ["operation", "CoT (s)", "explicit (s)", "ratio"],
            [
                ["feasible sampling", results["cot_sampling_s"], results["rejection_sampling_s"], f"{sampling_ratio:.1f}x"],
                ["membership test", results["cot_membership_s"], results["explicit_membership_s"], f"{membership_ratio:.1f}x"],
            ],
            title=f"[Sec. 5.3] Chain-of-Trees efficiency on MM_GPU ({results['n']} configurations)",
        )
    )

    # every CoT sample is feasible by construction, so all samples were usable
    assert results["cot_sampling_s"] > 0
    assert results["rejection_sampling_s"] > 0
