"""Tables 6, 7, 8: performance relative to the expert at tiny / small / full budget.

The paper's overall means (last row of each table): BaCO 0.76 / 1.22 / 1.41,
with every baseline clearly behind at every budget.  The reproduction asserts
the ordering and the increase of BaCO's score with larger budgets.
"""

from __future__ import annotations

import math

from conftest import run_once

from repro.experiments.reporting import format_table
from repro.experiments.tables import relative_performance_rows

_TITLES = {
    "tiny": "[Table 6] Relative performance vs expert — tiny budget",
    "small": "[Table 7] Relative performance vs expert — small budget",
    "full": "[Table 8] Relative performance vs expert — full budget",
}


def _overall_means(headers, rows):
    summary = rows[-1]
    assert summary[0].startswith("==")
    return dict(zip(headers[1:], summary[1:]))


def test_tables_6_7_8_relative_performance(benchmark, emit, experiment_config):
    def build():
        return {level: relative_performance_rows(level, experiment_config) for level in _TITLES}

    tables = run_once(benchmark, build)
    overall = {}
    for level, (headers, rows) in tables.items():
        emit(format_table(headers, rows, title=_TITLES[level]))
        overall[level] = _overall_means(headers, rows)

    # BaCO leads the overall mean at every budget level
    for level, means in overall.items():
        baco = means["BaCO"]
        assert math.isfinite(baco)
        for tuner, value in means.items():
            if tuner != "BaCO" and not (isinstance(value, float) and math.isnan(value)):
                assert baco >= value * 0.95, (level, tuner)

    # BaCO improves as the budget grows, and approaches expert level at full budget
    assert overall["full"]["BaCO"] >= overall["tiny"]["BaCO"]
    assert overall["full"]["BaCO"] > 0.85
