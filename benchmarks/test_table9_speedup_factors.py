"""Table 9: how much faster BaCO reaches the other tuners' best performance.

The paper reports overall factors of roughly 2.9x (vs ATF/OpenTuner) to 3.9x
(vs Ytopt / random sampling); the reproduction asserts that the geometric-mean
factor against every baseline is comfortably above 1x (BaCO needs fewer
evaluations) and prints the full per-benchmark table.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.reporting import format_table
from repro.experiments.tables import table9_rows


def test_table9_speedup_factors(benchmark, emit, experiment_config):
    headers, rows = run_once(benchmark, lambda: table9_rows(experiment_config))
    emit(format_table(headers, rows, title="[Table 9] How much faster BaCO reaches the baselines' best"))

    summary = rows[-1]
    assert summary[0].startswith("==")
    factors = {}
    for baseline, cell in zip(headers[1:], summary[1:]):
        if isinstance(cell, str) and cell.endswith("x"):
            factors[baseline] = float(cell[:-1])
    assert factors, "no baseline produced a finite speedup factor"
    for baseline, factor in factors.items():
        assert factor >= 1.0, (baseline, factor)
    # against at least one baseline the factor is substantial (paper: 2.9x-3.9x)
    assert max(factors.values()) >= 1.5
