"""Table 10: wall-clock time of the autotuners on the TACO SpMM / SDDMM kernels.

With a simulated compiler toolchain the black-box evaluations are essentially
free, so this measures the *tuner-internal* cost.  The paper's qualitative
finding holds: heuristic search (ATF/OpenTuner) and random sampling are much
cheaper per run than the model-based methods (BaCO, Ytopt), and BaCO's
overhead stays within the same order of magnitude as Ytopt's.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.reporting import format_table
from repro.experiments.tables import table10_rows


def test_table10_autotuner_wallclock(benchmark, emit, experiment_config):
    headers, rows = run_once(benchmark, lambda: table10_rows(experiment_config))
    emit(format_table(headers, rows, title="[Table 10] Autotuner wall-clock seconds per run"))

    assert len(rows) == 2
    by_kernel = {row[0]: dict(zip(headers[1:], row[1:])) for row in rows}
    for kernel, times in by_kernel.items():
        assert all(t >= 0.0 for t in times.values()), kernel
        # model-based tuners are more expensive than pure random sampling
        assert times["BaCO"] >= times["Uniform Sampling"]
