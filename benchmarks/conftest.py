"""Shared fixtures for the benchmark harness.

Every file in this directory regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index).  The underlying tuning runs are
cached on disk under ``results/cache`` so the full harness can be re-run
cheaply; delete that directory (or set ``REPRO_USE_CACHE=0``) to force fresh
runs.  Scale knobs are documented in :mod:`repro.experiments.config`.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.config import default_config  # noqa: E402


@pytest.fixture(scope="session")
def experiment_config():
    """The experiment configuration shared by all benchmark files."""
    return default_config()


@pytest.fixture(scope="session")
def emit():
    """Print a rendered table/figure and append it to ``results/paper_artifacts.txt``.

    pytest captures stdout by default, so the artifact file is the reliable
    place to inspect the regenerated tables and figure series after a
    benchmark run (or pass ``-s`` to see them live).
    """
    artifact_path = Path(__file__).resolve().parents[1] / "results" / "paper_artifacts.txt"
    artifact_path.parent.mkdir(parents=True, exist_ok=True)

    def _emit(text: str) -> None:
        print()
        print(text)
        print()
        with artifact_path.open("a") as handle:
            handle.write(text + "\n\n")

    return _emit


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
