"""Fig. 7 + Fig. 11: evolution of the average best runtime for every benchmark.

The paper's headline for these figures: BaCO provides the best final schedule
on nearly all benchmarks (22 of 24) and is frequently the only method that
reaches expert level within the budget.  The reproduction asserts the
majority version of that claim on the configured benchmark suite.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figures import figure7_data
from repro.experiments.reporting import format_evolution


def test_fig7_fig11_evolution_all_benchmarks(benchmark, emit, experiment_config):
    entries = run_once(benchmark, lambda: figure7_data(experiment_config))
    emit(format_evolution(entries))

    assert len(entries) >= 10
    wins = 0
    for entry in entries:
        curves = entry["curves"]
        final = {tuner: curve[-1] for tuner, curve in curves.items()}
        best_final = min(final.values())
        if final["BaCO"] <= best_final * 1.02:
            wins += 1
    # BaCO provides the best (or tied-best) final schedule on most benchmarks
    assert wins >= 0.6 * len(entries), f"BaCO won only {wins}/{len(entries)}"
