"""Threaded TCP framing for the multi-session tuning service.

:class:`TuningServer` lifts the JSON-lines protocol of
:class:`repro.service.SessionRegistry` onto a ``ThreadingTCPServer``: each
client connection gets its own handler thread, reads one request per line,
and receives one strict-JSON response per line.  All connections share one
registry, so many evaluation harnesses can drive distinct *named* sessions
concurrently — per-session locks serialize requests that target the same
session while requests for different sessions proceed in parallel.

Protocol semantics (ops, session routing, autosave, wire encoding) live
entirely in the registry; this module only does framing and lifecycle:

* a ``shutdown`` request autosaves every dirty session, answers the client,
  and then stops the whole server (every connection is closed);
* a client disconnect (EOF) ends only that connection — its sessions stay
  live in the registry for the next client, which is what makes kill/resume
  workflows work: reconnect and keep asking;
* an oversized frame (> ``MAX_LINE_BYTES``) gets one error response and the
  connection is dropped, so a misbehaving client cannot buffer-bomb the
  server.

Typical in-process use (tests, examples)::

    registry = SessionRegistry(sessions_dir="runs/", max_sessions=16)
    with running_server(registry) as server:
        client = TuningClient(port=server.port)
        ...

and from the command line::

    python -m repro serve --tcp 7730 --sessions-dir runs/ --max-sessions 16
"""

from __future__ import annotations

import json
import socketserver
import threading
from contextlib import contextmanager
from typing import Iterator

from .service import MAX_LINE_BYTES, SessionRegistry

__all__ = ["TuningRequestHandler", "TuningServer", "running_server"]


class TuningRequestHandler(socketserver.StreamRequestHandler):
    """One connection: JSON-lines request/response until EOF or shutdown."""

    def handle(self) -> None:  # noqa: D102 - socketserver hook
        registry: SessionRegistry = self.server.registry  # type: ignore[attr-defined]
        while registry.running:
            try:
                raw = self.rfile.readline(MAX_LINE_BYTES + 2)
            except (ConnectionError, OSError):
                break
            if not raw:
                break  # client closed the connection
            oversized = len(raw) > MAX_LINE_BYTES and not raw.endswith(b"\n")
            line = raw.decode("utf-8", errors="replace").strip()
            if not line and not oversized:
                continue
            if oversized:
                response = json.dumps(
                    {
                        "ok": False,
                        "error": f"bad request: request line exceeds "
                                 f"{MAX_LINE_BYTES} bytes",
                    },
                    allow_nan=False,
                )
            else:
                response = registry.handle_line(line)
            try:
                self.wfile.write(response.encode("utf-8") + b"\n")
                self.wfile.flush()
            except (ConnectionError, OSError):
                break
            if oversized:
                break  # the rest of the frame is unframed garbage; drop them
            if not registry.running:
                self.server.initiate_shutdown()  # type: ignore[attr-defined]
                break


class TuningServer(socketserver.ThreadingTCPServer):
    """A ``ThreadingTCPServer`` bound to one :class:`SessionRegistry`.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`).
    Handler threads are daemonic, so a hard interpreter exit never hangs on
    a stuck client; durable state lives in the registry's autosave files.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        registry: SessionRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        super().__init__((host, port), TuningRequestHandler)

    @property
    def port(self) -> int:
        return self.server_address[1]

    def initiate_shutdown(self) -> None:
        """Stop the server from a handler thread without deadlocking.

        ``shutdown()`` blocks until ``serve_forever`` exits, so it must not
        run on the serve loop's own thread; a one-shot daemon thread is safe
        from anywhere.
        """
        threading.Thread(target=self.shutdown, daemon=True).start()

    def serve_until_shutdown(self, poll_interval: float = 0.2) -> None:
        """``serve_forever`` plus autosave of every session on the way out."""
        try:
            self.serve_forever(poll_interval=poll_interval)
        finally:
            self.registry.running = False
            self.registry.autosave_all()
            self.server_close()


@contextmanager
def running_server(
    registry: SessionRegistry,
    host: str = "127.0.0.1",
    port: int = 0,
) -> Iterator[TuningServer]:
    """A server running on a background thread, stopped and autosaved on exit."""
    server = TuningServer(registry, host=host, port=port)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        registry.autosave_all()
