"""Long-running tuning service: ask/tell over JSON lines.

``python -m repro serve`` wraps a :class:`repro.core.session.TuningSession`
in a line-oriented JSON protocol so a tuning run can outlive any single
client process: the service proposes configurations, an *external* system
(a real compiler toolchain, a build farm, a measurement harness) evaluates
them at its own pace, and results flow back as ``tell`` requests.  Combined
with ``snapshot`` / ``restore`` the service survives crashes and restarts
without losing — or changing — a single evaluation.

One request per line in, one JSON response per line out.  Requests carry an
``op`` field; any other fields are op-specific.  Responses always carry
``ok`` (and ``error`` when ``ok`` is false — the service keeps serving after
errors).

=========  ==============================================================
op         meaning
=========  ==============================================================
start      create a session: ``benchmark``, ``tuner``, ``budget``,
           ``seed`` (optional ``fidelity``)
ask        propose configurations: optional ``n`` (default 1)
tell       report a result: ``id``, ``value``, optional ``feasible``
           (default true) and ``elapsed`` seconds
status     session progress: evaluations, best value, pending ids
snapshot   checkpoint: optional ``path`` writes a file, otherwise the
           payload is returned inline
restore    resume: ``path`` to a checkpoint file, or inline ``payload``
shutdown   stop serving (the response is still written)
=========  ==============================================================

Example exchange::

    {"op": "start", "benchmark": "hpvm_bfs", "tuner": "BaCO", "budget": 20, "seed": 0}
    {"op": "ask", "n": 2}
    {"op": "tell", "id": 0, "value": 3.4}
    {"op": "tell", "id": 1, "value": 7.1, "feasible": true}
    {"op": "snapshot", "path": "results/session.ckpt.json"}
    {"op": "shutdown"}

The protocol is deliberately a stub of a network service: the framing
(stdin/stdout) is trivial to lift onto a socket or HTTP layer, while all the
hard state problems (determinism, checkpointing, in-flight suggestions) are
solved by the session underneath.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Callable, IO, Mapping

from .core.result import ObjectiveResult
from .core.session import TuningSession

__all__ = ["SessionService", "serve"]


class SessionService:
    """Stateful dispatcher behind the JSON-lines tuning service."""

    def __init__(self) -> None:
        self._session: TuningSession | None = None
        self._handlers: dict[str, Callable[[Mapping[str, Any]], dict[str, Any]]] = {
            "start": self._op_start,
            "ask": self._op_ask,
            "tell": self._op_tell,
            "status": self._op_status,
            "snapshot": self._op_snapshot,
            "restore": self._op_restore,
            "shutdown": self._op_shutdown,
        }
        self.running = True

    # ------------------------------------------------------------------
    def handle_line(self, line: str) -> str:
        """One request line in, one response line out (never raises)."""
        try:
            request = json.loads(line)
            if not isinstance(request, Mapping):
                raise ValueError("request must be a JSON object")
        except (json.JSONDecodeError, ValueError) as exc:
            return json.dumps({"ok": False, "error": f"bad request: {exc}"})
        return json.dumps(self.handle(request))

    def handle(self, request: Mapping[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        handler = self._handlers.get(op)
        if handler is None:
            return {
                "ok": False,
                "error": f"unknown op {op!r}; available: {sorted(self._handlers)}",
            }
        try:
            return {"ok": True, "op": op, **handler(request)}
        except Exception as exc:  # noqa: BLE001 - the service must keep serving
            return {"ok": False, "op": op, "error": f"{type(exc).__name__}: {exc}"}

    # ------------------------------------------------------------------
    def _require_session(self) -> TuningSession:
        if self._session is None:
            raise RuntimeError("no active session — send a start or restore request")
        return self._session

    def _op_start(self, request: Mapping[str, Any]) -> dict[str, Any]:
        from .experiments.runner import make_session

        session, benchmark = make_session(
            request["benchmark"],
            request.get("tuner", "BaCO"),
            int(request["budget"]),
            int(request.get("seed", 0)),
            fidelity=request.get("fidelity", "fast"),
        )
        self._session = session
        return {
            "benchmark": benchmark.name,
            "tuner": session.tuner.name,
            "budget": session.budget,
            "seed": session.tuner.seed,
            "dimension": benchmark.space.dimension,
        }

    def _op_ask(self, request: Mapping[str, Any]) -> dict[str, Any]:
        session = self._require_session()
        suggestions = session.ask(int(request.get("n", 1)))
        return {
            "suggestions": [s.to_dict() for s in suggestions],
            "done": session.done,
        }

    def _op_tell(self, request: Mapping[str, Any]) -> dict[str, Any]:
        session = self._require_session()
        feasible = bool(request.get("feasible", True))
        if "value" not in request and feasible:
            raise ValueError("tell needs a 'value' (or 'feasible': false)")
        value = float(request.get("value", math.inf))
        evaluation = session.tell(
            int(request["id"]),
            ObjectiveResult(value=value, feasible=feasible),
            elapsed=float(request.get("elapsed", 0.0)),
        )
        return {
            "index": evaluation.index,
            "best_value": session.history.best_value(),
            "done": session.done,
        }

    def _op_status(self, request: Mapping[str, Any]) -> dict[str, Any]:
        session = self._require_session()
        best = session.history.best_value()
        return {
            "benchmark": session.benchmark_name,
            "tuner": session.tuner.name,
            "budget": session.budget,
            "evaluations": len(session.history),
            "remaining": session.remaining,
            "pending_ids": [s.id for s in session.pending],
            "best_value": None if math.isinf(best) else best,
            "done": session.done,
        }

    def _op_snapshot(self, request: Mapping[str, Any]) -> dict[str, Any]:
        session = self._require_session()
        path = request.get("path")
        if path is None:
            return {"snapshot": session.snapshot()}
        from .experiments.runner import save_session

        written = save_session(session, Path(path))
        return {"path": str(written)}

    def _op_restore(self, request: Mapping[str, Any]) -> dict[str, Any]:
        if "path" in request:
            from .experiments.runner import load_session

            session, benchmark = load_session(request["path"])
        elif "payload" in request:
            from .experiments.runner import make_tuner
            from .workloads.registry import get_benchmark

            payload = request["payload"]
            benchmark = get_benchmark(payload["session"]["benchmark_name"])
            tuner = make_tuner(
                payload["tuner"]["name"],
                benchmark.space,
                payload["tuner"]["seed"],
                fidelity=payload.get("meta", {}).get("fidelity", "fast"),
            )
            session = TuningSession.restore(payload, tuner)
        else:
            raise ValueError("restore needs a 'path' or an inline 'payload'")
        self._session = session
        return {
            "benchmark": benchmark.name,
            "tuner": session.tuner.name,
            "evaluations": len(session.history),
            "remaining": session.remaining,
            "pending_ids": [s.id for s in session.pending],
        }

    def _op_shutdown(self, request: Mapping[str, Any]) -> dict[str, Any]:
        self.running = False
        return {"stopping": True}


def serve(stdin: IO[str], stdout: IO[str]) -> int:
    """Run the JSON-lines loop until shutdown or EOF.  Returns an exit code."""
    service = SessionService()
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        stdout.write(service.handle_line(line) + "\n")
        stdout.flush()
        if not service.running:
            break
    return 0
