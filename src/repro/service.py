"""Multi-session tuning service: ask/tell over JSON lines.

:class:`SessionRegistry` dispatches a line-oriented JSON protocol over many
*named* :class:`repro.core.session.TuningSession` instances, so one
long-running server can drive concurrent tuning runs whose evaluations are
performed by slow external systems (a real compiler toolchain, a build farm,
a measurement harness).  Combined with ``snapshot`` / ``restore`` and the
``--sessions-dir`` autosave directory the service survives crashes and
restarts without losing — or changing — a single evaluation.

One request per line in, one JSON response per line out.  Requests carry an
``op`` field and an optional ``session`` name (default ``"default"``); any
other fields are op-specific.  Responses always carry ``ok`` (and ``error``
when ``ok`` is false — the service keeps serving after errors) and are
**strict JSON**: non-finite floats never appear as bare ``Infinity``/``NaN``
tokens.  Inside snapshot payloads they are wire-encoded as
``{"$float": "inf"}`` markers (see :func:`wire_encode`); scalar response
fields such as ``best_value`` are ``null`` until a feasible result exists.

=========  ==============================================================
op         meaning
=========  ==============================================================
start      create a session: ``benchmark``, ``budget``, optional
           ``tuner``, ``seed``, ``fidelity``, ``session``.  Refuses to
           clobber an unfinished session of the same name unless
           ``"force": true``.
ask        propose configurations: optional ``n`` (default 1)
tell       report a result: ``id``, ``value``, optional ``feasible``
           (default true) and ``elapsed`` seconds.  Feasible results
           must carry a finite ``value``.
status     session progress: evaluations, best value, pending ids
snapshot   checkpoint: optional ``path`` writes a file, otherwise the
           (wire-encoded) payload is returned inline
restore    resume: exactly one of ``path`` (a checkpoint file) or an
           inline ``payload``
close      drop the session from the registry (autosaved first when a
           sessions directory is configured)
sessions   list active and autosaved sessions
shutdown   stop serving; autosaves every dirty session first (the
           response is still written)
=========  ==============================================================

Example exchange::

    {"op": "start", "session": "gpu", "benchmark": "hpvm_bfs", "tuner": "BaCO", "budget": 20, "seed": 0}
    {"op": "ask", "session": "gpu", "n": 2}
    {"op": "tell", "session": "gpu", "id": 0, "value": 3.4}
    {"op": "tell", "session": "gpu", "id": 1, "value": 7.1, "feasible": true}
    {"op": "snapshot", "session": "gpu", "path": "results/session.ckpt.json"}
    {"op": "shutdown"}

The registry holds at most ``max_sessions`` sessions in memory; the least
recently used one is evicted when a new session would exceed the cap,
atomically autosaved to ``sessions_dir`` (``save_session``'s temp-file +
rename), and transparently reloaded on the next request that names it.
Without a sessions directory the registry refuses to evict (evicting would
silently lose a run) and reports itself full instead.

Framing is pluggable: :func:`serve` runs the degenerate single-connection
case on stdin/stdout, and :class:`repro.server.TuningServer` lifts the same
registry onto a threaded TCP socket with one lock per session, so requests
for different sessions proceed concurrently while requests for the same
session serialize.
"""

from __future__ import annotations

import json
import math
import re
import threading
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, IO, Iterator, Mapping

from .core.result import ObjectiveResult
from .core.session import TuningSession

__all__ = [
    "DEFAULT_SESSION",
    "MAX_LINE_BYTES",
    "SessionRegistry",
    "SessionService",
    "json_safe",
    "serve",
    "wire_decode",
    "wire_encode",
]

DEFAULT_SESSION = "default"
#: refuse absurd frames before json.loads ever sees them
MAX_LINE_BYTES = 1 << 20
#: autosave file name per session inside ``sessions_dir``
_AUTOSAVE_SUFFIX = ".ckpt.json"
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,99}$")


# ---------------------------------------------------------------------------
# strict-JSON helpers
# ---------------------------------------------------------------------------

def json_safe(value: Any) -> Any:
    """Scalar response fields: non-finite floats become ``None``.

    JSON has no ``Infinity``/``NaN`` tokens; ``history.best_value()`` is
    ``inf`` until the first feasible result, which clients see as ``null``.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def wire_encode(obj: Any) -> Any:
    """Recursively replace non-finite floats with ``{"$float": repr}`` markers.

    Snapshot payloads legitimately contain ``inf`` (infeasible evaluations
    record ``value: inf``); this keeps responses strict JSON while letting
    ``restore`` round-trip the exact floats via :func:`wire_decode`.
    """
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else {"$float": repr(obj)}
    if isinstance(obj, Mapping):
        return {str(k): wire_encode(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [wire_encode(v) for v in obj]
    return obj


def wire_decode(obj: Any) -> Any:
    """Inverse of :func:`wire_encode`."""
    if isinstance(obj, Mapping):
        if set(obj) == {"$float"}:
            return float(obj["$float"])
        return {k: wire_decode(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [wire_decode(v) for v in obj]
    return obj


def _reject_constant(token: str) -> float:
    raise ValueError(f"non-finite number {token} is not valid strict JSON")


def _short(value: Any, limit: int = 120) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


class _ManagedSession:
    """A named session plus its lock and autosave dirty flag."""

    __slots__ = ("name", "session", "lock", "dirty")

    def __init__(self, name: str, session: TuningSession) -> None:
        self.name = name
        self.session = session
        # the session's own re-entrant lock doubles as the per-name op lock,
        # so direct TuningSession users and the registry serialize together
        self.lock = session._lock
        self.dirty = True


class SessionRegistry:
    """Stateful dispatcher behind the JSON-lines tuning service.

    Thread-safe: a registry lock guards the name -> session map and the LRU
    order, and each session carries its own re-entrant lock held for the
    duration of any op that touches it.  Lock order is always registry lock
    first, session lock second — never the reverse — so concurrent clients
    cannot deadlock.
    """

    def __init__(
        self,
        sessions_dir: Path | str | None = None,
        max_sessions: int = 8,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        self.sessions_dir = Path(sessions_dir) if sessions_dir is not None else None
        if self.sessions_dir is not None:
            self.sessions_dir.mkdir(parents=True, exist_ok=True)
        self.max_sessions = int(max_sessions)
        self._sessions: "OrderedDict[str, _ManagedSession]" = OrderedDict()
        self._lock = threading.RLock()
        self._handlers: dict[str, Callable[[Mapping[str, Any]], dict[str, Any]]] = {
            "start": self._op_start,
            "ask": self._op_ask,
            "tell": self._op_tell,
            "status": self._op_status,
            "snapshot": self._op_snapshot,
            "restore": self._op_restore,
            "close": self._op_close,
            "sessions": self._op_sessions,
            "shutdown": self._op_shutdown,
        }
        self.running = True

    # ------------------------------------------------------------------
    # wire layer
    # ------------------------------------------------------------------

    def handle_line(self, line: str) -> str:
        """One request line in, one strict-JSON response line out (never raises)."""
        try:
            if len(line) > MAX_LINE_BYTES:
                raise ValueError(
                    f"request line exceeds {MAX_LINE_BYTES} bytes"
                )
            request = json.loads(line, parse_constant=_reject_constant)
            if not isinstance(request, Mapping):
                raise ValueError("request must be a JSON object")
        except (json.JSONDecodeError, ValueError, RecursionError) as exc:
            return self._dump({"ok": False, "error": f"bad request: {exc}"})
        return self._dump(self.handle(request))

    def _dump(self, response: Mapping[str, Any]) -> str:
        try:
            return json.dumps(wire_encode(response), allow_nan=False)
        except Exception as exc:  # noqa: BLE001 - the last line of defence
            return json.dumps(
                {
                    "ok": False,
                    "error": f"unserializable response: {type(exc).__name__}: {exc}",
                },
                allow_nan=False,
            )

    def handle(self, request: Mapping[str, Any]) -> dict[str, Any]:
        """Dispatch one request dict to its op handler (never raises)."""
        op = request.get("op")
        # a non-string op (e.g. {"op": ["ask"]}) is unhashable: validate
        # before the dict lookup instead of letting a TypeError escape
        if not isinstance(op, str):
            return {
                "ok": False,
                "error": f"'op' must be a string, got {_short(op)}; "
                         f"available: {sorted(self._handlers)}",
            }
        handler = self._handlers.get(op)
        if handler is None:
            return {
                "ok": False,
                "error": f"unknown op {_short(op)}; available: {sorted(self._handlers)}",
            }
        try:
            return {"ok": True, "op": op, **handler(request)}
        except Exception as exc:  # noqa: BLE001 - the service must keep serving
            return {"ok": False, "op": op, "error": f"{type(exc).__name__}: {exc}"}

    # ------------------------------------------------------------------
    # session bookkeeping
    # ------------------------------------------------------------------

    def _session_name(self, request: Mapping[str, Any]) -> str:
        name = request.get("session", DEFAULT_SESSION)
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ValueError(
                "'session' must be a name matching "
                "[A-Za-z0-9][A-Za-z0-9._-]* (at most 100 characters), "
                f"got {_short(name)}"
            )
        return name

    def _autosave_path(self, name: str) -> Path | None:
        if self.sessions_dir is None:
            return None
        return self.sessions_dir / f"{name}{_AUTOSAVE_SUFFIX}"

    def _get_entry(self, name: str) -> _ManagedSession:
        """An active session by name, transparently reloading an autosaved one."""
        with self._lock:
            entry = self._sessions.get(name)
            if entry is not None:
                self._sessions.move_to_end(name)
                return entry
        path = self._autosave_path(name)
        if path is None or not path.exists():
            raise KeyError(
                f"unknown session {name!r} — send a start or restore request"
            )
        from .experiments.runner import load_session

        session, _ = load_session(path)
        return self._admit(name, session, dirty=False)

    @contextmanager
    def _locked_entry(self, name: str) -> "Iterator[_ManagedSession]":
        """Look up a session and hold its lock, closing the eviction race.

        Between :meth:`_get_entry` returning and the caller acquiring the
        session lock, LRU eviction (which grabs free session locks
        non-blockingly) could autosave-and-drop the entry, leaving the op to
        mutate an orphan whose state is never persisted.  Re-validating the
        registry entry *after* acquiring the lock closes that window: an
        evicted entry is released and transparently reloaded.  Taking the
        registry lock while holding a session lock cannot deadlock because
        no code path ever blocks on a session lock while holding the
        registry lock.
        """
        while True:
            entry = self._get_entry(name)
            entry.lock.acquire()
            # repro: allow[lock-discipline] documented-safe inversion: nothing ever blocks on a session lock while holding the registry lock (see docstring)
            with self._lock:
                if self._sessions.get(name) is entry:
                    break
            entry.lock.release()  # evicted in the window; reload and retry
        try:
            yield entry
        finally:
            entry.lock.release()

    def _admit(
        self,
        name: str,
        session: TuningSession,
        dirty: bool = True,
        guard_conflict: bool = False,
    ) -> _ManagedSession:
        """Insert (or replace) a session and evict over-capacity LRU entries.

        ``guard_conflict`` re-runs the start/restore conflict check *inside*
        the registry lock: two concurrent non-force starts of the same name
        can both pass the advisory pre-check, and without this guard the
        second would silently discard the first's freshly admitted run.
        """
        with self._lock:
            existing = self._sessions.get(name)
            if existing is not None and not dirty:
                # lost a concurrent reload race; keep the live entry
                self._sessions.move_to_end(name)
                return existing
            if guard_conflict and existing is not None:
                conflict = self._conflict_of_entry(name, existing)
                if conflict is not None:
                    raise RuntimeError(
                        f"{conflict} — pass \"force\": true to discard it"
                    )
            if (
                existing is None
                and self.sessions_dir is None
                and len(self._sessions) >= self.max_sessions
            ):
                raise RuntimeError(
                    f"session registry is full ({self.max_sessions} active); "
                    "close a session or run with --sessions-dir to enable "
                    "LRU eviction"
                )
            entry = _ManagedSession(name, session)
            entry.dirty = dirty
            self._sessions[name] = entry
            self._sessions.move_to_end(name)
            self._evict_lru_locked(protect=name)
            return entry

    def _conflict_of_entry(self, name: str, entry: _ManagedSession) -> str | None:
        """Why replacing an in-memory entry would discard work (None: safe).

        Safe with or without the registry lock held: the entry's session
        lock is only tried non-blockingly, so this never creates a
        registry-then-session blocking wait.
        """
        if not entry.lock.acquire(blocking=False):
            return f"session {name!r} is busy with another request"
        try:
            session = entry.session
            if session.pending:
                return (
                    f"session {name!r} has {len(session.pending)} in-flight "
                    "suggestion(s)"
                )
            if not session.done:
                return (
                    f"session {name!r} is active at {len(session.history)}"
                    f"/{session.budget} evaluations"
                )
            return None  # finished run: replacing it loses nothing
        finally:
            entry.lock.release()

    def _evict_lru_locked(self, protect: str) -> None:
        """Autosave-and-drop least-recently-used sessions beyond the cap.

        Runs with the registry lock held.  Busy sessions (op in flight) are
        skipped rather than waited on; the registry briefly overshoots its
        cap and retries at the next admission.

        The checkpoint write deliberately happens under the registry lock:
        releasing it between pop and save would open a window where a
        concurrent request for the victim reloads a *stale* checkpoint.
        Checkpoints are small (KBs of JSON) and evictions only fire on
        admissions past the cap, so the stall is bounded and rare; ops on
        other sessions that are already past `_locked_entry` proceed
        unaffected.
        """
        # repro: allow[lock-discipline] _locked suffix contract: every caller already holds the registry lock
        while len(self._sessions) > self.max_sessions:
            victim = None
            for name, entry in self._sessions.items():  # front == LRU
                if name != protect and entry.lock.acquire(blocking=False):
                    victim = entry
                    break
            if victim is None:
                break
            try:
                self._save_entry(victim)
                del self._sessions[victim.name]
            finally:
                victim.lock.release()

    def _save_entry(self, entry: _ManagedSession) -> Path | None:
        """Autosave one session (caller holds its lock).  Returns the path."""
        path = self._autosave_path(entry.name)
        if path is None:
            return None
        from .experiments.runner import save_session

        written = save_session(entry.session, path)
        entry.dirty = False
        return written

    def autosave_all(self) -> list[str]:
        """Autosave every dirty session; returns the written paths."""
        if self.sessions_dir is None:
            return []
        with self._lock:
            entries = list(self._sessions.values())
        written = []
        for entry in entries:
            with entry.lock:
                if entry.dirty:
                    path = self._save_entry(entry)
                    if path is not None:
                        written.append(str(path))
        return written

    # ------------------------------------------------------------------
    # op handlers
    # ------------------------------------------------------------------

    def _start_conflict(self, name: str) -> str | None:
        """Why starting ``name`` would discard work (None when safe).

        Advisory fast-fail before the expensive session construction; the
        authoritative in-memory check is repeated atomically inside
        :meth:`_admit` (``guard_conflict=True``).
        """
        with self._lock:
            entry = self._sessions.get(name)
        if entry is not None:
            return self._conflict_of_entry(name, entry)
        path = self._autosave_path(name)
        if path is not None and path.exists():
            return f"session {name!r} has an autosaved checkpoint at {path}"
        return None

    def _op_start(self, request: Mapping[str, Any]) -> dict[str, Any]:
        from .experiments.runner import make_session

        name = self._session_name(request)
        force = request.get("force", False) is True
        conflict = self._start_conflict(name)
        if conflict is not None and not force:
            raise RuntimeError(
                f"{conflict} — pass \"force\": true to discard it"
            )
        if "benchmark" not in request:
            raise ValueError("start needs a 'benchmark' name")
        if "budget" not in request:
            raise ValueError("start needs an integer 'budget'")
        surrogate_policy = request.get("surrogate_policy")
        if surrogate_policy is not None and not isinstance(surrogate_policy, str):
            raise ValueError("'surrogate_policy' must be a policy spec string")
        propagate = request.get("propagate", False)
        if not isinstance(propagate, bool):
            raise ValueError("'propagate' must be a boolean")
        session, benchmark = make_session(
            str(request["benchmark"]),
            str(request.get("tuner", "BaCO")),
            int(request["budget"]),
            int(request.get("seed", 0)),
            fidelity=str(request.get("fidelity", "fast")),
            surrogate_policy=surrogate_policy,
            propagate=propagate,
        )
        if force:
            path = self._autosave_path(name)
            if path is not None:
                path.unlink(missing_ok=True)  # the discarded run must not resurrect
        self._admit(name, session, guard_conflict=not force)
        return {
            "session": name,
            "benchmark": benchmark.name,
            "tuner": session.tuner.name,
            "budget": session.budget,
            "seed": session.tuner.seed,
            "dimension": benchmark.space.dimension,
        }

    def _op_ask(self, request: Mapping[str, Any]) -> dict[str, Any]:
        name = self._session_name(request)
        n = int(request.get("n", 1))
        with self._locked_entry(name) as entry:
            suggestions = entry.session.ask(n)
            done = entry.session.done
            if suggestions:
                entry.dirty = True
        return {
            "session": name,
            "suggestions": [s.to_dict() for s in suggestions],
            "done": done,
        }

    def _op_tell(self, request: Mapping[str, Any]) -> dict[str, Any]:
        name = self._session_name(request)
        feasible = request.get("feasible", True)
        if not isinstance(feasible, bool):
            raise ValueError(f"'feasible' must be a boolean, got {_short(feasible)}")
        if "value" not in request and feasible:
            raise ValueError("tell needs a 'value' (or 'feasible': false)")
        value = float(request.get("value", math.inf))
        # json.loads happily produces inf/nan (1e999 overflows even in strict
        # mode); a non-finite feasible value would poison best_value and the
        # GP fit, so reject it here with a clear error
        if feasible and not math.isfinite(value):
            raise ValueError(
                f"feasible results need a finite 'value', got {value!r} — "
                "report failed measurements with \"feasible\": false"
            )
        elapsed = float(request.get("elapsed", 0.0))
        if not math.isfinite(elapsed):
            raise ValueError(f"'elapsed' must be finite, got {elapsed!r}")
        with self._locked_entry(name) as entry:
            evaluation = entry.session.tell(
                int(request["id"]),
                ObjectiveResult(value=value, feasible=feasible),
                elapsed=elapsed,
            )
            best = entry.session.history.best_value()
            done = entry.session.done
            entry.dirty = True
        return {
            "session": name,
            "index": evaluation.index,
            "best_value": json_safe(best),
            "done": done,
        }

    def _op_status(self, request: Mapping[str, Any]) -> dict[str, Any]:
        name = self._session_name(request)
        with self._locked_entry(name) as entry:
            session = entry.session
            return {
                "session": name,
                "benchmark": session.benchmark_name,
                "tuner": session.tuner.name,
                "budget": session.budget,
                "evaluations": len(session.history),
                "remaining": session.remaining,
                "pending_ids": [s.id for s in session.pending],
                "best_value": json_safe(session.history.best_value()),
                "done": session.done,
                "timings": session.phase_timings,
            }

    def _op_snapshot(self, request: Mapping[str, Any]) -> dict[str, Any]:
        name = self._session_name(request)
        path = request.get("path")
        with self._locked_entry(name) as entry:
            if path is None:
                return {"session": name, "snapshot": entry.session.snapshot()}
            if not isinstance(path, str) or not path:
                raise ValueError(f"'path' must be a file path, got {_short(path)}")
            from .experiments.runner import save_session

            written = save_session(entry.session, Path(path))
            # only a write to the registry's own autosave file makes the
            # entry clean — a caller-supplied path must not disable the
            # shutdown/eviction autosave that kill/resume depends on
            if written == self._autosave_path(name):
                entry.dirty = False
        return {"session": name, "path": str(written)}

    def _op_restore(self, request: Mapping[str, Any]) -> dict[str, Any]:
        name = self._session_name(request)
        force = request.get("force", False) is True
        conflict = self._start_conflict(name)
        if conflict is not None and not force:
            raise RuntimeError(
                f"{conflict} — pass \"force\": true to discard it"
            )
        has_path = "path" in request
        has_payload = "payload" in request
        if has_path == has_payload:
            raise ValueError("restore needs exactly one of 'path' or 'payload'")
        from .experiments.runner import load_session, restore_session

        if has_path:
            path = request["path"]
            if not isinstance(path, str) or not path:
                raise ValueError(f"'path' must be a file path, got {_short(path)}")
            session, benchmark = load_session(path)
        else:
            payload = wire_decode(request["payload"])
            if not isinstance(payload, Mapping):
                raise ValueError("'payload' must be a snapshot object")
            session, benchmark = restore_session(payload)
        self._admit(name, session, guard_conflict=not force)
        return {
            "session": name,
            "benchmark": benchmark.name,
            "tuner": session.tuner.name,
            "evaluations": len(session.history),
            "remaining": session.remaining,
            "pending_ids": [s.id for s in session.pending],
        }

    def _op_close(self, request: Mapping[str, Any]) -> dict[str, Any]:
        name = self._session_name(request)
        with self._lock:
            in_memory = name in self._sessions
        if not in_memory:
            # already only on disk: answer without the expensive reload (and
            # without the reload's _admit evicting an unrelated live session)
            path = self._autosave_path(name)
            if path is not None and path.exists():
                return {"session": name, "saved": str(path)}
            raise KeyError(
                f"unknown session {name!r} — send a start or restore request"
            )
        # save *before* unlinking: a concurrent op blocked on the session
        # lock re-validates in _locked_entry, misses the map, and reloads the
        # checkpoint written here — never a stale one
        with self._locked_entry(name) as entry:
            if entry.dirty:
                saved = self._save_entry(entry)
            else:
                # only report a checkpoint that actually exists on disk
                saved = self._autosave_path(name)
                if saved is not None and not saved.exists():
                    saved = None
            # repro: allow[lock-discipline] same documented-safe inversion as _locked_entry: the registry lock is never held while blocking on a session lock
            with self._lock:
                if self._sessions.get(name) is entry:
                    del self._sessions[name]
        return {"session": name, "saved": None if saved is None else str(saved)}

    def _op_sessions(self, request: Mapping[str, Any]) -> dict[str, Any]:
        with self._lock:
            entries = list(self._sessions.items())
        active = []
        for name, entry in entries:
            with entry.lock:
                session = entry.session
                active.append(
                    {
                        "session": name,
                        "benchmark": session.benchmark_name,
                        "tuner": session.tuner.name,
                        "evaluations": len(session.history),
                        "budget": session.budget,
                        "pending": len(session.pending),
                        "best_value": json_safe(session.history.best_value()),
                        "done": session.done,
                    }
                )
        autosaved = []
        if self.sessions_dir is not None:
            in_memory = {name for name, _ in entries}
            autosaved = sorted(
                p.name[: -len(_AUTOSAVE_SUFFIX)]
                for p in self.sessions_dir.glob(f"*{_AUTOSAVE_SUFFIX}")
                if p.name[: -len(_AUTOSAVE_SUFFIX)] not in in_memory
            )
        return {"active": active, "autosaved": autosaved}

    def _op_shutdown(self, request: Mapping[str, Any]) -> dict[str, Any]:
        saved = self.autosave_all()
        self.running = False
        return {"stopping": True, "saved": saved}


class SessionService(SessionRegistry):
    """Single-session stdin/stdout dispatcher: the degenerate registry.

    Kept for backwards compatibility — requests without a ``session`` field
    operate on the ``"default"`` session as the pre-registry service did,
    with one deliberate exception: ``start`` no longer silently discards an
    unfinished session (that was a bug — pass ``"force": true`` for the old
    replace-unconditionally behaviour).
    """

    def __init__(self) -> None:
        super().__init__(sessions_dir=None, max_sessions=1)


def serve(
    stdin: IO[str],
    stdout: IO[str],
    registry: SessionRegistry | None = None,
) -> int:
    """Run the JSON-lines loop until shutdown or EOF.  Returns an exit code.

    The stdin/stdout transport is the degenerate single-connection case of
    :class:`repro.server.TuningServer`; both speak the same protocol over the
    same registry.
    """
    service = registry if registry is not None else SessionRegistry()
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        stdout.write(service.handle_line(line) + "\n")
        stdout.flush()
        if not service.running:
            break
    service.autosave_all()
    return 0
