"""Common interface shared by BaCO and all baseline autotuners.

Tuners are *proposal state machines* driven through an ask/tell
:class:`~repro.core.session.TuningSession`:

* :meth:`Tuner._begin` resets internal state and plans any up-front design
  (the DoE queue), consuming randomness exactly as the historical push-driven
  ``_run`` loops did;
* :meth:`Tuner._propose` emits the next ``k`` configurations to evaluate;
* :meth:`Tuner._observe` updates per-observation caches after each result is
  told back;
* :meth:`Tuner._state_dict` / :meth:`Tuner._load_state_dict` round-trip the
  tuner-private state (queues, bandits, dedup sets) through JSON for
  checkpoint / resume.

:meth:`Tuner.tune` remains the convenience entry point used throughout the
experiment harness — it is now a thin serial driver over the session API and
produces bit-identical traces to the pre-inversion loops.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections import deque
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from ..space.space import Configuration, SearchSpace
from .profiling import PhaseProfiler
from .result import (
    ObjectiveFunction,
    ObjectiveResult,
    TuningHistory,
    configuration_from_json,
    configuration_to_json,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import TuningSession

__all__ = ["Tuner"]


class Tuner(ABC):
    """Base class: a tuner proposes configurations and records evaluations.

    Subclasses implement :meth:`_propose` (and usually :meth:`_plan` /
    :meth:`_observe`); the base class keeps the bookkeeping (history,
    de-duplication, timing) uniform so that the wall-clock comparison of
    Table 10 treats every tuner identically.
    """

    name = "tuner"

    def __init__(self, space: SearchSpace, seed: int | None = None) -> None:
        self.space = space
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._session: "TuningSession | None" = None
        self._history: TuningHistory | None = None
        self._objective: ObjectiveFunction | None = None
        self._evaluated_keys: set[tuple] = set()
        self._doe_queue: deque[Configuration] = deque()
        #: wall-clock per recommendation-loop phase (sample/fit/predict/ei/
        #: climb); pure observation, never consulted by the tuner itself
        self.phase_profiler = PhaseProfiler()

    # ------------------------------------------------------------------
    # the ask/tell session surface
    # ------------------------------------------------------------------

    def start_session(self, budget: int, benchmark_name: str = "") -> "TuningSession":
        """Begin a fresh ask/tell session with ``budget`` evaluations."""
        from .session import TuningSession

        return TuningSession(self, budget, benchmark_name=benchmark_name)

    def tune(
        self,
        objective: ObjectiveFunction,
        budget: int,
        benchmark_name: str = "",
    ) -> TuningHistory:
        """Run the tuner for ``budget`` black-box evaluations.

        A thin serial driver over :meth:`start_session`: ask one suggestion,
        evaluate it, tell the result, repeat.  The produced trace is
        bit-identical to the historical push-driven loop.
        """
        session = self.start_session(budget, benchmark_name=benchmark_name)
        self._objective = objective
        start = time.perf_counter()
        while not session.done:
            for suggestion in session.ask():
                evaluation_start = time.perf_counter()
                result = objective(suggestion.configuration)
                session.tell(
                    suggestion, result, elapsed=time.perf_counter() - evaluation_start
                )
        total = time.perf_counter() - start
        history = session.history
        history.tuner_seconds = max(0.0, total - history.evaluation_seconds)
        return history

    def _bind_session(self, session: "TuningSession") -> None:
        """Attach the session's history so ``self.history`` works mid-run."""
        self._session = session
        self._history = session.history

    # ------------------------------------------------------------------
    # state machine hooks (overridden by subclasses)
    # ------------------------------------------------------------------

    def _begin(self, budget: int) -> None:
        """Reset state and plan the run (may consume randomness)."""
        self._reset_state(budget)
        self._plan(budget)

    def _reset_state(self, budget: int) -> None:
        """Clear all per-session state.  Must not consume randomness — the
        checkpoint-restore path calls this before replaying the history."""
        self._evaluated_keys = set()
        self._doe_queue = deque()
        self.phase_profiler.reset()

    def _plan(self, budget: int) -> None:
        """Draw any up-front design (DoE).  Only called for fresh sessions."""

    @abstractmethod
    def _propose(self, k: int, pending_keys: set[tuple]) -> list[tuple[Configuration, str]]:
        """Return exactly ``k`` ``(configuration, phase)`` proposals.

        ``pending_keys`` holds the frozen keys of suggestions issued but not
        yet told, so batch proposals can avoid duplicating in-flight work.
        """

    def _record_observation(
        self, configuration: Mapping[str, Any], result: ObjectiveResult
    ) -> None:
        """Uniform bookkeeping applied to every told observation."""
        self._evaluated_keys.add(self.space.freeze(configuration))
        self._observe(configuration, result)

    def _observe(self, configuration: Mapping[str, Any], result: ObjectiveResult) -> None:
        """Hook called after each evaluation is recorded.

        Subclasses override this to maintain per-observation caches (encoded
        feature rows, incremental distance tensors, ...) in step with the
        history instead of re-deriving them every iteration.  The hook is also
        used to rebuild those caches when a checkpoint is restored, so it must
        depend only on ``(configuration, result)`` — never on randomness.
        """

    # ------------------------------------------------------------------
    # checkpoint / resume state
    # ------------------------------------------------------------------

    def _state_dict(self) -> dict[str, Any]:
        """Tuner-private state for session snapshots (JSON-serializable)."""
        return {"doe_queue": [configuration_to_json(c) for c in self._doe_queue]}

    def _load_state_dict(self, payload: Mapping[str, Any]) -> None:
        """Restore the state produced by :meth:`_state_dict`."""
        self._doe_queue = deque(
            configuration_from_json(entry) for entry in payload.get("doe_queue", ())
        )

    def _post_restore(self) -> None:
        """Hook called once a snapshot restore has replayed the full history
        and loaded the state dict.  Subclasses rebuild derived caches that
        depend on *both* (e.g. a Cholesky factor over the replayed rows with
        snapshotted hyper-parameters).  Must not consume randomness."""

    # ------------------------------------------------------------------
    # history access and legacy helpers
    # ------------------------------------------------------------------

    def _require_history(self) -> TuningHistory:
        if self._history is None:
            raise RuntimeError(
                "no active tuning session — call tune() or start_session() first"
            )
        return self._history

    @property
    def history(self) -> TuningHistory:
        return self._require_history()

    def _remaining(self, budget: int) -> int:
        return budget - len(self._require_history())

    def _evaluate(self, configuration: Mapping[str, Any], phase: str = "learning") -> ObjectiveResult:
        """Evaluate one configuration through the black box and record it.

        Legacy push-style helper kept for ad-hoc use inside an active
        :meth:`tune` call; the session drivers evaluate through ask/tell
        instead.
        """
        history = self._require_history()
        if self._objective is None:
            raise RuntimeError(
                "no active tuning session — call tune() or start_session() first"
            )
        start = time.perf_counter()
        result = self._objective(configuration)
        history.evaluation_seconds += time.perf_counter() - start
        history.append(configuration, result, phase=phase)
        self._record_observation(configuration, result)
        return result
