"""Common interface shared by BaCO and all baseline autotuners."""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Any, Mapping

import numpy as np

from ..space.space import SearchSpace
from .result import ObjectiveFunction, ObjectiveResult, TuningHistory

__all__ = ["Tuner"]


class Tuner(ABC):
    """Base class: a tuner proposes configurations and records evaluations.

    Subclasses implement :meth:`_run`, which drives the proposal loop and
    calls :meth:`_evaluate` for each configuration.  The base class keeps the
    bookkeeping (history, de-duplication of timing) uniform so that the
    wall-clock comparison of Table 10 treats every tuner identically.
    """

    name = "tuner"

    def __init__(self, space: SearchSpace, seed: int | None = None) -> None:
        self.space = space
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._history: TuningHistory | None = None
        self._objective: ObjectiveFunction | None = None

    # ------------------------------------------------------------------
    def tune(
        self,
        objective: ObjectiveFunction,
        budget: int,
        benchmark_name: str = "",
    ) -> TuningHistory:
        """Run the tuner for ``budget`` black-box evaluations."""
        if budget < 1:
            raise ValueError("budget must be at least 1")
        self._objective = objective
        self._history = TuningHistory(
            tuner_name=self.name, benchmark_name=benchmark_name, seed=self.seed
        )
        start = time.perf_counter()
        self._run(budget)
        total = time.perf_counter() - start
        self._history.tuner_seconds = max(0.0, total - self._history.evaluation_seconds)
        return self._history

    # ------------------------------------------------------------------
    def _evaluate(self, configuration: Mapping[str, Any], phase: str = "learning") -> ObjectiveResult:
        """Evaluate one configuration through the black box and record it."""
        start = time.perf_counter()
        result = self._objective(configuration)
        self._history.evaluation_seconds += time.perf_counter() - start
        self._history.append(configuration, result, phase=phase)
        self._observe(configuration, result)
        return result

    def _observe(self, configuration: Mapping[str, Any], result: ObjectiveResult) -> None:
        """Hook called after each evaluation is recorded.

        Subclasses override this to maintain per-observation caches (encoded
        feature rows, incremental distance tensors, ...) in step with the
        history instead of re-deriving them every iteration.
        """

    @property
    def history(self) -> TuningHistory:
        if self._history is None:
            raise RuntimeError("tune() has not been called yet")
        return self._history

    def _remaining(self, budget: int) -> int:
        return budget - len(self._history)

    # ------------------------------------------------------------------
    @abstractmethod
    def _run(self, budget: int) -> None:
        """Propose and evaluate configurations until the budget is exhausted."""
