"""Ask/tell tuning sessions: the inverted control flow of every tuner.

Historically each tuner owned its loop (``Tuner._run``) and called the
objective inline, which made parallel candidate evaluation, mid-run
checkpointing, and service-style usage impossible.  :class:`TuningSession`
inverts that relationship, following the ask/tell convention of mainstream
BO frameworks (skopt/ytopt, OpenTuner):

* :meth:`TuningSession.ask` returns up to ``n`` :class:`Suggestion` objects —
  configuration, encoded feature row, phase, and a stable suggestion id;
* the caller evaluates the configurations however it likes (inline, thread
  pool, process pool, remote workers, ...);
* :meth:`TuningSession.tell` feeds each observation back, in any order —
  deterministic replays require telling in suggestion-id order, which
  :func:`drive` does for you.

The session (not the tuner) owns the :class:`~repro.core.result.TuningHistory`
and the evaluation budget; the tuner is reduced to a proposal state machine
(:meth:`repro.core.tuner.Tuner._propose`) plus per-observation cache updates
(:meth:`repro.core.tuner.Tuner._observe`).

Checkpoint / resume
-------------------

:meth:`TuningSession.snapshot` captures the complete session state as a
JSON-serializable dict: the RNG bit-generator state, the full history, any
suggestions issued but not yet told, and the tuner's private state (pending
DoE queue, bandit statistics, dedup sets).  :meth:`TuningSession.restore`
rebuilds a live session from such a payload and a *freshly constructed*
tuner: the history is replayed through the tuner's observation hook, which
deterministically reconstructs every derived cache (encoded rows, feasible
values, the incremental GP train-train distance tensor) without storing a
single float twice, and the RNG is restored bit-exactly.  A restored session
therefore continues the run exactly where the snapshot left off — the
completed trace is bit-identical to an uninterrupted one.

JSON notes: Python's ``json`` round-trips ``float`` values exactly (``repr``
emits the shortest representation that parses back to the same double), so
snapshots preserve bit-identical behaviour across processes.

Thread safety
-------------

A session is mutated from one logical caller at a time, but the tuning
*server* (:mod:`repro.server`) drives many sessions from a pool of
connection threads.  Every state transition — :meth:`ask`, :meth:`tell`,
:meth:`snapshot` — therefore runs under a per-session re-entrant lock, so a
snapshot never observes a half-applied tell and two racing asks cannot issue
the same suggestion id.  Distinct sessions never share mutable state (each
tuner owns its RNG and caches; the search space they share is read-only with
idempotent lazily-built caches), so cross-session concurrency needs no
further coordination and cannot perturb a session's trace.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

import numpy as np

from .result import (
    ObjectiveFunction,
    ObjectiveResult,
    TuningHistory,
    configuration_from_json,
    configuration_to_json,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (tuner imports us)
    from .tuner import Tuner

__all__ = [
    "Suggestion",
    "TuningSession",
    "drive",
    "frozen_key_from_json",
    "frozen_key_to_json",
]

SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class Suggestion:
    """One configuration proposed by :meth:`TuningSession.ask`.

    ``id`` is unique within the session and totally ordered by proposal time;
    telling results back in id order reproduces the serial trace.
    ``encoded_row`` is the configuration's fixed-width numeric encoding
    (:class:`repro.space.encoding.ConfigEncoder`), so batch evaluators and
    services can feed surrogate models without re-encoding.
    """

    id: int
    configuration: dict[str, Any]
    phase: str
    encoded_row: tuple[float, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "configuration": configuration_to_json(self.configuration),
            "phase": self.phase,
            "encoded_row": list(self.encoded_row),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Suggestion":
        return cls(
            id=int(payload["id"]),
            configuration=configuration_from_json(payload["configuration"]),
            phase=payload["phase"],
            encoded_row=tuple(float(x) for x in payload.get("encoded_row", ())),
        )


# ---------------------------------------------------------------------------
# JSON helpers for frozen configuration keys (tuples, possibly nested)
# ---------------------------------------------------------------------------

def frozen_key_to_json(key: tuple) -> list:
    """A frozen configuration key as JSON (tuples become lists)."""
    return [list(v) if isinstance(v, tuple) else v for v in key]


def frozen_key_from_json(items: Sequence[Any]) -> tuple:
    """Inverse of :func:`frozen_key_to_json`."""
    return tuple(tuple(v) if isinstance(v, list) else v for v in items)


def _rng_state_to_json(rng: np.random.Generator) -> dict[str, Any]:
    """The bit-generator state as a JSON-safe dict (ints stay exact)."""
    state = rng.bit_generator.state
    return {
        "bit_generator": state["bit_generator"],
        "state": {k: int(v) for k, v in state["state"].items()},
        "has_uint32": int(state.get("has_uint32", 0)),
        "uinteger": int(state.get("uinteger", 0)),
    }


def _rng_state_from_json(rng: np.random.Generator, payload: Mapping[str, Any]) -> None:
    name = type(rng.bit_generator).__name__
    if payload["bit_generator"] != name:
        raise ValueError(
            f"snapshot was taken with bit generator {payload['bit_generator']!r} "
            f"but the tuner uses {name!r}"
        )
    rng.bit_generator.state = {
        "bit_generator": payload["bit_generator"],
        "state": {k: int(v) for k, v in payload["state"].items()},
        "has_uint32": int(payload.get("has_uint32", 0)),
        "uinteger": int(payload.get("uinteger", 0)),
    }


# ---------------------------------------------------------------------------
# the session
# ---------------------------------------------------------------------------

class TuningSession:
    """Ask/tell interface over one tuner run with a fixed evaluation budget."""

    def __init__(
        self,
        tuner: "Tuner",
        budget: int,
        benchmark_name: str = "",
        *,
        _restoring: bool = False,
    ) -> None:
        if budget < 1:
            raise ValueError("budget must be at least 1")
        self.tuner = tuner
        self.budget = int(budget)
        self.benchmark_name = benchmark_name
        #: guards every state transition (ask/tell/snapshot); re-entrant so
        #: the multi-session server can reuse it as the per-session op lock
        self._lock = threading.RLock()
        #: free-form caller metadata carried through snapshots (e.g. the
        #: experiment layer records the fidelity the tuner was built with)
        self.meta: dict[str, Any] = {}
        #: suggestions issued by ask() and not yet told back
        self._pending: dict[int, Suggestion] = {}
        #: restored in-flight suggestions, re-issued by ask() before new ones
        self._reissue: deque[Suggestion] = deque()
        self._next_id = 0
        if not _restoring:
            self.history = TuningHistory(
                tuner_name=tuner.name,
                benchmark_name=benchmark_name,
                seed=tuner.seed,
            )
            tuner._bind_session(self)
            tuner._begin(self.budget)

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once the budget is exhausted (every evaluation told back)."""
        with self._lock:
            return len(self.history) >= self.budget

    @property
    def remaining(self) -> int:
        """Evaluations still to be told before the budget is exhausted."""
        with self._lock:
            return max(0, self.budget - len(self.history))

    @property
    def pending(self) -> tuple[Suggestion, ...]:
        """Issued-but-untold suggestions, in suggestion-id order."""
        with self._lock:
            issued = list(self._pending.values()) + list(self._reissue)
        return tuple(sorted(issued, key=lambda s: s.id))

    @property
    def phase_timings(self) -> dict[str, Any]:
        """Per-phase wall-clock breakdown of the tuner's recommendation loop.

        Delegates to the tuner's :class:`~repro.core.profiling.PhaseProfiler`
        summary — seconds and call counts for sample/fit/predict/ei/climb.
        Timings are process-local observations (they are not part of
        snapshots and reset when the tuner state is rebuilt on restore).
        """
        return self.tuner.phase_profiler.summary()

    # ------------------------------------------------------------------
    def ask(self, n: int = 1) -> list[Suggestion]:
        """Propose up to ``n`` configurations to evaluate next.

        Never over-commits the budget: at most ``budget - told - pending``
        suggestions are returned (an empty list once everything is issued).
        Restored in-flight suggestions are re-issued first, without consuming
        any randomness.
        """
        if n < 1:
            raise ValueError("ask() needs n >= 1")
        with self._lock:
            capacity = self.budget - len(self.history) - len(self._pending) - len(self._reissue)
            # re-issue restored in-flight suggestions first
            out: list[Suggestion] = []
            while self._reissue and len(out) < n:
                suggestion = self._reissue.popleft()
                self._pending[suggestion.id] = suggestion
                out.append(suggestion)
            need = min(n - len(out), max(0, capacity))
            if need > 0:
                pending_keys = {
                    self.tuner.space.freeze(s.configuration) for s in self._pending.values()
                }
                proposals = self.tuner._propose(need, pending_keys)
                if len(proposals) != need:
                    raise RuntimeError(
                        f"{type(self.tuner).__name__}._propose returned "
                        f"{len(proposals)} proposals instead of {need}"
                    )
                encoder = self.tuner.space.encoder
                for configuration, phase in proposals:
                    suggestion = Suggestion(
                        id=self._next_id,
                        configuration=dict(configuration),
                        phase=phase,
                        encoded_row=tuple(float(x) for x in encoder.encode(configuration)),
                    )
                    self._next_id += 1
                    self._pending[suggestion.id] = suggestion
                    out.append(suggestion)
            return out

    def tell(
        self,
        suggestion: "Suggestion | int",
        result: ObjectiveResult,
        elapsed: float = 0.0,
    ):
        """Record the observation for one previously asked suggestion.

        ``elapsed`` (seconds spent in the black box) is accumulated into
        ``history.evaluation_seconds``.  Tells may arrive in any order;
        deterministic replays require suggestion-id order (see :func:`drive`).
        Returns the appended :class:`~repro.core.result.Evaluation`.
        """
        suggestion_id = suggestion.id if isinstance(suggestion, Suggestion) else int(suggestion)
        with self._lock:
            issued = self._pending.pop(suggestion_id, None)
            if issued is None:
                raise KeyError(
                    f"suggestion id {suggestion_id} is unknown, already told, "
                    "or was never issued by ask()"
                )
            if not isinstance(result, ObjectiveResult):
                self._pending[suggestion_id] = issued  # reject without losing it
                raise TypeError("tell() expects an ObjectiveResult")
            evaluation = self.history.append(issued.configuration, result, phase=issued.phase)
            self.history.evaluation_seconds += max(0.0, float(elapsed))
            self.tuner._record_observation(issued.configuration, result)
            return evaluation

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The complete session state as a JSON-serializable dict.

        Taken under the session lock, so a concurrent ``tell`` can never
        leave the snapshot with a history/RNG/pending combination that no
        serial execution would produce.
        """
        with self._lock:
            return {
                "version": SNAPSHOT_VERSION,
                "session": {
                    "budget": self.budget,
                    "benchmark_name": self.benchmark_name,
                    "next_suggestion_id": self._next_id,
                },
                "meta": dict(self.meta),
                "tuner": {
                    "name": self.tuner.name,
                    "class": type(self.tuner).__name__,
                    "seed": self.tuner.seed,
                },
                "rng": _rng_state_to_json(self.tuner._rng),
                "history": self.history.to_dict(),
                "pending": [s.to_dict() for s in self.pending],
                "tuner_state": self.tuner._state_dict(),
            }

    @classmethod
    def restore(cls, payload: Mapping[str, Any], tuner: "Tuner") -> "TuningSession":
        """Rebuild a live session from :meth:`snapshot` output.

        ``tuner`` must be a freshly constructed instance equivalent to the one
        that produced the snapshot (same class, space, and settings); its RNG
        state is overwritten with the snapshotted one, and every derived cache
        is reconstructed by replaying the history through the tuner's
        observation hook.
        """
        version = payload.get("version")
        if version != SNAPSHOT_VERSION:
            raise ValueError(f"unsupported session snapshot version: {version!r}")
        meta = payload["session"]
        snap_tuner = payload.get("tuner", {})
        if snap_tuner.get("name") != tuner.name:
            raise ValueError(
                f"snapshot was taken by tuner {snap_tuner.get('name')!r} but "
                f"restore() was given {tuner.name!r}"
            )
        session = cls(
            tuner,
            int(meta["budget"]),
            meta.get("benchmark_name", ""),
            _restoring=True,
        )
        session.meta = dict(payload.get("meta", {}))
        session.history = TuningHistory.from_dict(payload["history"])
        tuner._bind_session(session)
        tuner._reset_state(session.budget)
        for evaluation in session.history.evaluations:
            tuner._record_observation(
                evaluation.configuration,
                ObjectiveResult(value=evaluation.value, feasible=evaluation.feasible),
            )
        tuner._load_state_dict(payload.get("tuner_state", {}))
        tuner._post_restore()
        _rng_state_from_json(tuner._rng, payload["rng"])
        session._reissue = deque(
            Suggestion.from_dict(entry) for entry in payload.get("pending", ())
        )
        session._next_id = int(meta.get("next_suggestion_id", len(session.history)))
        return session


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------

def drive(
    session: TuningSession,
    objective: ObjectiveFunction | None = None,
    *,
    batch_size: int = 1,
    evaluate_batch: Callable[[Sequence[Suggestion]], Sequence[tuple[ObjectiveResult, float]]] | None = None,
    after_tell: Callable[[TuningSession], None] | None = None,
) -> TuningHistory:
    """Run a session to completion and return its history.

    Exactly one of ``objective`` (evaluated inline, one configuration at a
    time) or ``evaluate_batch`` (receives a list of suggestions, returns
    ``(result, elapsed_seconds)`` pairs in the same order — typically backed
    by a process pool) must be provided.  Results are always told back in
    suggestion-id order, so a given ``batch_size`` yields a deterministic
    trace regardless of evaluation concurrency; ``batch_size=1`` reproduces
    the serial ``tune()`` trace bit for bit.

    ``after_tell`` runs after each batch has been told (checkpoint hooks).
    """
    if (objective is None) == (evaluate_batch is None):
        raise ValueError("provide exactly one of objective or evaluate_batch")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    while not session.done:
        suggestions = session.ask(batch_size)
        if not suggestions:
            raise RuntimeError(
                "session is not done but ask() returned nothing — "
                f"{len(session.pending)} suggestions are pending a tell()"
            )
        if evaluate_batch is not None:
            outcomes = list(evaluate_batch(suggestions))
            if len(outcomes) != len(suggestions):
                raise RuntimeError(
                    "evaluate_batch returned a mismatched number of results"
                )
        else:
            outcomes = []
            for suggestion in suggestions:
                start = time.perf_counter()
                result = objective(suggestion.configuration)
                outcomes.append((result, time.perf_counter() - start))
        told = sorted(zip(suggestions, outcomes), key=lambda pair: pair[0].id)
        for suggestion, (result, elapsed) in told:
            session.tell(suggestion, result, elapsed=elapsed)
        if after_tell is not None:
            after_tell(session)
    return session.history
