"""Multi-start local search for acquisition-function optimization.

BaCO optimizes its acquisition function (Sec. 3.3) by

1. sampling a large batch of feasible configurations uniformly at random
   (from the Chain-of-Trees where available),
2. keeping the best few as starting points,
3. hill-climbing each start over the *feasible* one-parameter-change
   neighbourhood until no neighbour improves the acquisition value,
4. returning the best configuration found that has not already been
   evaluated.

Because known constraints are enforced when generating both the random batch
and the neighbourhoods, the acquisition optimizer only ever proposes feasible
configurations.

The whole optimizer runs in **row space**: the random batch is one
``SearchSpace.sample_rows`` call, every climb step materializes the union of
all still-active starts' neighbourhoods as a single row matrix
(``SearchSpace.neighbour_rows_batch`` — candidate values gathered from the
Chain-of-Trees, feasibility by compiled residual constraints), and one
batched acquisition call scores it.  Configurations are decoded to dicts only
for the returned winners, i.e. at the tuner boundary.
"""
# repro: hot-path — row-space module: per-row Python loops, .tolist(), and in-loop decode are flagged (see repro.analysis)

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from ..space.space import Configuration, SearchSpace

__all__ = [
    "LocalSearchSettings",
    "multistart_local_search",
    "multistart_local_search_batch",
    "pooled_local_search_batch",
    "random_candidates",
    "random_candidate_rows",
]

#: cross-ask neighbour-matrix cache entries kept before FIFO eviction; the
#: space is immutable, so a row's feasible neighbourhood is a pure function
#: of the row and entries never go stale — the cap only bounds memory
_NEIGHBOUR_CACHE_MAX = 4096


class LocalSearchSettings:
    """Knobs of the acquisition optimizer."""

    def __init__(
        self,
        n_random_samples: int = 256,
        n_starts: int = 5,
        max_steps: int = 32,
        biased_cot: bool = False,
    ) -> None:
        if n_random_samples < 1 or n_starts < 1 or max_steps < 0:
            raise ValueError("local-search settings must be positive")
        self.n_random_samples = n_random_samples
        self.n_starts = min(n_starts, n_random_samples)
        self.max_steps = max_steps
        self.biased_cot = biased_cot


def _unique_rows(rows: np.ndarray) -> np.ndarray:
    """Distinct rows in first-seen order (row equality == config equality)."""
    if len(rows) == 0:
        return rows
    _, first = np.unique(rows, axis=0, return_index=True)
    return rows[np.sort(first)]


def random_candidate_rows(
    space: SearchSpace,
    n_samples: int,
    rng: np.random.Generator,
    biased_cot: bool = False,
) -> np.ndarray:
    """Uniform feasible candidates as encoded rows; duplicates collapsed."""
    return _unique_rows(space.sample_rows(rng, n_samples, biased_cot=biased_cot))


def random_candidates(
    space: SearchSpace,
    n_samples: int,
    rng: np.random.Generator,
    biased_cot: bool = False,
) -> list[Configuration]:
    """Uniform feasible candidates; duplicates are collapsed (dict boundary)."""
    rows = random_candidate_rows(space, n_samples, rng, biased_cot=biased_cot)
    decode = space.encoder.decode
    return [decode(row) for row in rows]


def _row_scorer(
    acquisition: Callable[[Sequence[Mapping[str, Any]]], np.ndarray],
    space: SearchSpace,
) -> Callable[[np.ndarray], np.ndarray]:
    """Adapt an acquisition to score encoded rows.

    :class:`~repro.core.acquisition.AcquisitionFunction` (and the RF
    acquisition) expose ``evaluate_rows`` and consume the matrix directly;
    plain dict-based callables — custom acquisitions, tests — are served by
    decoding each batch once.
    """
    evaluate_rows = getattr(acquisition, "evaluate_rows", None)
    if evaluate_rows is not None:
        encoder = space.encoder
        return lambda rows: np.asarray(evaluate_rows(rows, encoder), dtype=float)
    decode = space.encoder.decode
    return lambda rows: np.asarray(
        acquisition([decode(row) for row in rows]), dtype=float
    )


def multistart_local_search(
    space: SearchSpace,
    acquisition: Callable[[Sequence[Mapping[str, Any]]], np.ndarray],
    rng: np.random.Generator,
    settings: LocalSearchSettings | None = None,
    exclude: Iterable[tuple] = (),
) -> tuple[Configuration | None, float]:
    """Return the best configuration according to ``acquisition``.

    ``exclude`` contains frozen keys of configurations that must not be
    returned (typically those already evaluated).  If every candidate is
    excluded or has acquisition ``-inf``, ``(None, -inf)`` is returned and the
    caller should fall back to random sampling.
    """
    ranked = multistart_local_search_batch(
        space, acquisition, rng, settings=settings, exclude=exclude, k=1
    )
    if not ranked:
        return None, -np.inf
    return ranked[0]


def multistart_local_search_batch(
    space: SearchSpace,
    acquisition: Callable[[Sequence[Mapping[str, Any]]], np.ndarray],
    rng: np.random.Generator,
    settings: LocalSearchSettings | None = None,
    exclude: Iterable[tuple] = (),
    k: int = 1,
    profiler: Any | None = None,
) -> list[tuple[Configuration, float]]:
    """The top-``k`` distinct configurations according to ``acquisition``.

    One random-row batch and one lockstep multi-start climb serve the whole
    batch: the per-start local optima are ranked by acquisition value
    (de-duplicated by frozen key) and, when fewer than ``k`` remain, the
    ranked random candidates back-fill the rest.

    ``profiler`` — optional :class:`~repro.core.profiling.PhaseProfiler`;
    attributes the candidate draw to ``"sample"`` and the climb bookkeeping to
    ``"climb"`` (scoring attributes itself to ``"predict"``/``"ei"`` through
    the acquisition).  Pure observation: the search is byte-identical with and
    without it.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    settings = settings or LocalSearchSettings()
    excluded = set(exclude)
    scorer = _row_scorer(acquisition, space)
    decode = space.encoder.decode

    def _phase(name: str):
        return profiler.phase(name) if profiler is not None else nullcontext()

    with _phase("sample"):
        candidates = random_candidate_rows(
            space, settings.n_random_samples, rng, biased_cot=settings.biased_cot
        )
    if len(candidates) == 0:
        return []
    values = scorer(candidates)

    order = np.argsort(-values)
    n_starts = min(settings.n_starts, len(candidates))
    starts = candidates[order[:n_starts]].copy()
    start_values = values[order[:n_starts]].astype(float)

    # Lockstep hill climbing: per step, one neighbour-matrix build and one
    # batched acquisition call cover every active start; each start then takes
    # the argmax within its own owner slice, exactly as if it climbed alone.
    current = starts.copy()
    current_values = start_values.copy()
    active = list(range(n_starts))
    for _ in range(settings.max_steps):
        if not active:
            break
        with _phase("climb"):
            batch, owners = space.neighbour_rows_batch(current[active])
        if len(batch) == 0:
            break
        batch_values = scorer(batch)
        with _phase("climb"):
            still_active: list[int] = []
            for position, start_index in enumerate(active):
                span = np.nonzero(owners == position)[0]
                if len(span) == 0:
                    continue
                span_values = batch_values[span]
                best = int(np.argmax(span_values))
                if span_values[best] <= current_values[start_index]:
                    continue
                current[start_index] = batch[span[best]]
                current_values[start_index] = float(span_values[best])
                still_active.append(start_index)
            active = still_active

    # Per start: the first non-excluded of (climbed optimum, original start),
    # kept only when its value beats -inf (NaN and -inf never win).
    winners: list[tuple[Configuration, float]] = []
    for i in range(n_starts):
        candidate_pool = [
            (current[i], float(current_values[i])),
            (starts[i], float(start_values[i])),
        ]
        # repro: allow[hot-path-purity] tuner boundary: decodes at most two rows (climbed optimum, original start) per start
        for row, row_value in candidate_pool:
            config = decode(row)
            if space.freeze(config) in excluded:
                continue
            if row_value > -np.inf:
                winners.append((config, row_value))
            break
    # Stable sort: ties keep start order, so the first entry equals the
    # single-result argmax.
    winners.sort(key=lambda pair: -pair[1])

    results: list[tuple[Configuration, float]] = []
    taken: set[tuple] = set()
    for config, config_value in winners:
        key = space.freeze(config)
        if key in taken:
            continue
        taken.add(key)
        results.append((config, config_value))
        if len(results) == k:
            return results

    # Not enough distinct local optima: back-fill from the ranked random
    # candidates (also the fallback when every optimum was already evaluated).
    for i in order:
        if len(results) == k:
            break
        if not np.isfinite(values[i]):
            continue
        config = decode(candidates[i])  # repro: allow[hot-path-purity] boundary back-fill: decodes at most k ranked winners
        key = space.freeze(config)
        if key in excluded or key in taken:
            continue
        taken.add(key)
        results.append((config, float(values[i])))
    return results


def pooled_local_search_batch(
    space: SearchSpace,
    scorer: Any,
    pool_rows: np.ndarray,
    pool_values: np.ndarray,
    settings: LocalSearchSettings | None = None,
    exclude: Iterable[tuple] = (),
    k: int = 1,
    neighbour_cache: dict[bytes, np.ndarray] | None = None,
    profiler: Any | None = None,
) -> tuple[list[tuple[Configuration, float]], list[int]]:
    """Lockstep climb over a *persistent*, pre-scored candidate pool.

    The cached counterpart of :func:`multistart_local_search_batch`: instead
    of drawing a fresh random batch, the caller hands in the cross-ask pool
    (``pool_rows``) together with its acquisition values (``pool_values``,
    typically from :meth:`~repro.core.acquisition.FusedAcquisitionScorer.
    prime_pool` over the cached cross-distance tensor), and ``scorer`` is a
    :class:`~repro.core.acquisition.FusedAcquisitionScorer` whose memo folds
    away re-visited rows during the climb.

    Two cache layers make the climb cheap:

    * ``neighbour_cache`` maps ``row.tobytes()`` to that row's feasible
      neighbour matrix.  Neighbourhoods are pure functions of the row (the
      space is immutable), so the cache persists *across asks*; only rows
      never climbed through before pay a ``neighbour_rows_batch`` call.
    * the scorer's per-ask memo deduplicates acquisition evaluations across
      overlapping neighbourhoods and re-visited rows.

    Dead starts are pruned up front: rows whose pooled value is ``-inf`` or
    NaN (ε_f-filtered or otherwise unscorable) never seed a climb.  The
    winner / ranking / de-dup / back-fill contract is identical to
    :func:`multistart_local_search_batch`.

    Returns ``(ranked, start_indices)`` where ``start_indices`` are the pool
    row indices consumed as climb starts — the caller refreshes exactly those
    slots before the next ask.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    settings = settings or LocalSearchSettings()
    excluded = set(exclude)
    decode = space.encoder.decode
    if neighbour_cache is None:
        neighbour_cache = {}

    def _phase(name: str):
        return profiler.phase(name) if profiler is not None else nullcontext()

    pool_values = np.asarray(pool_values, dtype=float)
    if len(pool_rows) == 0:
        return [], []
    order = np.argsort(-pool_values)

    # Start selection with dead-start pruning: walk the ranking, keep distinct
    # rows with finite acquisition values.  A pool drained to all--inf (every
    # candidate below ε_f) yields no starts and the caller falls back to
    # random sampling.
    start_indices: list[int] = []
    seen_start_keys: set[bytes] = set()
    for i in order:
        if len(start_indices) == settings.n_starts:
            break
        if not np.isfinite(pool_values[i]):
            continue
        key = pool_rows[i].tobytes()
        if key in seen_start_keys:
            continue
        seen_start_keys.add(key)
        start_indices.append(int(i))
    if not start_indices:
        return [], []

    n_starts = len(start_indices)
    starts = pool_rows[start_indices].copy()
    start_values = pool_values[start_indices].astype(float)
    current = starts.copy()
    current_values = start_values.copy()
    active = list(range(n_starts))

    for _ in range(settings.max_steps):
        if not active:
            break
        with _phase("climb"):
            # Gather neighbour matrices: cache hits are free, the misses are
            # expanded in one batched call and split by owner.
            mats: list[np.ndarray | None] = []
            missing_positions: list[int] = []
            for position in range(len(active)):
                mat = neighbour_cache.get(current[active[position]].tobytes())
                if mat is None:
                    missing_positions.append(position)
                mats.append(mat)
            if missing_positions:
                expand_rows = current[[active[p] for p in missing_positions]]
                batch, owners = space.neighbour_rows_batch(expand_rows)
                for j, position in enumerate(missing_positions):
                    mat = np.array(batch[owners == j], copy=True)
                    neighbour_cache[expand_rows[j].tobytes()] = mat
                    mats[position] = mat
                while len(neighbour_cache) > _NEIGHBOUR_CACHE_MAX:
                    neighbour_cache.pop(next(iter(neighbour_cache)))
            lengths = [len(mat) for mat in mats]
            total = sum(lengths)
            if total == 0:
                break
            fused = np.concatenate([mat for mat in mats if len(mat)], axis=0)
        fused_values = scorer.score_rows(fused)
        with _phase("climb"):
            still_active: list[int] = []
            offset = 0
            for position, start_index in enumerate(active):
                length = lengths[position]
                if length == 0:
                    continue
                span_values = fused_values[offset : offset + length]
                best = int(np.argmax(span_values))
                if span_values[best] > current_values[start_index]:
                    current[start_index] = mats[position][best]
                    current_values[start_index] = float(span_values[best])
                    still_active.append(start_index)
                offset += length
            active = still_active

    winners: list[tuple[Configuration, float]] = []
    for i in range(n_starts):
        candidate_pool = [
            (current[i], float(current_values[i])),
            (starts[i], float(start_values[i])),
        ]
        # repro: allow[hot-path-purity] tuner boundary: decodes at most two rows (climbed optimum, original start) per start
        for row, row_value in candidate_pool:
            config = decode(row)
            if space.freeze(config) in excluded:
                continue
            if row_value > -np.inf:
                winners.append((config, row_value))
            break
    winners.sort(key=lambda pair: -pair[1])

    results: list[tuple[Configuration, float]] = []
    taken: set[tuple] = set()
    for config, config_value in winners:
        key = space.freeze(config)
        if key in taken:
            continue
        taken.add(key)
        results.append((config, config_value))
        if len(results) == k:
            return results, start_indices

    # Back-fill from the ranked pool itself, mirroring the random-batch path.
    for i in order:
        if len(results) == k:
            break
        if not np.isfinite(pool_values[i]):
            continue
        config = decode(pool_rows[i])  # repro: allow[hot-path-purity] boundary back-fill: decodes at most k ranked winners
        key = space.freeze(config)
        if key in excluded or key in taken:
            continue
        taken.add(key)
        results.append((config, float(pool_values[i])))
    return results, start_indices
