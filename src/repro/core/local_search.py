"""Multi-start local search for acquisition-function optimization.

BaCO optimizes its acquisition function (Sec. 3.3) by

1. sampling a large batch of feasible configurations uniformly at random
   (from the Chain-of-Trees where available),
2. keeping the best few as starting points,
3. hill-climbing each start over the *feasible* one-parameter-change
   neighbourhood until no neighbour improves the acquisition value,
4. returning the best configuration found that has not already been
   evaluated.

Because known constraints are enforced when generating both the random batch
and the neighbourhoods, the acquisition optimizer only ever proposes feasible
configurations.

The hill-climbing phase runs all starts in **lockstep**: at every step the
neighbourhoods of every still-active start are concatenated and scored with
a *single* acquisition call — one batched GP predict and one batched
feasibility pass per step, instead of one per start.  Each start still takes
its own argmax over its own neighbourhood slice, so the per-start climbing
trajectories are exactly those of the sequential formulation.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from ..space.space import Configuration, SearchSpace

__all__ = [
    "LocalSearchSettings",
    "multistart_local_search",
    "multistart_local_search_batch",
    "random_candidates",
]


class LocalSearchSettings:
    """Knobs of the acquisition optimizer."""

    def __init__(
        self,
        n_random_samples: int = 256,
        n_starts: int = 5,
        max_steps: int = 32,
        biased_cot: bool = False,
    ) -> None:
        if n_random_samples < 1 or n_starts < 1 or max_steps < 0:
            raise ValueError("local-search settings must be positive")
        self.n_random_samples = n_random_samples
        self.n_starts = min(n_starts, n_random_samples)
        self.max_steps = max_steps
        self.biased_cot = biased_cot


def random_candidates(
    space: SearchSpace,
    n_samples: int,
    rng: np.random.Generator,
    biased_cot: bool = False,
) -> list[Configuration]:
    """Uniform feasible candidates; duplicates are collapsed."""
    configs = space.sample(rng, n_samples, biased_cot=biased_cot)
    unique: dict[tuple, Configuration] = {}
    for config in configs:
        unique.setdefault(space.freeze(config), config)
    return list(unique.values())


def multistart_local_search(
    space: SearchSpace,
    acquisition: Callable[[Sequence[Mapping[str, Any]]], np.ndarray],
    rng: np.random.Generator,
    settings: LocalSearchSettings | None = None,
    exclude: Iterable[tuple] = (),
) -> tuple[Configuration | None, float]:
    """Return the best configuration according to ``acquisition``.

    ``exclude`` contains frozen keys of configurations that must not be
    returned (typically those already evaluated).  If every candidate is
    excluded or has acquisition ``-inf``, ``(None, -inf)`` is returned and the
    caller should fall back to random sampling.
    """
    ranked = multistart_local_search_batch(
        space, acquisition, rng, settings=settings, exclude=exclude, k=1
    )
    if not ranked:
        return None, -np.inf
    return ranked[0]


def multistart_local_search_batch(
    space: SearchSpace,
    acquisition: Callable[[Sequence[Mapping[str, Any]]], np.ndarray],
    rng: np.random.Generator,
    settings: LocalSearchSettings | None = None,
    exclude: Iterable[tuple] = (),
    k: int = 1,
) -> list[tuple[Configuration, float]]:
    """The top-``k`` distinct configurations according to ``acquisition``.

    One random-candidate batch and one lockstep multi-start climb serve the
    whole batch: the per-start local optima are ranked by acquisition value
    (de-duplicated by frozen key) and, when fewer than ``k`` remain, the
    ranked random candidates back-fill the rest.  With ``k == 1`` the result
    is exactly :func:`multistart_local_search`'s, including its RNG
    consumption, so serial drivers stay bit-identical.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    settings = settings or LocalSearchSettings()
    excluded = set(exclude)

    candidates = random_candidates(
        space, settings.n_random_samples, rng, biased_cot=settings.biased_cot
    )
    if not candidates:
        return []
    values = np.asarray(acquisition(candidates), dtype=float)

    order = np.argsort(-values)
    starts = [candidates[i] for i in order[: settings.n_starts]]
    start_values = [float(values[i]) for i in order[: settings.n_starts]]

    # Lockstep hill climbing: per step, one batched acquisition call scores
    # the union of every active start's neighbourhood; each start then takes
    # the argmax within its own slice, exactly as if it climbed alone.
    current = list(starts)
    current_values = list(start_values)
    active = list(range(len(starts)))
    for _ in range(settings.max_steps):
        if not active:
            break
        batch: list[Configuration] = []
        spans: list[tuple[int, int, int]] = []  # (start index, lo, hi)
        for i in active:
            neighbours = space.neighbours(current[i], feasible_only=True)
            if neighbours:
                spans.append((i, len(batch), len(batch) + len(neighbours)))
                batch.extend(neighbours)
        if not batch:
            break
        batch_values = np.asarray(acquisition(batch), dtype=float)
        still_active: list[int] = []
        for i, lo, hi in spans:
            span_values = batch_values[lo:hi]
            idx = int(np.argmax(span_values))
            if span_values[idx] <= current_values[i]:
                continue
            current[i] = batch[lo + idx]
            current_values[i] = float(span_values[idx])
            still_active.append(i)
        active = still_active

    # Per start: the first non-excluded of (climbed optimum, original start),
    # kept only when its value beats -inf (NaN and -inf never win, matching
    # the strict ``>`` of the single-result selection).
    winners: list[tuple[Configuration, float]] = []
    for i, (config, value) in enumerate(zip(starts, start_values)):
        candidate_pool = [(current[i], current_values[i]), (config, value)]
        for cand, cand_value in candidate_pool:
            if space.freeze(cand) in excluded:
                continue
            if cand_value > -np.inf:
                winners.append((cand, float(cand_value)))
            break
    # Stable sort: ties keep start order, so the first entry equals the old
    # single-result argmax.
    winners.sort(key=lambda pair: -pair[1])

    results: list[tuple[Configuration, float]] = []
    taken: set[tuple] = set()
    for cand, cand_value in winners:
        key = space.freeze(cand)
        if key in taken:
            continue
        taken.add(key)
        results.append((cand, cand_value))
        if len(results) == k:
            return results

    # Not enough distinct local optima: back-fill from the ranked random
    # candidates (also the fallback when every optimum was already evaluated).
    for i in order:
        if len(results) == k:
            break
        key = space.freeze(candidates[i])
        if key in excluded or key in taken or not np.isfinite(values[i]):
            continue
        taken.add(key)
        results.append((candidates[i], float(values[i])))
    return results
