"""The BaCO optimizer: acquisition, feasibility model, local search, sessions."""

from .acquisition import AcquisitionFunction, expected_improvement, lower_confidence_bound
from .baco import BacoSettings, BacoTuner
from .doe import default_doe_size, initial_design, initial_design_queue
from .feasibility import FeasibilityModel, FeasibilityThresholdSchedule
from .local_search import (
    LocalSearchSettings,
    multistart_local_search,
    multistart_local_search_batch,
    random_candidates,
)
from .result import Evaluation, ObjectiveFunction, ObjectiveResult, TuningHistory
from .session import Suggestion, TuningSession, drive
from .tuner import Tuner

__all__ = [
    "AcquisitionFunction",
    "BacoSettings",
    "BacoTuner",
    "Evaluation",
    "FeasibilityModel",
    "FeasibilityThresholdSchedule",
    "LocalSearchSettings",
    "ObjectiveFunction",
    "ObjectiveResult",
    "Suggestion",
    "Tuner",
    "TuningHistory",
    "TuningSession",
    "default_doe_size",
    "drive",
    "expected_improvement",
    "initial_design",
    "initial_design_queue",
    "lower_confidence_bound",
    "multistart_local_search",
    "multistart_local_search_batch",
    "random_candidates",
]
