"""The BaCO optimizer: acquisition, feasibility model, local search, main loop."""

from .acquisition import AcquisitionFunction, expected_improvement, lower_confidence_bound
from .baco import BacoSettings, BacoTuner
from .doe import default_doe_size, initial_design
from .feasibility import FeasibilityModel, FeasibilityThresholdSchedule
from .local_search import LocalSearchSettings, multistart_local_search, random_candidates
from .result import Evaluation, ObjectiveFunction, ObjectiveResult, TuningHistory
from .tuner import Tuner

__all__ = [
    "AcquisitionFunction",
    "BacoSettings",
    "BacoTuner",
    "Evaluation",
    "FeasibilityModel",
    "FeasibilityThresholdSchedule",
    "LocalSearchSettings",
    "ObjectiveFunction",
    "ObjectiveResult",
    "Tuner",
    "TuningHistory",
    "default_doe_size",
    "expected_improvement",
    "initial_design",
    "lower_confidence_bound",
    "multistart_local_search",
    "random_candidates",
]
