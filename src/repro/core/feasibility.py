"""Hidden-constraint (feasibility) modelling.

Some constraints are only discovered by running the compiler: a GPU kernel
that exceeds shared memory, an FPGA design that does not fit the device, a
schedule that crashes code generation.  BaCO learns these *hidden constraints*
online (Sec. 4.2): a random-forest classifier is trained on all evaluated
configurations with a feasible / infeasible label, and the predicted
probability of feasibility multiplies the EI acquisition.

To stabilize the interaction between the feasibility classifier and the GP —
which otherwise tends to chase "interesting" infeasible regions — BaCO only
considers configurations whose predicted feasibility exceeds a minimum limit
ε_f.  ε_f is re-sampled every iteration with ``P(ε_f = 0) > 0`` so no region
is permanently excluded.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from ..models.random_forest import RandomForestClassifier
from ..space.space import SearchSpace

__all__ = ["FeasibilityModel", "FeasibilityThresholdSchedule"]


class FeasibilityModel:
    """Random-forest probability-of-feasibility predictor."""

    def __init__(
        self,
        space: SearchSpace,
        n_trees: int = 24,
        max_depth: int = 10,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.space = space
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._forest = RandomForestClassifier(
            n_trees=n_trees, max_depth=max_depth, rng=self._rng
        )
        self._n_feasible = 0
        self._n_infeasible = 0

    @property
    def is_trained(self) -> bool:
        """The model is only useful once both classes have been observed."""
        return self._n_feasible > 0 and self._n_infeasible > 0 and self._forest.is_fitted

    @property
    def encoder(self):
        """The space's shared :class:`~repro.space.encoding.ConfigEncoder`."""
        return self.space.encoder

    def fit(
        self,
        configurations: Sequence[Mapping[str, Any]],
        feasible: Sequence[bool],
    ) -> None:
        """(Re-)train on every configuration evaluated so far.

        Thin adapter over :meth:`fit_rows` for configuration dicts.
        """
        self.fit_rows(self.encoder.encode_batch(configurations), feasible)

    def fit_rows(self, rows: np.ndarray, feasible: Sequence[bool]) -> None:
        """(Re-)train on pre-encoded rows."""
        if len(rows) != len(feasible):
            raise ValueError("rows and labels must have the same length")
        labels = np.asarray([1.0 if f else 0.0 for f in feasible])
        self._n_feasible = int(labels.sum())
        self._n_infeasible = int(len(labels) - labels.sum())
        if self._n_feasible == 0 or self._n_infeasible == 0:
            # Only one class seen: the classifier would be degenerate; predict
            # the observed class probability instead (handled in predict).
            return
        self._forest.fit(rows, labels)

    def _untrained_probability(self, n: int) -> np.ndarray:
        # With no evidence of infeasibility (or none of feasibility) fall
        # back to an uninformative estimate.
        total = self._n_feasible + self._n_infeasible
        if total == 0:
            return np.ones(n)
        return np.full(n, (self._n_feasible + 1.0) / (total + 2.0))

    def predict_probability(
        self, configurations: Sequence[Mapping[str, Any]]
    ) -> np.ndarray:
        """Probability that each configuration satisfies the hidden constraints."""
        if not self.is_trained:
            return self._untrained_probability(len(configurations))
        return self._forest.predict_proba(self.encoder.encode_batch(configurations))

    def predict_probability_rows(self, rows: np.ndarray) -> np.ndarray:
        """Feasibility probabilities for pre-encoded rows (batched RF pass)."""
        if not self.is_trained:
            return self._untrained_probability(len(rows))
        return self._forest.predict_proba(rows)


class FeasibilityThresholdSchedule:
    """The randomly re-sampled minimum feasibility limit ε_f of Sec. 4.2.

    Each iteration draws a fresh threshold.  With probability
    ``zero_probability`` the threshold is 0 (no filtering), which guarantees
    asymptotically that no feasible solution is permanently cut away;
    otherwise the threshold is drawn uniformly from ``(0, max_threshold]``.
    """

    def __init__(
        self,
        zero_probability: float = 0.3,
        max_threshold: float = 0.8,
        enabled: bool = True,
    ) -> None:
        if not 0.0 < zero_probability <= 1.0:
            raise ValueError("zero_probability must be in (0, 1]")
        if not 0.0 < max_threshold <= 1.0:
            raise ValueError("max_threshold must be in (0, 1]")
        self.zero_probability = zero_probability
        self.max_threshold = max_threshold
        self.enabled = enabled

    def sample(self, rng: np.random.Generator) -> float:
        if not self.enabled:
            return 0.0
        if rng.random() < self.zero_probability:
            return 0.0
        return float(rng.uniform(0.0, self.max_threshold))
