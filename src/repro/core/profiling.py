"""Per-phase wall-clock profiling of the tuner's recommendation loop.

The BaCO loop spends its time between black-box evaluations in five places:
drawing feasible candidates (**sample**), fitting the surrogate and the
feasibility model (**fit**), GP/RF posterior prediction (**predict**), the
EI / feasibility-weighting arithmetic (**ei**), and the multistart local
search bookkeeping around them (**climb**).  :class:`PhaseProfiler` attributes
wall-clock to those phases with *exclusive* (self-time) accounting: entering
a nested phase pauses the enclosing one, so the per-phase seconds always sum
to the total time spent inside any phase — a predict issued from inside the
climb counts as ``predict``, not twice.

The profiler is pure observation: it never touches RNG streams or model
arithmetic, so enabling it cannot perturb a trajectory.  Every
:class:`~repro.core.tuner.Tuner` carries one as ``phase_profiler``; the
service ``status`` op and the ``end_to_end`` benchmark read the summary.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["PHASES", "PhaseProfiler"]

#: canonical phase names, in loop order (summaries always list all five)
PHASES = ("sample", "fit", "predict", "ei", "climb")


class PhaseProfiler:
    """Exclusive wall-clock accounting over named phases.

    ``phase(name)`` is a re-entrant context manager; nesting pauses the outer
    phase's clock (see module docstring).  ``seconds`` / ``calls`` accumulate
    until :meth:`reset`.
    """

    __slots__ = ("seconds", "calls", "_stack")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}
        #: [name, clock-resumed-at] frames of currently open phases
        self._stack: list[list[Any]] = []

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        now = time.perf_counter()
        if self._stack:
            outer = self._stack[-1]
            self.seconds[outer[0]] = self.seconds.get(outer[0], 0.0) + (now - outer[1])
        frame = [name, now]
        self._stack.append(frame)
        try:
            yield
        finally:
            end = time.perf_counter()
            self._stack.pop()
            self.seconds[name] = self.seconds.get(name, 0.0) + (end - frame[1])
            self.calls[name] = self.calls.get(name, 0) + 1
            if self._stack:
                self._stack[-1][1] = end

    def reset(self) -> None:
        self.seconds = {}
        self.calls = {}
        self._stack = []

    def summary(self) -> dict[str, Any]:
        """JSON-ready phase breakdown: seconds and call counts per phase.

        Always contains every canonical phase (zero-filled), plus any
        ad-hoc phases that were recorded, so downstream schema checks can
        rely on the key set.
        """
        names = list(PHASES) + sorted(set(self.seconds) - set(PHASES))
        return {
            "seconds": {n: float(self.seconds.get(n, 0.0)) for n in names},
            "calls": {n: int(self.calls.get(n, 0)) for n in names},
        }
