"""Acquisition functions.

BaCO uses Expected Improvement (EI) with two modifications (Sec. 3.3 and 4.2):

* the improvement is computed against the *noise-free* GP prediction
  (``include_noise=False``), which stops EI from repeatedly re-sampling
  already-good points when evaluations are noisy;
* the EI is multiplied by the probability of feasibility predicted by the
  hidden-constraint model, and configurations whose predicted feasibility is
  below a (randomly re-sampled) threshold ε_f are excluded.

All functions operate on the GP's *model scale* (log-transformed and
standardized objective), in minimization form.

:class:`AcquisitionFunction` is batch-first: a call encodes the whole
candidate set once, runs a single GP predict over the encoded rows, and —
when the feasibility model shares the GP's encoding layout — reuses the same
rows for a single batched random-forest pass.
"""
# repro: hot-path — row-space module: per-row Python loops, .tolist(), and in-loop decode are flagged (see repro.analysis)

from __future__ import annotations

import math
from contextlib import nullcontext
from typing import Any, Mapping, Sequence

import numpy as np
from scipy.special import ndtr

from ..models.gp import GaussianProcess

__all__ = [
    "expected_improvement",
    "lower_confidence_bound",
    "floored_std",
    "AcquisitionFunction",
    "FusedAcquisitionScorer",
]

#: floor applied to the predictive variance before taking the square root; a
#: single shared constant so EI and LCB can never drift apart
_VARIANCE_FLOOR = 1e-18
#: sqrt(2*pi), precomputed for the inline standard-normal pdf
_SQRT_2PI = np.sqrt(2.0 * np.pi)


def floored_std(variance: np.ndarray) -> np.ndarray:
    """Predictive standard deviation with the shared variance floor applied."""
    return np.sqrt(np.maximum(variance, _VARIANCE_FLOOR))


def expected_improvement(
    mean: np.ndarray, variance: np.ndarray, best_value: float, xi: float = 0.0
) -> np.ndarray:
    """EI for minimization: ``E[max(best - Y, 0)]`` under ``Y ~ N(mean, variance)``.

    The Gaussian cdf/pdf are evaluated directly (``scipy.special.ndtr`` and an
    inline ``exp(-z²/2)/√(2π)``) instead of through ``scipy.stats.norm``:
    ``ndtr`` is the exact primitive ``norm.cdf`` bottoms out in and the pdf
    expression replicates ``_norm_pdf`` term for term, so the values are
    bit-identical while skipping the frozen-distribution argument machinery —
    this is the hottest scalar kernel of the acquisition loop.
    """
    std = floored_std(variance)
    improvement = best_value - mean - xi
    z = improvement / std
    ei = improvement * ndtr(z) + std * (np.exp(-z * z / 2.0) / _SQRT_2PI)
    return np.maximum(ei, 0.0)


def lower_confidence_bound(
    mean: np.ndarray, variance: np.ndarray, beta: float = 2.0
) -> np.ndarray:
    """Negated LCB so that *larger is better*, like EI (for minimization)."""
    return -(mean - beta * floored_std(variance))


class AcquisitionFunction:
    """Feasibility-weighted (noiseless) EI over configurations.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.models.gp.GaussianProcess` (or any object with
        a compatible ``predict`` / ``to_model_scale`` interface).
    best_value:
        Best *raw* feasible objective value observed so far.
    feasibility_model:
        Optional model with ``predict_probability(configs) -> array``; when
        given, the EI of each configuration is multiplied by its probability
        of feasibility and configurations below ``feasibility_threshold`` are
        assigned an acquisition value of ``-inf``.
    noiseless:
        Use the noise-free predictive variance (BaCO's modified EI).
    kind:
        ``"ei"`` (default) or ``"lcb"``.
    """

    def __init__(
        self,
        model: GaussianProcess,
        best_value: float,
        feasibility_model: Any | None = None,
        feasibility_threshold: float = 0.0,
        noiseless: bool = True,
        kind: str = "ei",
        lcb_beta: float = 2.0,
        profiler: Any | None = None,
    ) -> None:
        if kind not in ("ei", "lcb"):
            raise ValueError(f"unknown acquisition kind {kind!r}")
        if not math.isfinite(best_value):
            raise ValueError("best_value must be finite to compute EI")
        self.model = model
        #: optional :class:`~repro.core.profiling.PhaseProfiler`; attributes
        #: the row-path predict / EI wall-clock to their phases (observation
        #: only — never touches the arithmetic or any RNG)
        self.profiler = profiler
        self.best_value = best_value
        self._best_model_scale = float(model.to_model_scale(best_value))
        self.feasibility_model = feasibility_model
        self.feasibility_threshold = feasibility_threshold
        self.noiseless = noiseless
        self.kind = kind
        self.lcb_beta = lcb_beta
        # The GP encodes with the (possibly transform-adjusted) model space,
        # the feasibility model with the original space.  When the two
        # layouts warp values identically, one encoded matrix serves both.
        self._shared_encoding = (
            feasibility_model is not None
            and hasattr(model, "encoder")
            and hasattr(feasibility_model, "encoder")
            and model.encoder.signature() == feasibility_model.encoder.signature()
        )

    def __call__(self, configurations: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Acquisition values (larger is better) for a batch of configurations.

        The batch is encoded once and pushed through a single GP predict
        call (and, when trained, a single feasibility-model pass).
        """
        if not configurations:
            return np.empty(0)
        rows = None
        if hasattr(self.model, "encoder"):
            rows = self.model.encoder.encode_batch(configurations)
            mean, variance = self.model.predict_rows(
                rows, include_noise=not self.noiseless
            )
        else:
            mean, variance = self.model.predict(
                configurations, include_noise=not self.noiseless
            )
        if self.kind == "ei":
            values = expected_improvement(mean, variance, self._best_model_scale)
        else:
            values = lower_confidence_bound(mean, variance, self.lcb_beta)
        if self.feasibility_model is not None and self.feasibility_model.is_trained:
            if self._shared_encoding and rows is not None:
                probability = self.feasibility_model.predict_probability_rows(rows)
            else:
                probability = self.feasibility_model.predict_probability(configurations)
            values = values * probability
            values = np.where(
                probability >= self.feasibility_threshold, values, -np.inf
            )
        return values

    def evaluate_rows(
        self,
        rows: np.ndarray,
        encoder: Any,
        cross_distance: np.ndarray | None = None,
    ) -> np.ndarray:
        """Acquisition values for pre-encoded rows in ``encoder``'s layout.

        The fast path of the row-space acquisition optimizer: when the GP's
        model-space encoding matches the search space's (``signature()``
        equality — true unless a transform ablation changes the warps), the
        candidate matrix flows straight into ``predict_rows`` and the
        feasibility RF without ever materializing configuration dicts.
        Mismatching layouts decode once and re-encode for the model — the
        correctness fallback for e.g. the no-transformations ablation.

        ``cross_distance`` — cached test-train cross tensor for ``rows`` (the
        persistent candidate pool's :class:`~repro.models.distances.
        CrossDistanceTensor` view); forwarded to
        :meth:`~repro.models.gp.GaussianProcess.predict_rows` on the
        shared-encoding fast path so the predict skips distance computation
        entirely.  Only valid when the model rows coincide with ``rows``
        (signature equality), which the caller guarantees.
        """
        if len(rows) == 0:
            return np.empty(0)
        include_noise = not self.noiseless
        profiler = self.profiler
        predict_phase = (
            profiler.phase("predict") if profiler is not None else nullcontext()
        )
        configurations = None
        with predict_phase:
            if (
                hasattr(self.model, "encoder")
                and self.model.encoder.signature() == encoder.signature()
            ):
                if cross_distance is not None:
                    mean, variance = self.model.predict_rows(
                        rows, include_noise=include_noise, cross_distance=cross_distance
                    )
                else:
                    # keyword omitted so duck-typed models with the plain
                    # two-argument predict_rows keep working
                    mean, variance = self.model.predict_rows(
                        rows, include_noise=include_noise
                    )
            else:
                configurations = encoder.decode_batch(rows)
                if hasattr(self.model, "encoder"):
                    mean, variance = self.model.predict_rows(
                        self.model.encoder.encode_batch(configurations),
                        include_noise=include_noise,
                    )
                else:
                    mean, variance = self.model.predict(
                        configurations, include_noise=include_noise
                    )
        ei_phase = profiler.phase("ei") if profiler is not None else nullcontext()
        with ei_phase:
            if self.kind == "ei":
                values = expected_improvement(mean, variance, self._best_model_scale)
            else:
                values = lower_confidence_bound(mean, variance, self.lcb_beta)
            if self.feasibility_model is not None and self.feasibility_model.is_trained:
                if (
                    hasattr(self.feasibility_model, "encoder")
                    and self.feasibility_model.encoder.signature() == encoder.signature()
                ):
                    probability = self.feasibility_model.predict_probability_rows(rows)
                else:
                    # duck-typed feasibility models (no encoder attribute) get
                    # the dict surface, mirroring __call__'s hasattr guard
                    if configurations is None:
                        configurations = encoder.decode_batch(rows)
                    probability = self.feasibility_model.predict_probability(
                        configurations
                    )
                values = values * probability
                values = np.where(
                    probability >= self.feasibility_threshold, values, -np.inf
                )
        return values

    def single(self, configuration: Mapping[str, Any]) -> float:
        return float(self([configuration])[0])


class FusedAcquisitionScorer:
    """Memoizing, buffer-reusing scorer for one acquisition maximization.

    Valid for the lifetime of a single ask: the surrogate, the incumbent, and
    the feasibility threshold ε_f are fixed, so every distinct candidate row
    maps to one acquisition value.  The scorer exploits that three ways:

    * **per-row memoization** — values are cached by ``row.tobytes()``, so
      climb steps that re-visit rows (overlapping neighbourhoods, re-climbed
      pool starts) never re-predict;
    * **fused batch pass** — the unseen rows of a batch go through a single
      predict → EI → feasibility-weighting pipeline
      (:meth:`AcquisitionFunction.evaluate_rows`), not one call per row;
    * **workspace reuse** — assembled values land in one preallocated buffer
      that grows monotonically, so the lockstep climb allocates nothing per
      step.  The returned array is a view into that workspace: consume it
      before the next ``score_rows`` call.

    :meth:`prime_pool` additionally accepts the pool's cached cross-distance
    tensor, turning the pool-scoring predict into a pure kernel-apply.
    """

    def __init__(self, acquisition: AcquisitionFunction, encoder: Any) -> None:
        self._acquisition = acquisition
        self._encoder = encoder
        self._memo: dict[bytes, float] = {}
        self._values_buf = np.empty(0)

    @property
    def n_memoized(self) -> int:
        return len(self._memo)

    def _workspace(self, n: int) -> np.ndarray:
        if self._values_buf.shape[0] < n:
            self._values_buf = np.empty(max(n, 2 * self._values_buf.shape[0]))
        return self._values_buf[:n]

    def prime_pool(
        self, rows: np.ndarray, cross_distance: np.ndarray | None = None
    ) -> np.ndarray:
        """Score the candidate pool in one pass and seed the memo with it."""
        values = np.asarray(
            self._acquisition.evaluate_rows(
                rows, self._encoder, cross_distance=cross_distance
            ),
            dtype=float,
        )
        memo = self._memo
        # repro: allow[hot-path-purity] memo seeding: one dict insert per row after a single fused batch predict — no vectorized dict alternative
        for row, value in zip(rows, values):
            memo[row.tobytes()] = float(value)
        return values

    def score_rows(self, rows: np.ndarray) -> np.ndarray:
        """Acquisition values for ``rows``; memo hits skip the model entirely.

        Returns a view into the reused workspace buffer — copy any values
        that must survive the next call.
        """
        n = len(rows)
        out = self._workspace(n)
        if n == 0:
            return out
        memo = self._memo
        keys: list[bytes] = []
        unseen: list[int] = []
        for i in range(n):
            key = rows[i].tobytes()
            keys.append(key)
            cached = memo.get(key)
            if cached is None:
                unseen.append(i)
            else:
                out[i] = cached
        if unseen:
            fresh = np.asarray(
                self._acquisition.evaluate_rows(rows[unseen], self._encoder),
                dtype=float,
            )
            for j, i in enumerate(unseen):
                value = float(fresh[j])
                memo[keys[i]] = value
                out[i] = value
        return out
