"""Acquisition functions.

BaCO uses Expected Improvement (EI) with two modifications (Sec. 3.3 and 4.2):

* the improvement is computed against the *noise-free* GP prediction
  (``include_noise=False``), which stops EI from repeatedly re-sampling
  already-good points when evaluations are noisy;
* the EI is multiplied by the probability of feasibility predicted by the
  hidden-constraint model, and configurations whose predicted feasibility is
  below a (randomly re-sampled) threshold ε_f are excluded.

All functions operate on the GP's *model scale* (log-transformed and
standardized objective), in minimization form.

:class:`AcquisitionFunction` is batch-first: a call encodes the whole
candidate set once, runs a single GP predict over the encoded rows, and —
when the feasibility model shares the GP's encoding layout — reuses the same
rows for a single batched random-forest pass.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Sequence

import numpy as np
from scipy import stats

from ..models.gp import GaussianProcess

__all__ = [
    "expected_improvement",
    "lower_confidence_bound",
    "AcquisitionFunction",
]


def expected_improvement(
    mean: np.ndarray, variance: np.ndarray, best_value: float, xi: float = 0.0
) -> np.ndarray:
    """EI for minimization: ``E[max(best - Y, 0)]`` under ``Y ~ N(mean, variance)``."""
    std = np.sqrt(np.maximum(variance, 1e-18))
    improvement = best_value - mean - xi
    z = improvement / std
    ei = improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z)
    return np.maximum(ei, 0.0)


def lower_confidence_bound(
    mean: np.ndarray, variance: np.ndarray, beta: float = 2.0
) -> np.ndarray:
    """Negated LCB so that *larger is better*, like EI (for minimization)."""
    return -(mean - beta * np.sqrt(np.maximum(variance, 1e-18)))


class AcquisitionFunction:
    """Feasibility-weighted (noiseless) EI over configurations.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.models.gp.GaussianProcess` (or any object with
        a compatible ``predict`` / ``to_model_scale`` interface).
    best_value:
        Best *raw* feasible objective value observed so far.
    feasibility_model:
        Optional model with ``predict_probability(configs) -> array``; when
        given, the EI of each configuration is multiplied by its probability
        of feasibility and configurations below ``feasibility_threshold`` are
        assigned an acquisition value of ``-inf``.
    noiseless:
        Use the noise-free predictive variance (BaCO's modified EI).
    kind:
        ``"ei"`` (default) or ``"lcb"``.
    """

    def __init__(
        self,
        model: GaussianProcess,
        best_value: float,
        feasibility_model: Any | None = None,
        feasibility_threshold: float = 0.0,
        noiseless: bool = True,
        kind: str = "ei",
        lcb_beta: float = 2.0,
    ) -> None:
        if kind not in ("ei", "lcb"):
            raise ValueError(f"unknown acquisition kind {kind!r}")
        if not math.isfinite(best_value):
            raise ValueError("best_value must be finite to compute EI")
        self.model = model
        self.best_value = best_value
        self._best_model_scale = float(model.to_model_scale(best_value))
        self.feasibility_model = feasibility_model
        self.feasibility_threshold = feasibility_threshold
        self.noiseless = noiseless
        self.kind = kind
        self.lcb_beta = lcb_beta
        # The GP encodes with the (possibly transform-adjusted) model space,
        # the feasibility model with the original space.  When the two
        # layouts warp values identically, one encoded matrix serves both.
        self._shared_encoding = (
            feasibility_model is not None
            and hasattr(model, "encoder")
            and hasattr(feasibility_model, "encoder")
            and model.encoder.signature() == feasibility_model.encoder.signature()
        )

    def __call__(self, configurations: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Acquisition values (larger is better) for a batch of configurations.

        The batch is encoded once and pushed through a single GP predict
        call (and, when trained, a single feasibility-model pass).
        """
        if not configurations:
            return np.empty(0)
        rows = None
        if hasattr(self.model, "encoder"):
            rows = self.model.encoder.encode_batch(configurations)
            mean, variance = self.model.predict_rows(
                rows, include_noise=not self.noiseless
            )
        else:
            mean, variance = self.model.predict(
                configurations, include_noise=not self.noiseless
            )
        if self.kind == "ei":
            values = expected_improvement(mean, variance, self._best_model_scale)
        else:
            values = lower_confidence_bound(mean, variance, self.lcb_beta)
        if self.feasibility_model is not None and self.feasibility_model.is_trained:
            if self._shared_encoding and rows is not None:
                probability = self.feasibility_model.predict_probability_rows(rows)
            else:
                probability = self.feasibility_model.predict_probability(configurations)
            values = values * probability
            values = np.where(
                probability >= self.feasibility_threshold, values, -np.inf
            )
        return values

    def evaluate_rows(self, rows: np.ndarray, encoder: Any) -> np.ndarray:
        """Acquisition values for pre-encoded rows in ``encoder``'s layout.

        The fast path of the row-space acquisition optimizer: when the GP's
        model-space encoding matches the search space's (``signature()``
        equality — true unless a transform ablation changes the warps), the
        candidate matrix flows straight into ``predict_rows`` and the
        feasibility RF without ever materializing configuration dicts.
        Mismatching layouts decode once and re-encode for the model — the
        correctness fallback for e.g. the no-transformations ablation.
        """
        if len(rows) == 0:
            return np.empty(0)
        include_noise = not self.noiseless
        configurations = None
        if (
            hasattr(self.model, "encoder")
            and self.model.encoder.signature() == encoder.signature()
        ):
            mean, variance = self.model.predict_rows(rows, include_noise=include_noise)
        else:
            configurations = encoder.decode_batch(rows)
            if hasattr(self.model, "encoder"):
                mean, variance = self.model.predict_rows(
                    self.model.encoder.encode_batch(configurations),
                    include_noise=include_noise,
                )
            else:
                mean, variance = self.model.predict(
                    configurations, include_noise=include_noise
                )
        if self.kind == "ei":
            values = expected_improvement(mean, variance, self._best_model_scale)
        else:
            values = lower_confidence_bound(mean, variance, self.lcb_beta)
        if self.feasibility_model is not None and self.feasibility_model.is_trained:
            if (
                hasattr(self.feasibility_model, "encoder")
                and self.feasibility_model.encoder.signature() == encoder.signature()
            ):
                probability = self.feasibility_model.predict_probability_rows(rows)
            else:
                # duck-typed feasibility models (no encoder attribute) get
                # the dict surface, mirroring __call__'s hasattr guard
                if configurations is None:
                    configurations = encoder.decode_batch(rows)
                probability = self.feasibility_model.predict_probability(configurations)
            values = values * probability
            values = np.where(
                probability >= self.feasibility_threshold, values, -np.inf
            )
        return values

    def single(self, configuration: Mapping[str, Any]) -> float:
        return float(self([configuration])[0])
