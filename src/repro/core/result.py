"""Evaluation records and tuning histories.

Every autotuner in this repository (BaCO and the baselines) produces a
:class:`TuningHistory`: the ordered list of black-box evaluations it
performed.  All of the paper's metrics — best-found runtime after a budget,
performance relative to the expert configuration, number of evaluations
needed to match a baseline — are derived from these histories by
:mod:`repro.experiments.metrics`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Protocol, Sequence

import numpy as np

__all__ = [
    "ObjectiveResult",
    "ObjectiveFunction",
    "Evaluation",
    "TuningHistory",
    "configuration_to_json",
    "configuration_from_json",
]


def configuration_to_json(configuration: Mapping[str, Any]) -> dict[str, Any]:
    """A configuration as a JSON-safe dict (permutation tuples become lists)."""
    return {
        k: (list(v) if isinstance(v, tuple) else v) for k, v in configuration.items()
    }


def configuration_from_json(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Inverse of :func:`configuration_to_json` (lists become tuples)."""
    return {
        k: (tuple(v) if isinstance(v, list) else v) for k, v in payload.items()
    }


@dataclass(frozen=True)
class ObjectiveResult:
    """The outcome of running one configuration through the compiler toolchain.

    ``value`` is the measured runtime (lower is better).  ``feasible`` is
    ``False`` when a *hidden* constraint was violated (e.g. the generated GPU
    kernel did not fit in memory); in that case ``value`` may be ``inf``.
    """

    value: float
    feasible: bool = True

    def __post_init__(self) -> None:
        if self.feasible and not math.isfinite(self.value):
            raise ValueError("feasible evaluations must have a finite value")


class ObjectiveFunction(Protocol):
    """A black-box compiler toolchain: configuration in, runtime out."""

    def __call__(self, configuration: Mapping[str, Any]) -> ObjectiveResult: ...


@dataclass(frozen=True)
class Evaluation:
    """One evaluated configuration, in the order the tuner requested it."""

    index: int
    configuration: dict[str, Any]
    value: float
    feasible: bool
    phase: str = "learning"

    @property
    def objective(self) -> float:
        """Value used for minimization; infeasible points count as +inf."""
        return self.value if self.feasible else math.inf


@dataclass
class TuningHistory:
    """The full trace of one autotuning run."""

    tuner_name: str
    benchmark_name: str = ""
    seed: int | None = None
    evaluations: list[Evaluation] = field(default_factory=list)
    #: wall-clock seconds spent inside the tuner (excludes black-box time)
    tuner_seconds: float = 0.0
    #: wall-clock seconds spent evaluating the black box
    evaluation_seconds: float = 0.0

    # ------------------------------------------------------------------
    def append(
        self,
        configuration: Mapping[str, Any],
        result: ObjectiveResult,
        phase: str = "learning",
    ) -> Evaluation:
        evaluation = Evaluation(
            index=len(self.evaluations),
            configuration=dict(configuration),
            value=result.value,
            feasible=result.feasible,
            phase=phase,
        )
        self.evaluations.append(evaluation)
        return evaluation

    def __len__(self) -> int:
        return len(self.evaluations)

    def __iter__(self):
        return iter(self.evaluations)

    # ------------------------------------------------------------------
    @property
    def n_feasible(self) -> int:
        return sum(1 for e in self.evaluations if e.feasible)

    @property
    def feasible_evaluations(self) -> list[Evaluation]:
        return [e for e in self.evaluations if e.feasible]

    def best(self, budget: int | None = None) -> Evaluation | None:
        """Best feasible evaluation within the first ``budget`` evaluations."""
        pool = self.evaluations if budget is None else self.evaluations[:budget]
        feasible = [e for e in pool if e.feasible]
        if not feasible:
            return None
        return min(feasible, key=lambda e: e.value)

    def best_value(self, budget: int | None = None) -> float:
        best = self.best(budget)
        return best.value if best is not None else math.inf

    def best_so_far(self, budget: int | None = None) -> np.ndarray:
        """Running minimum of feasible values (``inf`` before the first feasible)."""
        pool = self.evaluations if budget is None else self.evaluations[:budget]
        out = np.empty(len(pool))
        current = math.inf
        for i, evaluation in enumerate(pool):
            if evaluation.feasible and evaluation.value < current:
                current = evaluation.value
            out[i] = current
        return out

    def evaluations_to_reach(self, threshold: float) -> int | None:
        """Number of evaluations needed to reach ``value <= threshold`` (or None)."""
        for evaluation in self.evaluations:
            if evaluation.feasible and evaluation.value <= threshold:
                return evaluation.index + 1
        return None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation (for persisting experiment runs)."""
        return {
            "tuner": self.tuner_name,
            "benchmark": self.benchmark_name,
            "seed": self.seed,
            "tuner_seconds": self.tuner_seconds,
            "evaluation_seconds": self.evaluation_seconds,
            "evaluations": [
                {
                    "index": e.index,
                    "configuration": configuration_to_json(e.configuration),
                    "value": e.value,
                    "feasible": e.feasible,
                    "phase": e.phase,
                }
                for e in self.evaluations
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TuningHistory":
        history = cls(
            tuner_name=payload["tuner"],
            benchmark_name=payload.get("benchmark", ""),
            seed=payload.get("seed"),
            tuner_seconds=payload.get("tuner_seconds", 0.0),
            evaluation_seconds=payload.get("evaluation_seconds", 0.0),
        )
        for entry in payload["evaluations"]:
            config = configuration_from_json(entry["configuration"])
            history.evaluations.append(
                Evaluation(
                    index=entry["index"],
                    configuration=config,
                    value=entry["value"],
                    feasible=entry["feasible"],
                    phase=entry.get("phase", "learning"),
                )
            )
        return history
