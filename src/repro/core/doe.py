"""Initial design of experiments (DoE).

The first few configurations of a BO run are sampled uniformly at random from
the feasible region (the "initial phase" of Fig. 2).  When the search space
has a Chain-of-Trees, sampling uniformly over leaves removes the structural
bias of sampling per-level (Sec. 4.2); both variants are exposed so the bias
can be studied (CoT-sampling baseline of the evaluation).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import numpy as np

from ..space.space import Configuration, SearchSpace

__all__ = ["initial_design", "initial_design_queue", "default_doe_size"]


def default_doe_size(space: SearchSpace, budget: int) -> int:
    """Paper-style rule of thumb: ~max(D+1, 10% of the budget), capped at budget/3."""
    size = max(space.dimension + 1, budget // 10, 3)
    return max(1, min(size, max(1, budget // 3)))


def initial_design(
    space: SearchSpace,
    n_samples: int,
    rng: np.random.Generator,
    biased_cot: bool = False,
    deduplicate: bool = True,
    max_attempts_factor: int = 20,
) -> list[Configuration]:
    """Sample the initial configurations uniformly from the feasible region."""
    if n_samples < 1:
        raise ValueError("n_samples must be at least 1")
    samples: list[Configuration] = []
    seen: set[tuple] = set()
    attempts = 0
    max_attempts = max_attempts_factor * n_samples
    while len(samples) < n_samples and attempts < max_attempts:
        attempts += 1
        config = space.sample_one(rng, biased_cot=biased_cot)
        key = space.freeze(config)
        if deduplicate and key in seen:
            continue
        seen.add(key)
        samples.append(config)
    # If the space is tiny (fewer feasible points than requested), allow
    # duplicates rather than failing: the tuner still needs a full DoE.
    while len(samples) < n_samples:
        samples.append(space.sample_one(rng, biased_cot=biased_cot))
    return samples


def initial_design_queue(
    space: SearchSpace,
    n_samples: int,
    budget: int,
    rng: np.random.Generator,
    **kwargs,
) -> deque[Configuration]:
    """The initial design as a consumable queue for ask/tell sessions.

    The whole design is drawn up front (capped at ``budget``), exactly as the
    historical push-driven loops did, so session-based runs consume the RNG in
    the same order and stay bit-identical.  The remaining queue is part of the
    tuner's snapshot state.
    """
    return deque(initial_design(space, min(n_samples, budget), rng, **kwargs))
