"""Initial design of experiments (DoE).

The first few configurations of a BO run are sampled uniformly at random from
the feasible region (the "initial phase" of Fig. 2).  When the search space
has a Chain-of-Trees, sampling uniformly over leaves removes the structural
bias of sampling per-level (Sec. 4.2); both variants are exposed so the bias
can be studied (CoT-sampling baseline of the evaluation).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import numpy as np

from ..space.space import Configuration, SearchSpace

__all__ = ["initial_design", "initial_design_queue", "default_doe_size"]


def default_doe_size(space: SearchSpace, budget: int) -> int:
    """Paper-style rule of thumb: ~max(D+1, 10% of the budget), capped at budget/3."""
    size = max(space.dimension + 1, budget // 10, 3)
    return max(1, min(size, max(1, budget // 3)))


def initial_design(
    space: SearchSpace,
    n_samples: int,
    rng: np.random.Generator,
    biased_cot: bool = False,
    deduplicate: bool = True,
    max_attempts_factor: int = 20,
) -> list[Configuration]:
    """Sample the initial configurations uniformly from the feasible region.

    Draws whole row batches through :meth:`SearchSpace.sample_rows` — the
    first batch covers the requested size, follow-up batches cover whatever
    de-duplication rejected — instead of one rejection-sampled configuration
    per loop iteration.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be at least 1")
    samples: list[Configuration] = []
    seen: set[tuple] = set()
    decode = space.encoder.decode
    attempts = 0
    max_attempts = max_attempts_factor * n_samples
    while len(samples) < n_samples and attempts < max_attempts:
        batch = min(n_samples - len(samples), max_attempts - attempts)
        attempts += batch
        for row in space.sample_rows(rng, batch, biased_cot=biased_cot):
            config = decode(row)
            key = space.freeze(config)
            if deduplicate and key in seen:
                continue
            seen.add(key)
            samples.append(config)
    # If the space is tiny (fewer feasible points than requested), allow
    # duplicates rather than failing: the tuner still needs a full DoE.
    if len(samples) < n_samples:
        rows = space.sample_rows(rng, n_samples - len(samples), biased_cot=biased_cot)
        samples.extend(decode(row) for row in rows)
    return samples


def initial_design_queue(
    space: SearchSpace,
    n_samples: int,
    budget: int,
    rng: np.random.Generator,
    **kwargs,
) -> deque[Configuration]:
    """The initial design as a consumable queue for ask/tell sessions.

    The whole design is drawn up front (capped at ``budget``), exactly as the
    historical push-driven loops did, so session-based runs consume the RNG in
    the same order and stay bit-identical.  The remaining queue is part of the
    tuner's snapshot state.
    """
    return deque(initial_design(space, min(n_samples, budget), rng, **kwargs))
