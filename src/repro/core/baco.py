"""The BaCO autotuner: the paper's core contribution.

BaCO is a configuration recommendation–evaluation loop (Fig. 2):

1. **Initial phase** — a small design of experiments is sampled uniformly at
   random from the feasible region (through the Chain-of-Trees when known
   constraints are present) and evaluated.
2. **Learning phase** — each iteration
   a. fits a Gaussian process on the *feasible* observations (Matérn-5/2 over
      per-type distances, gamma lengthscale priors, log-transformed
      objective),
   b. fits a random-forest feasibility classifier on *all* observations
      (hidden constraints),
   c. samples the minimum-feasibility threshold ε_f,
   d. maximizes the feasibility-weighted noiseless EI by multi-start local
      search restricted to the feasible region,
   e. evaluates the proposed configuration through the compiler toolchain and
      appends the result to the history.

The class exposes switches for every design choice studied in the paper's
ablations (Fig. 8–10): permutation metric, log transforms, lengthscale
priors, local search, advanced GP fitting, feasibility model, feasibility
threshold, and the surrogate family (GP vs. RF).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..models.gp import GaussianProcess
from ..models.priors import GammaPrior
from ..models.random_forest import RandomForestRegressor
from ..space.parameters import PermutationParameter
from ..space.space import Configuration, SearchSpace
from .acquisition import AcquisitionFunction
from .doe import default_doe_size, initial_design
from .feasibility import FeasibilityModel, FeasibilityThresholdSchedule
from .local_search import LocalSearchSettings, multistart_local_search, random_candidates
from .tuner import Tuner

__all__ = ["BacoSettings", "BacoTuner"]


@dataclass
class BacoSettings:
    """All tunable design choices of BaCO (defaults match the paper)."""

    #: number of initial random configurations; None = rule-of-thumb from the budget
    doe_size: int | None = None
    #: surrogate model family: "gp" (default) or "rf" (Fig. 8 comparison)
    surrogate: str = "gp"
    #: GP kernel
    kernel: str = "matern52"
    #: semimetric for permutation parameters ("spearman" default, Fig. 9 ablation)
    permutation_metric: str = "spearman"
    #: log-transform exponential parameters and the objective (Sec. 4.1 / 4.2)
    use_transformations: bool = True
    #: gamma priors on the GP lengthscales (Sec. 3.2)
    use_lengthscale_priors: bool = True
    #: multistart L-BFGS hyper-parameter fitting (vs. best-of-prior-samples)
    advanced_gp_fitting: bool = True
    #: use the noise-free EI variant (Sec. 3.3)
    noiseless_ei: bool = True
    #: optimize the acquisition with local search (vs. best-of-random-batch)
    use_local_search: bool = True
    #: model hidden constraints with the RF feasibility classifier (Sec. 4.2)
    use_feasibility_model: bool = True
    #: apply the random minimum-feasibility threshold ε_f
    use_feasibility_threshold: bool = True
    #: local-search settings
    n_random_samples: int = 256
    n_local_search_starts: int = 5
    max_local_search_steps: int = 32
    #: feasibility model / threshold settings
    feasibility_trees: int = 24
    epsilon_zero_probability: float = 0.3
    epsilon_max: float = 0.8
    #: GP fitting effort
    gp_prior_samples: int = 16
    gp_refined_starts: int = 2
    gp_max_iterations: int = 25
    #: RF surrogate settings (when surrogate == "rf")
    rf_trees: int = 32

    def __post_init__(self) -> None:
        if self.surrogate not in ("gp", "rf"):
            raise ValueError("surrogate must be 'gp' or 'rf'")

    @classmethod
    def baco_minus_minus(cls) -> "BacoSettings":
        """The restricted BaCO-- variant used in Fig. 8."""
        return cls(
            use_transformations=False,
            use_lengthscale_priors=False,
            use_local_search=False,
            permutation_metric="naive",
            advanced_gp_fitting=False,
        )


class BacoTuner(Tuner):
    """Bayesian Compiler Optimization autotuner."""

    name = "BaCO"

    def __init__(
        self,
        space: SearchSpace,
        settings: BacoSettings | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(space, seed=seed)
        self.settings = settings or BacoSettings()
        self._model_space = self._prepare_model_space(space, self.settings)
        self._feasibility = FeasibilityModel(
            space, n_trees=self.settings.feasibility_trees, rng=self._rng
        ) if self.settings.use_feasibility_model else None
        self._epsilon_schedule = FeasibilityThresholdSchedule(
            zero_probability=self.settings.epsilon_zero_probability,
            max_threshold=self.settings.epsilon_max,
            enabled=self.settings.use_feasibility_threshold,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _prepare_model_space(space: SearchSpace, settings: BacoSettings) -> SearchSpace:
        """Clone the space with the configured permutation metric / transforms.

        The *model* space only affects distances inside the surrogate; the
        original space is still used for sampling and constraint handling, so
        both always agree on which configurations are feasible.
        """
        parameters = []
        for param in space.parameters:
            clone = copy.deepcopy(param)
            if isinstance(clone, PermutationParameter):
                metric = settings.permutation_metric
                clone = PermutationParameter(
                    clone.name, clone.n_elements, metric=metric, default=clone.default
                )
            elif not settings.use_transformations and getattr(clone, "transform", "linear") == "log":
                clone.transform = "linear"
            parameters.append(clone)
        # constraints are irrelevant for distance computations
        return SearchSpace(parameters, constraints=[], build_chain_of_trees=False)

    def _make_surrogate(self) -> GaussianProcess | RandomForestRegressor:
        if self.settings.surrogate == "rf":
            return RandomForestRegressor(n_trees=self.settings.rf_trees, rng=self._rng)
        return GaussianProcess(
            self._model_space.parameters,
            kernel=self.settings.kernel,
            lengthscale_prior=GammaPrior(2.0, 2.0) if self.settings.use_lengthscale_priors else None,
            log_transform_output=self.settings.use_transformations,
            n_prior_samples=self.settings.gp_prior_samples,
            n_refined_starts=self.settings.gp_refined_starts,
            max_optimizer_iterations=self.settings.gp_max_iterations,
            advanced_fit=self.settings.advanced_gp_fitting,
            rng=self._rng,
        )

    # ------------------------------------------------------------------
    def _run(self, budget: int) -> None:
        doe_size = self.settings.doe_size or default_doe_size(self.space, budget)
        doe_size = min(doe_size, budget)
        for config in initial_design(self.space, doe_size, self._rng):
            if self._remaining(budget) <= 0:
                return
            self._evaluate(config, phase="initial")

        while self._remaining(budget) > 0:
            config = self._recommend()
            self._evaluate(config, phase="learning")

    # ------------------------------------------------------------------
    def _recommend(self) -> Configuration:
        """One learning-phase recommendation."""
        history = self.history
        feasible = history.feasible_evaluations
        evaluated_keys = {self.space.freeze(e.configuration) for e in history}

        if self._feasibility is not None:
            self._feasibility.fit(
                [e.configuration for e in history],
                [e.feasible for e in history],
            )

        # Not enough feasible data to fit the surrogate: keep exploring randomly.
        if len(feasible) < 2 or len({e.value for e in feasible}) < 2:
            return self._random_fallback(evaluated_keys)

        surrogate = self._make_surrogate()
        configs = [e.configuration for e in feasible]
        values = [e.value for e in feasible]
        if isinstance(surrogate, RandomForestRegressor):
            acquisition = self._fit_rf_acquisition(surrogate, configs, values)
            best_value_model = min(np.log(values)) if self.settings.use_transformations else min(values)
        else:
            try:
                surrogate.fit(configs, values)
            except (ValueError, np.linalg.LinAlgError):
                return self._random_fallback(evaluated_keys)
            epsilon = self._epsilon_schedule.sample(self._rng)
            acquisition = AcquisitionFunction(
                surrogate,
                best_value=min(values),
                feasibility_model=self._feasibility,
                feasibility_threshold=epsilon,
                noiseless=self.settings.noiseless_ei,
            )

        settings = LocalSearchSettings(
            n_random_samples=self.settings.n_random_samples,
            n_starts=self.settings.n_local_search_starts,
            max_steps=self.settings.max_local_search_steps if self.settings.use_local_search else 0,
        )
        config, value = multistart_local_search(
            self.space, acquisition, self._rng, settings=settings, exclude=evaluated_keys
        )
        if config is None or not np.isfinite(value):
            return self._random_fallback(evaluated_keys)
        return config

    # ------------------------------------------------------------------
    def _fit_rf_acquisition(self, surrogate, configs, values):
        """EI over an RF surrogate (used for the Fig. 8 GP-vs-RF comparison)."""
        from scipy import stats

        targets = np.log(values) if self.settings.use_transformations else np.asarray(values, dtype=float)
        features = self.space.encode_many(configs)
        surrogate.fit(features, targets)
        best = float(np.min(targets))
        feasibility = self._feasibility
        epsilon = self._epsilon_schedule.sample(self._rng)
        space = self.space

        def acquisition(candidates):
            feats = space.encode_many(candidates)
            mean, var = surrogate.predict_with_uncertainty(feats)
            std = np.sqrt(np.maximum(var, 1e-18))
            improvement = best - mean
            z = improvement / std
            ei = improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z)
            ei = np.maximum(ei, 0.0)
            if feasibility is not None and feasibility.is_trained:
                probability = feasibility.predict_probability(candidates)
                ei = np.where(probability >= epsilon, ei * probability, -np.inf)
            return ei

        return acquisition

    def _random_fallback(self, evaluated_keys: set[tuple]) -> Configuration:
        """Random feasible configuration, avoiding re-evaluations when possible."""
        for _ in range(64):
            config = self.space.sample_one(self._rng)
            if self.space.freeze(config) not in evaluated_keys:
                return config
        return self.space.sample_one(self._rng)
