"""The BaCO autotuner: the paper's core contribution.

BaCO is a configuration recommendation–evaluation loop (Fig. 2):

1. **Initial phase** — a small design of experiments is sampled uniformly at
   random from the feasible region (through the Chain-of-Trees when known
   constraints are present) and evaluated.
2. **Learning phase** — each iteration
   a. fits a Gaussian process on the *feasible* observations (Matérn-5/2 over
      per-type distances, gamma lengthscale priors, log-transformed
      objective),
   b. fits a random-forest feasibility classifier on *all* observations
      (hidden constraints),
   c. samples the minimum-feasibility threshold ε_f,
   d. maximizes the feasibility-weighted noiseless EI by multi-start local
      search restricted to the feasible region,
   e. evaluates the proposed configuration through the compiler toolchain and
      appends the result to the history.

The class exposes switches for every design choice studied in the paper's
ablations (Fig. 8–10): permutation metric, log transforms, lengthscale
priors, local search, advanced GP fitting, feasibility model, feasibility
threshold, and the surrogate family (GP vs. RF).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..models.distances import (
    CrossDistanceTensor,
    DistanceComputer,
    IncrementalDistanceTensor,
)
from ..models.gp import GaussianProcess, GPHyperparameters
from ..models.priors import GammaPrior
from ..models.random_forest import RandomForestRegressor
from ..space.parameters import (
    IntegerParameter,
    OrdinalParameter,
    Parameter,
    PermutationParameter,
    RealParameter,
)
from ..space.space import Configuration, SearchSpace
from .acquisition import (
    AcquisitionFunction,
    FusedAcquisitionScorer,
    expected_improvement,
)
from .doe import default_doe_size, initial_design_queue
from .feasibility import FeasibilityModel, FeasibilityThresholdSchedule
from .local_search import (
    LocalSearchSettings,
    multistart_local_search_batch,
    pooled_local_search_batch,
)
from .result import ObjectiveResult
from .tuner import Tuner

__all__ = ["BacoSettings", "BacoTuner", "SurrogatePolicy"]

#: smoothing of the measured per-fit GP wall-clock for ``rf_at=auto``
_AUTO_RF_EMA_ALPHA = 0.3
#: the GP fit EMA must exceed the RF probe by this factor before switching —
#: a margin, not equality, so one slow fit (GC pause, cold cache) can't flip
#: the surrogate while the GP is still genuinely cheaper on average
_AUTO_RF_MARGIN = 2.0
#: never switch before this many feasible observations: tiny-n timings are
#: all constant overhead and the GP's sample efficiency matters most early
_AUTO_RF_MIN_OBSERVATIONS = 16

#: pristine ``rf_at=auto`` measurement state: GP fit-time EMA, last RF probe
#: wall-clock, the n it was probed at, and the n the one-way latch engaged at
_AUTO_RF_STATE_EMPTY: dict[str, Any] = {
    "gp_ema": None,
    "rf_probe": None,
    "probe_n": None,
    "active_from": None,
}


@dataclass(frozen=True)
class SurrogatePolicy:
    """Budget-adaptive surrogate refit policy.

    ``mode="exact"`` (default) reproduces the historical behavior exactly:
    every learning iteration re-runs the full multistart MAP hyper-parameter
    sweep and refactorizes the kernel from scratch.  All bit-compat
    trajectory fixtures are recorded in this mode.

    ``mode="fast"`` switches to incremental refits:

    * most iterations keep the hyper-parameters **frozen** and only extend
      the cached Cholesky factor by the new rows (O(n²) per observation);
    * every ``refit_hypers_every`` feasible observations a **warm** refit
      runs one L-BFGS-B refinement seeded from the previous optimum;
    * every ``sweep_every`` feasible observations the full multistart
      **sweep** re-runs (with the previous optimum joining the pool);
    * past ``rf_threshold`` feasible observations (when set) the GP is
      replaced by the O(n log n)-fit random-forest surrogate — the
      budget-adaptive switch for long runs where even incremental GP
      algebra grows quadratically.

    ``pool=N`` keeps a **persistent candidate pool** of ``N`` feasible rows
    that survives across asks: instead of redrawing the full random batch
    every iteration, only the rows consumed as climb starts (or filtered out
    by the refreshed ε_f) are resampled, and the rest keep their cached
    distance columns.  ``cache=off`` disables the companion test–train
    cross-distance tensor (:class:`~repro.models.distances.
    CrossDistanceTensor`) while keeping the pool itself — a debugging /
    ablation knob; the default ``cache=on`` makes pool predicts a pure
    kernel-apply.  Both ride on the ``fast`` mode because the pool redraw
    pattern consumes a different RNG stream than the exact path's
    batch-per-ask draw.

    ``rf_at=auto`` replaces the fixed count with a *measured* switch: the
    tuner keeps an exponential moving average of the per-iteration GP fit
    wall-clock and periodically times an RF fit on the same data; once the
    GP EMA exceeds the RF probe by a safety margin the surrogate switches
    to RF and latches there (one-way — flip-flopping would discard the
    GP's incremental Cholesky state on every flip and make the trajectory
    timing-dependent in both directions).  The switch point depends on the
    host's timings, so ``auto`` runs are *not* bit-reproducible across
    machines; checkpoints record the latch so a resumed run stays in the
    regime it left off in.

    Spec strings round-trip through :meth:`parse` / :meth:`spec`:
    ``"exact"``, ``"fast"``,
    ``"fast,refit_every=8,sweep_every=40,rf_at=256"``,
    ``"fast,rf_at=auto"``, or ``"fast,pool=512,cache=on"``.
    """

    mode: str = "exact"
    refit_hypers_every: int = 8
    sweep_every: int = 40
    rf_threshold: int | None = None
    rf_auto: bool = False
    pool_size: int | None = None
    cross_cache: bool = True

    def __post_init__(self) -> None:
        if self.mode not in ("exact", "fast"):
            raise ValueError("surrogate policy mode must be 'exact' or 'fast'")
        if self.refit_hypers_every < 1:
            raise ValueError("refit_hypers_every must be >= 1")
        if self.sweep_every < 1:
            raise ValueError("sweep_every must be >= 1")
        if self.rf_threshold is not None and self.rf_threshold < 2:
            raise ValueError("rf_threshold must be >= 2")
        if self.rf_auto and self.rf_threshold is not None:
            raise ValueError("rf_at cannot be both a fixed count and 'auto'")
        if self.pool_size is not None:
            if self.mode != "fast":
                raise ValueError("pool= requires the 'fast' policy mode")
            if self.pool_size < 2:
                raise ValueError("pool_size must be >= 2")
        elif not self.cross_cache:
            raise ValueError("cache=off requires a candidate pool (pool=N)")

    @classmethod
    def parse(cls, spec: "str | SurrogatePolicy | None") -> "SurrogatePolicy":
        """Parse a policy spec string (idempotent on policy instances)."""
        if spec is None:
            return cls()
        if isinstance(spec, SurrogatePolicy):
            return spec
        parts = [part.strip() for part in str(spec).split(",") if part.strip()]
        if not parts:
            raise ValueError("empty surrogate policy spec")
        mode, options = parts[0], parts[1:]
        if mode == "exact":
            if options:
                raise ValueError("'exact' takes no options")
            return cls()
        if mode != "fast":
            raise ValueError(
                f"unknown surrogate policy {mode!r}; expected 'exact' or 'fast'"
            )
        kwargs: dict[str, Any] = {}
        keys = {
            "refit_every": "refit_hypers_every",
            "sweep_every": "sweep_every",
            "rf_at": "rf_threshold",
            "pool": "pool_size",
            "cache": "cross_cache",
        }
        seen: set[str] = set()
        for option in options:
            if "=" not in option:
                raise ValueError(f"malformed policy option {option!r} (expected key=value)")
            key, _, value = option.partition("=")
            field = keys.get(key.strip())
            if field is None:
                raise ValueError(
                    f"unknown policy option {key.strip()!r}; expected one of {sorted(keys)}"
                )
            if field in seen:
                raise ValueError(f"duplicate policy option {key.strip()!r}")
            seen.add(field)
            if field == "rf_threshold" and value.strip() == "auto":
                kwargs["rf_auto"] = True
                continue
            if field == "cross_cache":
                flag = value.strip()
                if flag not in ("on", "off"):
                    raise ValueError("policy option 'cache' must be 'on' or 'off'")
                kwargs["cross_cache"] = flag == "on"
                continue
            try:
                kwargs[field] = int(value)
            except ValueError:
                raise ValueError(
                    f"policy option {key.strip()!r} must be an integer"
                    + (" or 'auto'" if field == "rf_threshold" else "")
                ) from None
        return cls(mode="fast", **kwargs)

    def spec(self) -> str:
        """Canonical spec string (``parse(spec())`` round-trips)."""
        if self.mode == "exact":
            return "exact"
        spec = f"fast,refit_every={self.refit_hypers_every},sweep_every={self.sweep_every}"
        if self.rf_threshold is not None:
            spec += f",rf_at={self.rf_threshold}"
        if self.rf_auto:
            spec += ",rf_at=auto"
        if self.pool_size is not None:
            spec += f",pool={self.pool_size}"
            if not self.cross_cache:
                spec += ",cache=off"
        return spec

    def surrogate_for(self, n_train: int) -> str:
        """``"gp"`` or ``"rf"`` for a training set of ``n_train`` rows.

        Only resolves the *fixed-count* switch; the measured ``rf_at=auto``
        decision needs the tuner's timing state and lives in
        :meth:`BacoTuner._auto_rf_active`.
        """
        if self.mode == "fast" and self.rf_threshold is not None and n_train >= self.rf_threshold:
            return "rf"
        return "gp"

    def fit_strategy(self, n_train: int, last_sweep_n: int, last_refit_n: int) -> str:
        """The :meth:`GaussianProcess.fit_rows` strategy for the next refit."""
        if self.mode == "exact" or last_sweep_n < 2:
            return "sweep"
        if n_train - last_sweep_n >= self.sweep_every:
            return "sweep"
        if n_train - last_refit_n >= self.refit_hypers_every:
            return "warm"
        return "frozen"


def _without_log_transform(param: Parameter) -> Parameter:
    """A linear-transform clone of a numeric parameter (BaCO-- ablation)."""
    if isinstance(param, RealParameter):
        return RealParameter(param.name, param.low, param.high, default=param.default)
    if isinstance(param, IntegerParameter):
        return IntegerParameter(param.name, param.low, param.high, default=param.default)
    if isinstance(param, OrdinalParameter):
        return OrdinalParameter(param.name, param.values, default=param.default)
    raise TypeError(
        f"cannot strip the log transform from {type(param).__name__}"
    )


@dataclass
class BacoSettings:
    """All tunable design choices of BaCO (defaults match the paper)."""

    #: number of initial random configurations; None = rule-of-thumb from the budget
    doe_size: int | None = None
    #: surrogate model family: "gp" (default) or "rf" (Fig. 8 comparison)
    surrogate: str = "gp"
    #: GP kernel
    kernel: str = "matern52"
    #: semimetric for permutation parameters ("spearman" default, Fig. 9 ablation)
    permutation_metric: str = "spearman"
    #: log-transform exponential parameters and the objective (Sec. 4.1 / 4.2)
    use_transformations: bool = True
    #: gamma priors on the GP lengthscales (Sec. 3.2)
    use_lengthscale_priors: bool = True
    #: multistart L-BFGS hyper-parameter fitting (vs. best-of-prior-samples)
    advanced_gp_fitting: bool = True
    #: use the noise-free EI variant (Sec. 3.3)
    noiseless_ei: bool = True
    #: optimize the acquisition with local search (vs. best-of-random-batch)
    use_local_search: bool = True
    #: model hidden constraints with the RF feasibility classifier (Sec. 4.2)
    use_feasibility_model: bool = True
    #: apply the random minimum-feasibility threshold ε_f
    use_feasibility_threshold: bool = True
    #: local-search settings
    n_random_samples: int = 256
    n_local_search_starts: int = 5
    max_local_search_steps: int = 32
    #: feasibility model / threshold settings
    feasibility_trees: int = 24
    epsilon_zero_probability: float = 0.3
    epsilon_max: float = 0.8
    #: GP fitting effort
    gp_prior_samples: int = 16
    gp_refined_starts: int = 2
    gp_max_iterations: int = 25
    #: RF surrogate settings (when surrogate == "rf")
    rf_trees: int = 32
    #: surrogate refit policy spec ("exact" default; see :class:`SurrogatePolicy`)
    surrogate_policy: str = "exact"
    #: draw candidates from constraint-propagation pruned domains
    #: (:meth:`SearchSpace.with_propagation`).  Opt-in: pruning changes the
    #: sampler's RNG stream, so the default keeps every committed trajectory
    #: bit-identical; feasibility semantics are unchanged either way.
    constraint_propagation: bool = False

    def __post_init__(self) -> None:
        if self.surrogate not in ("gp", "rf"):
            raise ValueError("surrogate must be 'gp' or 'rf'")
        SurrogatePolicy.parse(self.surrogate_policy)  # validate the spec

    @classmethod
    def baco_minus_minus(cls) -> "BacoSettings":
        """The restricted BaCO-- variant used in Fig. 8."""
        return cls(
            use_transformations=False,
            use_lengthscale_priors=False,
            use_local_search=False,
            permutation_metric="naive",
            advanced_gp_fitting=False,
        )


class BacoTuner(Tuner):
    """Bayesian Compiler Optimization autotuner."""

    name = "BaCO"

    def __init__(
        self,
        space: SearchSpace,
        settings: BacoSettings | None = None,
        seed: int | None = None,
    ) -> None:
        settings = settings or BacoSettings()
        if settings.constraint_propagation:
            # swap in the propagating clone before anything captures a
            # reference: self.space, the feasibility model, and the encoder
            # all see the same object (the clone shares parameters,
            # constraints, trees, and encoder with the original)
            space = space.with_propagation()
        super().__init__(space, seed=seed)
        self.settings = settings
        self._model_space = self._prepare_model_space(space, self.settings)
        self._feasibility = FeasibilityModel(
            space, n_trees=self.settings.feasibility_trees, rng=self._rng
        ) if self.settings.use_feasibility_model else None
        self._epsilon_schedule = FeasibilityThresholdSchedule(
            zero_probability=self.settings.epsilon_zero_probability,
            max_threshold=self.settings.epsilon_max,
            enabled=self.settings.use_feasibility_threshold,
        )
        # Shared encoding layer: one distance computer (and encoder) reused
        # by every per-iteration GP instance, plus per-observation caches
        # maintained by _observe() so the learning loop never re-encodes or
        # re-copies the history.
        self._model_distance = DistanceComputer(self._model_space.parameters)
        self._gp_distance_cache = IncrementalDistanceTensor(self._model_distance)
        self._space_encoder = space.encoder
        self._space_rows_all: list[np.ndarray] = []
        self._space_rows_feasible: list[np.ndarray] = []
        self._feasible_values: list[float] = []
        self._feasible_flags: list[bool] = []
        # Surrogate refit policy ("exact" keeps the historical per-iteration
        # full refit; "fast" reuses _fast_gp across iterations with
        # incremental Cholesky extension and warm-started hyper fits).
        self._policy = SurrogatePolicy.parse(self.settings.surrogate_policy)
        self._fast_gp: GaussianProcess | None = None
        self._policy_state: dict[str, Any] = {
            "last_sweep_n": 0,
            "last_refit_n": 0,
            "hypers": None,
        }
        self._auto_rf_state: dict[str, Any] = dict(_AUTO_RF_STATE_EMPTY)
        self._restored_chol_base_n = 0
        # Acquisition hot-path caches (pooled fast policies only): the
        # persistent candidate pool (space-encoder rows), the indices due a
        # resample before the next ask, the pool↔train cross-distance tensor,
        # and the cross-ask neighbour-matrix cache of the pooled climb.
        self._candidate_pool: np.ndarray | None = None
        self._pool_refill: list[int] = []
        self._cross_distance = CrossDistanceTensor(self._model_distance)
        self._neighbour_cache: dict[bytes, np.ndarray] = {}
        # The cross tensor measures distances in the *model* encoding; it can
        # only stand in for pool-row distances when both encoders agree on
        # every warp (false under e.g. the no-transformations ablation).
        self._shared_model_encoding = (
            self._model_distance.encoder.signature() == self._space_encoder.signature()
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _prepare_model_space(space: SearchSpace, settings: BacoSettings) -> SearchSpace:
        """Clone the space with the configured permutation metric / transforms.

        The *model* space only affects distances inside the surrogate; the
        original space is still used for sampling and constraint handling, so
        both always agree on which configurations are feasible.  Parameters
        are immutable, so untouched ones are shared with the original space
        rather than deep-copied.
        """
        parameters: list[Parameter] = []
        for param in space.parameters:
            if isinstance(param, PermutationParameter):
                parameters.append(
                    PermutationParameter(
                        param.name,
                        param.n_elements,
                        metric=settings.permutation_metric,
                        default=param.default,
                    )
                )
            elif (
                not settings.use_transformations
                and getattr(param, "transform", "linear") == "log"
            ):
                parameters.append(_without_log_transform(param))
            else:
                parameters.append(param)
        # constraints are irrelevant for distance computations
        return SearchSpace(parameters, constraints=[], build_chain_of_trees=False)

    def set_surrogate_policy(self, policy: "str | SurrogatePolicy") -> None:
        """Install a surrogate refit policy (spec string or instance).

        Resets the fast-path state; call before :meth:`start` / ``tune`` (the
        policy is part of the tuner configuration, not per-run state).
        """
        self._policy = SurrogatePolicy.parse(policy)
        self._fast_gp = None
        self._policy_state = {"last_sweep_n": 0, "last_refit_n": 0, "hypers": None}
        self._auto_rf_state = dict(_AUTO_RF_STATE_EMPTY)
        self._restored_chol_base_n = 0
        self._candidate_pool = None
        self._pool_refill = []
        self._cross_distance.reset()
        self._neighbour_cache.clear()

    @property
    def surrogate_policy(self) -> SurrogatePolicy:
        return self._policy

    def _make_surrogate(self, kind: str | None = None) -> GaussianProcess | RandomForestRegressor:
        if (kind or self.settings.surrogate) == "rf":
            return RandomForestRegressor(n_trees=self.settings.rf_trees, rng=self._rng)
        return GaussianProcess(
            self._model_space.parameters,
            kernel=self.settings.kernel,
            lengthscale_prior=GammaPrior(2.0, 2.0) if self.settings.use_lengthscale_priors else None,
            log_transform_output=self.settings.use_transformations,
            n_prior_samples=self.settings.gp_prior_samples,
            n_refined_starts=self.settings.gp_refined_starts,
            max_optimizer_iterations=self.settings.gp_max_iterations,
            advanced_fit=self.settings.advanced_gp_fitting,
            rng=self._rng,
            distance_computer=self._model_distance,
        )

    # ------------------------------------------------------------------
    def _reset_state(self, budget: int) -> None:
        super()._reset_state(budget)
        self._gp_distance_cache.reset()
        self._space_rows_all.clear()
        self._space_rows_feasible.clear()
        self._feasible_values.clear()
        self._feasible_flags.clear()
        self._fast_gp = None
        self._policy_state = {"last_sweep_n": 0, "last_refit_n": 0, "hypers": None}
        self._restored_chol_base_n = 0
        self._candidate_pool = None
        self._pool_refill = []
        self._cross_distance.reset()
        self._neighbour_cache.clear()

    def _plan(self, budget: int) -> None:
        doe_size = self.settings.doe_size or default_doe_size(self.space, budget)
        self._doe_queue = initial_design_queue(self.space, doe_size, budget, self._rng)

    def _observe(self, configuration: Mapping[str, Any], result: ObjectiveResult) -> None:
        """Keep the encoded-row caches in step with the recorded history.

        Each evaluated configuration is encoded exactly once per encoder;
        feasible observations additionally extend the incremental train-train
        distance tensor by a single cross block, so the next GP fit starts
        from a fully built Gram input.
        """
        row = self._space_encoder.encode(configuration)
        self._space_rows_all.append(row)
        self._feasible_flags.append(result.feasible)
        if result.feasible:
            self._space_rows_feasible.append(row)
            self._feasible_values.append(result.value)
            self._gp_distance_cache.append(
                self._model_distance.encoder.encode(configuration)[None, :]
            )

    # ------------------------------------------------------------------
    def _propose(self, k: int, pending_keys: set[tuple]) -> list[tuple[Configuration, str]]:
        proposals: list[tuple[Configuration, str]] = []
        while self._doe_queue and len(proposals) < k:
            proposals.append((self._doe_queue.popleft(), "initial"))
        need = k - len(proposals)
        if need > 0:
            extra_exclude = set(pending_keys)
            extra_exclude.update(self.space.freeze(c) for c, _ in proposals)
            for config in self._recommend_batch(need, extra_exclude):
                proposals.append((config, "learning"))
        return proposals

    # ------------------------------------------------------------------
    def _recommend_batch(self, k: int, extra_exclude: set[tuple]) -> list[Configuration]:
        """``k`` learning-phase recommendations from one surrogate fit.

        The surrogate is fitted once and the batched acquisition maximizer
        returns the top-``k`` distinct configurations; ``extra_exclude``
        (in-flight suggestions) is honoured alongside the evaluated set.
        With ``k == 1`` and no in-flight work this is exactly the historical
        per-iteration recommendation, RNG draw for RNG draw.
        """
        exclude = self._evaluated_keys | extra_exclude
        values = self._feasible_values
        profiler = self.phase_profiler

        # nothing told back yet (e.g. ask(n) straight after start with n
        # beyond the DoE): skip the feasibility fit — vstack of zero rows is
        # an error — and let the too-few-values guard below go random
        if self._feasibility is not None and self._space_rows_all:
            with profiler.phase("fit"):
                self._feasibility.fit_rows(
                    np.vstack(self._space_rows_all), self._feasible_flags
                )

        # Not enough feasible data to fit the surrogate: keep exploring randomly.
        if len(values) < 2 or len(set(values)) < 2:
            return self._random_fallback_batch(k, exclude)

        surrogate_kind = self.settings.surrogate
        if surrogate_kind == "gp":
            # budget-adaptive switch: past the policy threshold the GP's
            # (even incremental) quadratic algebra loses to the RF surrogate
            surrogate_kind = self._policy.surrogate_for(len(values))
            if surrogate_kind == "gp" and self._auto_rf_active(values):
                surrogate_kind = "rf"
        if surrogate_kind == "rf":
            with profiler.phase("fit"):
                acquisition = self._fit_rf_acquisition(self._make_surrogate("rf"), values)
        else:
            if len(self._gp_distance_cache) != len(values):
                # programming error (e.g. an _observe override skipping
                # super()), not a numerical failure: crash rather than let
                # the except below silently degrade BaCO to random search
                raise RuntimeError(
                    f"incremental distance cache holds {len(self._gp_distance_cache)} "
                    f"rows but there are {len(values)} feasible observations"
                )
            if self._policy.mode == "fast":
                with profiler.phase("fit"):
                    surrogate = self._fit_fast_gp(values)
                if surrogate is None:
                    return self._random_fallback_batch(k, exclude)
            else:
                surrogate = self._make_surrogate("gp")
                try:
                    with profiler.phase("fit"):
                        surrogate.fit_rows(
                            self._gp_distance_cache.rows,
                            values,
                            distance_tensor=self._gp_distance_cache.tensor,
                        )
                except (ValueError, np.linalg.LinAlgError):
                    return self._random_fallback_batch(k, exclude)
            epsilon = self._epsilon_schedule.sample(self._rng)
            acquisition = AcquisitionFunction(
                surrogate,
                best_value=min(values),
                feasibility_model=self._feasibility,
                feasibility_threshold=epsilon,
                noiseless=self.settings.noiseless_ei,
                profiler=profiler,
            )

        settings = LocalSearchSettings(
            n_random_samples=self.settings.n_random_samples,
            n_starts=self.settings.n_local_search_starts,
            max_steps=self.settings.max_local_search_steps if self.settings.use_local_search else 0,
        )
        if self._policy.pool_size is not None and surrogate_kind == "gp":
            ranked = self._pooled_search(acquisition, settings, exclude, k)
        else:
            ranked = multistart_local_search_batch(
                self.space,
                acquisition,
                self._rng,
                settings=settings,
                exclude=exclude,
                k=k,
                profiler=profiler,
            )
        chosen = [config for config, value in ranked if np.isfinite(value)]
        while len(chosen) < k:
            taken = exclude | {self.space.freeze(c) for c in chosen}
            chosen.append(self._random_fallback(taken))
        return chosen

    def _pooled_search(
        self,
        acquisition: AcquisitionFunction,
        settings: LocalSearchSettings,
        exclude: set[tuple],
        k: int,
    ) -> list[tuple[Configuration, float]]:
        """One ask over the persistent candidate pool (``pool=N`` policies).

        The pool lifecycle implements lazy invalidation: the first ask draws
        ``pool_size`` feasible rows, later asks resample only the slots the
        previous ask consumed as climb starts or found dead under its ε_f
        (acquisition ``-inf``).  When the cross-distance cache is active the
        pool's test–train distance columns are maintained alongside — new
        observations append column blocks, resampled slots recompute their
        row — so priming the pool through the surrogate is a pure
        kernel-apply with no distance computation.
        """
        profiler = self.phase_profiler
        pool_size = self._policy.pool_size
        refreshed: list[int] = []
        full_redraw = False
        with profiler.phase("sample"):
            if self._candidate_pool is None or len(self._candidate_pool) != pool_size:
                self._candidate_pool = np.array(
                    self.space.sample_rows(self._rng, pool_size), copy=True
                )
                self._pool_refill = []
                full_redraw = True
            elif self._pool_refill:
                refreshed = sorted(set(self._pool_refill))
                self._candidate_pool[refreshed] = self.space.sample_rows(
                    self._rng, len(refreshed)
                )
                self._pool_refill = []
        pool = self._candidate_pool

        cross_view = None
        if self._policy.cross_cache and self._shared_model_encoding:
            cross = self._cross_distance
            train_rows = self._gp_distance_cache.rows
            if full_redraw or cross.n_pool != len(pool):
                cross.set_pool(pool, train_rows)
            else:
                if len(cross) < len(train_rows):
                    cross.extend_train(train_rows[len(cross) :])
                if refreshed:
                    cross.refresh_pool_rows(refreshed, pool[refreshed], train_rows)
            cross_view = cross.tensor

        scorer = FusedAcquisitionScorer(acquisition, self._space_encoder)
        pool_values = scorer.prime_pool(pool, cross_distance=cross_view)
        ranked, consumed = pooled_local_search_batch(
            self.space,
            scorer,
            pool,
            pool_values,
            settings=settings,
            exclude=exclude,
            k=k,
            neighbour_cache=self._neighbour_cache,
            profiler=profiler,
        )
        # Slots to resample before the next ask: consumed starts (their rows
        # were either proposed or climbed away from) plus everything the
        # current ε_f filtered out — the next ε is redrawn, so dead rows are
        # stale, not permanently infeasible.
        stale = np.nonzero(~np.isfinite(pool_values))[0]
        self._pool_refill = sorted({*(int(i) for i in consumed), *(int(i) for i in stale)})
        return ranked

    def _auto_rf_active(self, values: list[float]) -> bool:
        """Decide (and latch) the measured GP→RF switch for ``rf_at=auto``.

        Compares the GP fit-time EMA (maintained by :meth:`_fit_fast_gp`)
        against a periodically refreshed RF fit probe on the *same* training
        data.  The probe runs on its own fixed-seed generator so it never
        consumes the tuner's RNG stream — before the latch engages, an
        ``auto`` run's trajectory is identical to plain ``fast``.  Once the
        GP EMA exceeds the probe by :data:`_AUTO_RF_MARGIN` the switch
        engages permanently (see :class:`SurrogatePolicy` for why one-way).
        """
        if self._policy.mode != "fast" or not self._policy.rf_auto:
            return False
        st = self._auto_rf_state
        if st["active_from"] is not None:
            return True
        n = len(values)
        if n < _AUTO_RF_MIN_OBSERVATIONS or st["gp_ema"] is None:
            return False
        if st["probe_n"] is None or n - st["probe_n"] >= self._policy.refit_hypers_every:
            # re-probe as n grows: RF fitting slows down too (O(n log n)),
            # so a stale probe would overstate the benefit of switching
            probe = RandomForestRegressor(
                n_trees=self.settings.rf_trees, rng=np.random.default_rng(n)
            )
            targets = (
                np.log(values)
                if self.settings.use_transformations
                else np.asarray(values, dtype=float)
            )
            features = np.vstack(self._space_rows_feasible)
            start = time.perf_counter()
            probe.fit(features, targets)
            st["rf_probe"] = float(time.perf_counter() - start)
            st["probe_n"] = n
        if st["gp_ema"] > _AUTO_RF_MARGIN * st["rf_probe"]:
            st["active_from"] = n
            self._fast_gp = None  # the incremental GP state is dead weight now
            return True
        return False

    def _fit_fast_gp(self, values: list[float]) -> GaussianProcess | None:
        """Refit the persistent fast-policy GP, incrementally when possible.

        The instance survives across iterations so its cached Cholesky
        factor can be extended row by row.  Strategy per
        :meth:`SurrogatePolicy.fit_strategy`; any numerical failure drops
        the cached state and reports ``None`` (random-fallback iteration —
        the next call rebuilds from a full sweep).
        """
        n = len(values)
        rows = self._gp_distance_cache.rows
        tensor = self._gp_distance_cache.tensor
        gp = self._fast_gp
        if gp is None:
            gp = self._make_surrogate("gp")
        st = self._policy_state
        if gp.hyperparameters is None:
            strategy = "sweep"
        else:
            strategy = self._policy.fit_strategy(n, st["last_sweep_n"], st["last_refit_n"])
        fit_start = time.perf_counter()
        try:
            if strategy == "frozen":
                if gp._chol_n < n:
                    gp.extend_cholesky(rows, tensor)
                gp.refit_targets(values)
            else:
                warm = None
                if gp.hyperparameters is not None:
                    warm = gp.hyperparameters.to_vector()
                gp.fit_rows(
                    rows, values, distance_tensor=tensor,
                    hyper_strategy=strategy, warm_start=warm,
                )
                st["last_refit_n"] = n
                if strategy == "sweep":
                    st["last_sweep_n"] = n
                hp = gp.hyperparameters
                # raw values, not the log-vector: exp(log(x)) is not
                # bit-exact, and restore must rebuild the identical factor
                st["hypers"] = {
                    "lengthscales": [float(x) for x in hp.lengthscales],
                    "outputscale": float(hp.outputscale),
                    "noise_variance": float(hp.noise_variance),
                }
        except (ValueError, np.linalg.LinAlgError):
            self._fast_gp = None
            return None
        if self._policy.rf_auto:
            # EMA over *all* strategies: what auto compares against the RF
            # probe is the average per-iteration cost the GP actually incurs
            # (mostly frozen extensions, occasionally a sweep)
            elapsed = float(time.perf_counter() - fit_start)
            ema = self._auto_rf_state["gp_ema"]
            self._auto_rf_state["gp_ema"] = (
                elapsed
                if ema is None
                else (1.0 - _AUTO_RF_EMA_ALPHA) * ema + _AUTO_RF_EMA_ALPHA * elapsed
            )
        self._fast_gp = gp
        return gp

    # ------------------------------------------------------------------
    # snapshot / restore of the fast-policy state
    # ------------------------------------------------------------------
    def _state_dict(self) -> dict:
        state = super()._state_dict()
        if self._policy.mode != "exact":
            gp = self._fast_gp
            payload = dict(self._policy_state)
            payload["spec"] = self._policy.spec()
            payload["chol_base_n"] = (
                gp._chol_base_n if gp is not None and gp.hyperparameters is not None else 0
            )
            if self._policy.rf_auto:
                # only auto mode carries timing state; plain fast snapshots
                # keep their historical key set
                payload["auto_rf"] = dict(self._auto_rf_state)
            if self._policy.pool_size is not None:
                # the pool rows themselves must be snapshotted — their RNG
                # draws are already consumed, so a resumed run cannot redraw
                # them without diverging from the original stream
                payload["pool_rows"] = (
                    None
                    if self._candidate_pool is None
                    else [[float(x) for x in row] for row in self._candidate_pool]
                )
                payload["pool_refill"] = [int(i) for i in self._pool_refill]
            state["surrogate_policy"] = payload
        return state

    def _load_state_dict(self, state: Mapping[str, Any]) -> None:
        super()._load_state_dict(state)
        payload = state.get("surrogate_policy")
        if payload is not None:
            spec = payload.get("spec")
            if spec is not None:
                self._policy = SurrogatePolicy.parse(spec)
            self._policy_state = {
                "last_sweep_n": int(payload.get("last_sweep_n", 0)),
                "last_refit_n": int(payload.get("last_refit_n", 0)),
                "hypers": payload.get("hypers"),
            }
            self._restored_chol_base_n = int(payload.get("chol_base_n", 0))
            pool_rows = payload.get("pool_rows")
            self._candidate_pool = (
                None if pool_rows is None else np.asarray(pool_rows, dtype=float)
            )
            self._pool_refill = [int(i) for i in payload.get("pool_refill", [])]
            self._auto_rf_state = dict(_AUTO_RF_STATE_EMPTY)
            auto = payload.get("auto_rf")
            if isinstance(auto, Mapping):
                for key in self._auto_rf_state:
                    if auto.get(key) is not None:
                        self._auto_rf_state[key] = auto[key]

    def _post_restore(self) -> None:
        """Rebuild the fast-policy GP so a resumed run replays bit-exactly.

        The snapshot records the hyper-parameters and how many rows the last
        *full* factorization covered (``chol_base_n``).  Refactorizing those
        rows with frozen hyper-parameters reproduces the original factor
        exactly (deterministic linalg on identical inputs); the rows beyond
        it are re-extended one at a time by the next :meth:`_fit_fast_gp`,
        the same per-row arithmetic the original run performed.
        """
        if self._policy.mode == "exact":
            return
        if (
            self._candidate_pool is not None
            and self._policy.cross_cache
            and self._shared_model_encoding
            and len(self._feasible_values) >= 2
        ):
            # rebuild the pool's cross-distance cache from the replayed
            # history; block assembly is bit-identical to a fresh pairwise
            # computation, so the resumed predicts match the original run
            self._cross_distance.set_pool(
                self._candidate_pool, self._gp_distance_cache.rows
            )
        if self._auto_rf_state["active_from"] is not None:
            # the auto latch engaged before the snapshot: the run is on the
            # RF surrogate for good, so there is no GP factor to rebuild
            self._fast_gp = None
            return
        st = self._policy_state
        hypers = st.get("hypers")
        base_n = self._restored_chol_base_n
        if hypers is None or base_n < 2:
            self._fast_gp = None
            return
        if base_n > len(self._feasible_values):
            raise ValueError(
                f"surrogate policy state covers {base_n} observations but the "
                f"restored history holds {len(self._feasible_values)}"
            )
        gp = self._make_surrogate("gp")
        gp.hyperparameters = GPHyperparameters(
            lengthscales=np.asarray(hypers["lengthscales"], dtype=float),
            outputscale=float(hypers["outputscale"]),
            noise_variance=float(hypers["noise_variance"]),
        )
        gp.fit_rows(
            self._gp_distance_cache.rows[:base_n],
            self._feasible_values[:base_n],
            distance_tensor=self._gp_distance_cache.tensor[:, :base_n, :base_n],
            hyper_strategy="frozen",
        )
        self._fast_gp = gp

    def _random_fallback_batch(self, k: int, exclude: set[tuple]) -> list[Configuration]:
        chosen: list[Configuration] = []
        while len(chosen) < k:
            taken = exclude | {self.space.freeze(c) for c in chosen}
            chosen.append(self._random_fallback(taken))
        return chosen

    # ------------------------------------------------------------------
    def _fit_rf_acquisition(self, surrogate, values):
        """EI over an RF surrogate (used for the Fig. 8 GP-vs-RF comparison)."""
        targets = np.log(values) if self.settings.use_transformations else np.asarray(values, dtype=float)
        features = np.vstack(self._space_rows_feasible)
        surrogate.fit(features, targets)
        epsilon = self._epsilon_schedule.sample(self._rng)
        return _RFAcquisition(
            surrogate,
            best=float(np.min(targets)),
            feasibility=self._feasibility,
            epsilon=epsilon,
            space=self.space,
        )

    def _random_fallback(self, evaluated_keys: set[tuple]) -> Configuration:
        """Random feasible configuration, avoiding re-evaluations when possible.

        One row batch replaces the historical loop of up to 64 scalar draws;
        the final give-up draw (everything already evaluated) stays a single
        extra sample, as before.
        """
        rows = self.space.sample_rows(self._rng, 64)
        decode = self.space.encoder.decode
        for row in rows:
            config = decode(row)
            if self.space.freeze(config) not in evaluated_keys:
                return config
        return self.space.sample_one(self._rng)


class _RFAcquisition:
    """Feasibility-weighted EI over an RF surrogate, batch- and row-capable.

    Both the surrogate and the feasibility model consume the original space's
    encoding, so the row-space acquisition optimizer feeds its candidate
    matrices straight through without any decode.
    """

    def __init__(self, surrogate, best, feasibility, epsilon, space) -> None:
        self.surrogate = surrogate
        self.best = best
        self.feasibility = feasibility
        self.epsilon = epsilon
        self.space = space

    def _from_rows(self, rows: np.ndarray) -> np.ndarray:
        mean, var = self.surrogate.predict_with_uncertainty(rows)
        ei = expected_improvement(mean, var, self.best)
        if self.feasibility is not None and self.feasibility.is_trained:
            probability = self.feasibility.predict_probability_rows(rows)
            ei = np.where(probability >= self.epsilon, ei * probability, -np.inf)
        return ei

    def __call__(self, candidates) -> np.ndarray:
        return self._from_rows(self.space.encode_batch(candidates))

    def evaluate_rows(self, rows: np.ndarray, encoder) -> np.ndarray:
        if encoder.signature() == self.space.encoder.signature():
            return self._from_rows(rows)
        return self._from_rows(
            self.space.encode_batch(encoder.decode_batch(rows))
        )
