"""Run registered rules over a source tree and apply suppressions.

The engine is the only layer that knows about suppression comments: rules
emit every violation they see, then :func:`run_check` marks findings covered
by a justified ``# repro: allow[rule-id]`` comment as suppressed and reports
malformed suppressions (missing justification) as first-class findings so a
bare allow comment can never silently disable a rule.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from .base import Finding, all_rules
from .source import Project, load_project

__all__ = ["Report", "run_check", "resolve_rule_ids"]

#: pseudo rule id for engine-level suppression hygiene findings
SUPPRESSION_RULE = "invalid-suppression"


@dataclass
class Report:
    """Outcome of one checker run."""

    rules: list[str]
    findings: list[Finding] = field(default_factory=list)  # unsuppressed
    suppressed: list[Finding] = field(default_factory=list)
    checked_files: int = 0
    parse_errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "checked_files": self.checked_files,
            "rules": self.rules,
            "findings": [f.to_json() for f in self.findings],
            "suppressed": [f.to_json() for f in self.suppressed],
            "parse_errors": self.parse_errors,
        }

    def render_json(self) -> str:
        return json.dumps(self.to_json(), indent=2, allow_nan=False)

    def render_human(self, root: Path | None = None) -> str:
        lines: list[str] = []
        for finding in self.findings:
            path = finding.path
            if root is not None:
                try:
                    path = str(Path(path).relative_to(root))
                except ValueError:
                    pass
            lines.append(f"{path}:{finding.line}: [{finding.rule}] {finding.message}")
            if finding.hint:
                lines.append(f"    hint: {finding.hint}")
        for error in self.parse_errors:
            lines.append(f"error: {error}")
        lines.append(
            f"{len(self.findings)} finding(s) "
            f"({len(self.suppressed)} suppressed) across "
            f"{self.checked_files} file(s); rules: {', '.join(self.rules)}"
        )
        return "\n".join(lines)


def resolve_rule_ids(
    select: Sequence[str] | None = None, ignore: Sequence[str] | None = None
) -> list[str]:
    """Rule ids to run, honouring ``--select`` / ``--ignore``.

    Raises ``KeyError`` for an unknown id so typos fail loudly instead of
    silently checking nothing.
    """
    registry = all_rules()
    for rule_id in list(select or []) + list(ignore or []):
        if rule_id not in registry:
            raise KeyError(
                f"unknown rule {rule_id!r}; known rules: {', '.join(sorted(registry))}"
            )
    chosen = list(select) if select else sorted(registry)
    if ignore:
        chosen = [rule_id for rule_id in chosen if rule_id not in ignore]
    return chosen


def _suppression_findings(project: Project) -> list[Finding]:
    """Report malformed or unknown-id allow comments."""
    known = set(all_rules()) | {SUPPRESSION_RULE}
    findings: list[Finding] = []
    for module in project.modules:
        for supp in module.suppressions:
            if not supp.justification:
                findings.append(
                    Finding(
                        rule=SUPPRESSION_RULE,
                        path=str(module.path),
                        line=supp.line,
                        message=(
                            "suppression without justification: "
                            f"allow[{','.join(supp.rule_ids)}] needs a reason "
                            "after the bracket (and suppresses nothing without one)"
                        ),
                        hint="write `# repro: allow[rule-id] <one-line why>`",
                    )
                )
            for rule_id in supp.rule_ids:
                if rule_id not in known:
                    findings.append(
                        Finding(
                            rule=SUPPRESSION_RULE,
                            path=str(module.path),
                            line=supp.line,
                            message=f"suppression names unknown rule {rule_id!r}",
                            hint="see `python -m repro check --list-rules`",
                        )
                    )
    return findings


def run_check(
    paths: Sequence[Path | str],
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> Report:
    """Parse ``paths``, run the chosen rules, and fold in suppressions."""
    # populate the registry
    from . import rules as _rules  # noqa: F401

    chosen = resolve_rule_ids(select, ignore)
    project = load_project(Path(p) for p in paths)
    registry = all_rules()

    raw: list[Finding] = []
    for rule_id in chosen:
        raw.extend(registry[rule_id]().check(project))
    raw.extend(_suppression_findings(project))
    raw.sort(key=lambda f: (f.path, f.line, f.rule))

    by_path = {str(module.path): module for module in project.modules}
    report = Report(
        rules=chosen,
        checked_files=len(project.modules),
        parse_errors=list(project.errors),
    )
    for finding in raw:
        module = by_path.get(finding.path)
        supp = (
            module.suppression_for(finding.rule, finding.line) if module else None
        )
        if supp is not None and finding.rule != SUPPRESSION_RULE:
            supp.used = True
            finding.suppressed = True
            finding.justification = supp.justification
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    return report
