"""Core datatypes of the invariant checker: findings, rules, the registry."""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .source import Project

__all__ = [
    "Finding",
    "Rule",
    "register_rule",
    "get_rule",
    "all_rules",
    "dotted_name",
    "iter_scopes",
    "scope_body_nodes",
]


@dataclass
class Finding:
    """One rule violation, anchored at a ``path:line`` location.

    ``suppressed`` / ``justification`` are filled in by the engine when a
    valid ``# repro: allow[rule-id] <why>`` comment covers the line.
    """

    rule: str
    path: str
    line: int
    message: str
    hint: str = ""
    suppressed: bool = False
    justification: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def to_json(self) -> dict:
        payload = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }
        if self.suppressed:
            payload["suppressed"] = True
            payload["justification"] = self.justification
        return payload


class Rule(ABC):
    """A single invariant, checked over the whole parsed project at once.

    Rules are project-scoped (not per-file) so cross-module checks — e.g.
    resolving a ``Tuner`` subclass hierarchy spread over several files — need
    no special casing.  Per-module rules simply iterate
    ``project.modules``.
    """

    #: stable identifier used in ``--select`` / ``--ignore`` and suppressions
    id: str = ""
    #: one-line description shown by ``--list-rules``
    summary: str = ""
    #: which repo invariant the rule guards (shown in the human report)
    invariant: str = ""

    @abstractmethod
    def check(self, project: "Project") -> Iterable[Finding]:
        """Yield findings over the parsed project."""


_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry (by ``id``)."""
    rule_id = cls.id
    if not rule_id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    _REGISTRY[rule_id] = cls
    return cls


def get_rule(rule_id: str) -> type[Rule]:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known rules: {', '.join(sorted(_REGISTRY))}"
        ) from None


def all_rules() -> dict[str, type[Rule]]:
    """Registered rules, keyed by id (import :mod:`.rules` to populate)."""
    return dict(_REGISTRY)


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_scopes(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.Module | ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(qualified_name, scope_node)`` for the module and every def.

    The module itself is yielded as ``("<module>", tree)``; functions nested
    in classes get ``Class.method`` names.
    """
    yield "<module>", tree

    def walk(node: ast.AST, prefix: str) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{prefix}{child.name}"
                yield name, child
                yield from walk(child, f"{name}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")

    yield from walk(tree, "")


def scope_body_nodes(
    scope: ast.Module | ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk a scope's body without descending into nested function defs.

    Used by rules whose unit of analysis is one function: calls inside a
    nested def belong to the nested scope, which :func:`iter_scopes` yields
    separately.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))
