"""Parsed source files, suppression comments, and module markers.

Two comment conventions drive the checker:

* ``# repro: allow[rule-id] <justification>`` — suppress findings of
  ``rule-id`` on the same line (or, when the comment stands alone on its own
  line, on the line directly below).  Several ids may be listed,
  comma-separated.  The justification text is *required*: a bare allow
  comment does not suppress anything and is itself reported.
* ``# repro: hot-path`` — marks a module as belonging to the vectorized hot
  path, which opts it into the ``hot-path-purity`` and
  ``float-determinism`` rules.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

__all__ = ["Suppression", "SourceModule", "Project", "load_project"]

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s-]+)\]\s*(.*)$")
_HOT_PATH_RE = re.compile(r"^\s*#\s*repro:\s*hot-path\b")


@dataclass
class Suppression:
    """One ``# repro: allow[...]`` comment."""

    line: int  # line the comment sits on (1-based)
    rule_ids: tuple[str, ...]
    justification: str
    standalone: bool  # comment-only line: applies to the following line
    used: bool = False

    def covers(self, line: int) -> bool:
        if line == self.line:
            return True
        return self.standalone and line == self.line + 1


@dataclass
class SourceModule:
    """One parsed python file."""

    path: Path
    name: str  # dotted module name, e.g. "repro.core.baco"
    text: str
    tree: ast.Module
    suppressions: list[Suppression] = field(default_factory=list)
    hot_path: bool = False

    @property
    def basename(self) -> str:
        """Last dotted component — rules scope by it so that fixture files in
        a temp directory behave like their in-tree namesakes."""
        return self.name.rpartition(".")[2]

    def suppression_for(self, rule_id: str, line: int) -> Suppression | None:
        for supp in self.suppressions:
            if rule_id in supp.rule_ids and supp.justification and supp.covers(line):
                return supp
        return None


@dataclass
class Project:
    """All modules under the checked paths, parsed once and shared by rules."""

    modules: list[SourceModule]
    errors: list[str] = field(default_factory=list)

    def by_basename(self, basename: str) -> list[SourceModule]:
        return [m for m in self.modules if m.basename == basename]


def _iter_comments(text: str) -> Iterable[tuple[int, int, str]]:
    """``(line, column, comment_text)`` for every real comment token.

    Tokenizing (rather than regex over raw lines) keeps the conventions out
    of string literals and docstrings — e.g. this module's own docs.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.start[1], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


def _parse_suppressions(text: str) -> list[Suppression]:
    out: list[Suppression] = []
    for lineno, column, comment in _iter_comments(text):
        match = _ALLOW_RE.search(comment)
        if match is None:
            continue
        ids = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        justification = match.group(2).strip()
        standalone = _line_is_comment_only(text, lineno)
        out.append(Suppression(lineno, ids, justification, standalone))
    return out


def _line_is_comment_only(text: str, lineno: int) -> bool:
    line = text.splitlines()[lineno - 1]
    return line.lstrip().startswith("#")


def _module_name(path: Path) -> str:
    """Dotted module name, walking up while ``__init__.py`` siblings exist."""
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield resolved


def load_project(paths: Iterable[Path]) -> Project:
    """Parse every ``*.py`` under ``paths`` (files or directories)."""
    modules: list[SourceModule] = []
    errors: list[str] = []
    for path in _iter_python_files(paths):
        try:
            text = path.read_text(encoding="utf-8")
            tree = ast.parse(text, filename=str(path))
        except (OSError, SyntaxError) as exc:
            errors.append(f"{path}: {exc}")
            continue
        modules.append(
            SourceModule(
                path=path,
                name=_module_name(path),
                text=text,
                tree=tree,
                suppressions=_parse_suppressions(text),
                hot_path=any(
                    _HOT_PATH_RE.match(comment)
                    for _line, _col, comment in _iter_comments(text)
                ),
            )
        )
    return Project(modules=modules, errors=errors)
