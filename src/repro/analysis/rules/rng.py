"""rng-discipline: all randomness must flow through a passed ``rng``.

Bit-identical traces (the repo's core acceptance gate) require every random
draw to come from the single seeded ``np.random.Generator`` minted at the
``Tuner.__init__`` seed boundary.  Three things break that:

* legacy global-state numpy RNG (``np.random.seed`` / ``np.random.choice`` /
  ``np.random.RandomState`` ...) — hidden global state, not snapshotted;
* the stdlib ``random`` module — a second, unseeded stream;
* minting new generators ad hoc.  ``default_rng()`` with no (or ``None``)
  seed is nondeterministic and banned everywhere; even *seeded*
  ``default_rng(k)`` calls are only allowed inside the whitelisted seed
  boundaries below, because a generator minted mid-run forks the stream the
  session snapshot knows nothing about.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..base import Finding, Rule, register_rule
from ..source import Project

#: module basenames allowed to mint seeded generators, with the reason
SEED_BOUNDARIES: dict[str, str] = {
    # Tuner.__init__ is THE seed boundary: default_rng(seed) starts the run's stream
    "tuner": "Tuner.__init__ turns the user seed into the run's generator",
    # deterministic auto-RF probe generator derived from the observation count
    "baco": "auto-RF latch probes with a child generator derived from n",
    # per-tree child streams split off the forest's own generator
    "random_forest": "per-tree streams split from the forest generator",
    # deterministic fallback when no rng is injected (ad-hoc / test use)
    "gp": "deterministic default generator when no rng is injected",
    "feasibility": "deterministic default generator when no rng is injected",
    # bench harnesses and workload synthesis mint their own fixed-seed streams
    "hotpath_bench": "microbenchmark harness mints fixed-seed generators",
    "tensors": "deterministic tensor synthesis from fixed seeds",
    "rise_suite": "fixed-seed fallback default configuration sample",
}

#: attributes of ``np.random`` that are part of the new-style Generator API
#: (references to these are fine; everything else is the legacy global API)
_NEW_API = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

_NUMPY_ALIASES = {"np", "numpy"}


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


@register_rule
class RngDiscipline(Rule):
    id = "rng-discipline"
    summary = "randomness must flow through a passed rng (no global/ad-hoc RNG)"
    invariant = "bit-identical traces: one seeded Generator per run (PR 1)"

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            whitelisted = module.basename in SEED_BOUNDARIES
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.Import, ast.ImportFrom)):
                    yield from self._check_import(module, node)
                elif isinstance(node, ast.Call):
                    yield from self._check_call(module, node, whitelisted)

    def _check_import(self, module, node) -> Iterable[Finding]:
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        else:
            names = [node.module or ""]
        if "random" in names:
            yield Finding(
                rule=self.id,
                path=str(module.path),
                line=node.lineno,
                message="stdlib `random` is banned: it is a second, "
                "unseeded stream outside the session snapshot",
                hint="draw from the np.random.Generator passed as `rng`",
            )

    def _check_call(self, module, node: ast.Call, whitelisted: bool) -> Iterable[Finding]:
        func = node.func
        # default_rng(...) in any spelling (np.random.default_rng, bare import)
        attr = None
        if isinstance(func, ast.Attribute):
            attr = func.attr
        elif isinstance(func, ast.Name):
            attr = func.id
        if attr == "default_rng":
            if not node.args or _is_none(node.args[0]):
                yield Finding(
                    rule=self.id,
                    path=str(module.path),
                    line=node.lineno,
                    message="argless default_rng() draws OS entropy — "
                    "nondeterministic and unreproducible",
                    hint="pass the session rng through, or seed the "
                    "fallback explicitly (default_rng(0))",
                )
            elif not whitelisted:
                yield Finding(
                    rule=self.id,
                    path=str(module.path),
                    line=node.lineno,
                    message="seeded default_rng() minted outside a "
                    "whitelisted seed boundary forks an RNG stream the "
                    "session snapshot does not carry",
                    hint="thread the run's rng through instead, or add the "
                    "module to SEED_BOUNDARIES in rules/rng.py with a reason",
                )
            return
        # legacy global-state numpy API: np.random.<fn>(...)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in _NUMPY_ALIASES
            and func.attr not in _NEW_API
        ):
            yield Finding(
                rule=self.id,
                path=str(module.path),
                line=node.lineno,
                message=f"legacy global-state RNG call np.random.{func.attr}() "
                "bypasses the seeded per-run generator",
                hint="use the np.random.Generator passed as `rng`",
            )
