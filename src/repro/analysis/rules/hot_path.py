"""hot-path-purity: no per-row Python in the vectorized hot path.

PRs 2/4/9 moved the climb/predict/score paths to whole-matrix numpy ops;
the convention is that encoded row matrices stay in row space end to end
and configurations are only decoded (dict-materialized) at the tuner
boundary, for the handful of winners.  A per-row Python ``for`` loop,
``.tolist()`` round-trip, or a decode inside a loop silently reverts a
module to the legacy dict path — typically a 10-100x slowdown the
benchmark gate only notices one PR later.

Scope: modules carrying a ``# repro: hot-path`` marker comment.  Flags:

* ``for`` statements whose iterable mentions a rows/pool/batch-like name
  (``for row in rows``, ``zip(pool_rows, ...)``, ``range(len(candidates))``);
* ``.tolist()`` calls (materializes Python objects per element);
* ``decode``/``decode_row`` calls inside a ``for`` body (dict-decode per
  iteration), reported when the loop itself is not already flagged.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from ..base import Finding, Rule, register_rule
from ..source import Project

#: names that signal an encoded candidate matrix / row batch
_ROWS_NAME_RE = re.compile(
    r"(?:^|_)(?:rows?|batch|pool|candidates|matrix|encoded)(?:_|$)"
)

_DECODE_NAMES = {"decode", "decode_row"}


def _names_in(expr: ast.expr) -> Iterable[str]:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr


def _decode_calls(loop: ast.For) -> Iterable[ast.Call]:
    """Decode calls belonging to this loop (nested loops report their own)."""
    stack: list[ast.AST] = list(loop.body) + list(loop.orelse)
    while stack:
        node = stack.pop(0)  # source order, so the anchor is the first decode
        if isinstance(node, (ast.For, ast.While)):
            continue
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name in _DECODE_NAMES:
                yield node
        stack.extend(ast.iter_child_nodes(node))


@register_rule
class HotPathPurity(Rule):
    id = "hot-path-purity"
    summary = "no per-row loops / .tolist() / loop decode in hot-path modules"
    invariant = "row-space hot path, decode only at the tuner boundary (PRs 2/4/9)"

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if not module.hot_path:
                continue
            path = str(module.path)
            for node in ast.walk(module.tree):
                if isinstance(node, ast.For):
                    yield from self._check_loop(path, node)
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "tolist"
                ):
                    yield Finding(
                        rule=self.id,
                        path=path,
                        line=node.lineno,
                        message=".tolist() materializes a Python object per "
                        "element on the hot path",
                        hint="stay in ndarray space; index/slice the array "
                        "directly",
                    )

    def _check_loop(self, path: str, loop: ast.For) -> Iterable[Finding]:
        rows_like = sorted(
            {name for name in _names_in(loop.iter) if _ROWS_NAME_RE.search(name)}
        )
        if rows_like:
            yield Finding(
                rule=self.id,
                path=path,
                line=loop.lineno,
                message="per-row Python for-loop over encoded rows "
                f"({', '.join(rows_like)}) on the hot path",
                hint="vectorize over the whole matrix, or decode only the "
                "final winners at the tuner boundary",
            )
            return  # one finding per loop: don't double-report its decodes
        for call in _decode_calls(loop):
            yield Finding(
                rule=self.id,
                path=path,
                line=call.lineno,
                message="dict-decode inside a loop re-materializes "
                "configurations per iteration on the hot path",
                hint="batch-decode once outside the loop (encoder."
                "decode_batch) or keep the dataflow in row space",
            )
            return  # anchor at the first decode; one finding per loop
