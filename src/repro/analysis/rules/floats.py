"""float-determinism: don't mix ``math.*`` and ``np.*`` transcendentals.

PR 4 established that ``np.log`` is *not* bitwise-identical to ``math.log``
on every libm (vectorized kernels may use different polynomial splits), so
the encoding layer routes every scalar warp through ``math.log``/``math.exp``
(via ``np.frompyfunc``) and keeps the vectorized column paths on one family.
A function that feeds the same dataflow through both families produces
values that differ in the last ulp between the scalar and batch paths —
exactly the drift the bit-compat fixtures exist to catch.

Scope: hot-path-marked modules plus the encoding/kernel layers explicitly.
``math`` calls whose arguments are all numeric literals (e.g.
``math.log(2.0 * math.pi)``) are constants, not dataflow, and are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..base import Finding, Rule, iter_scopes, register_rule, scope_body_nodes
from ..source import Project

#: always in scope, marker or not — the layers PR 4's convention lives in
EXPLICIT_MODULES = {"encoding", "kernels"}

#: the transcendental family where scalar/vector libm kernels may disagree
TRANSCENDENTALS = {
    "log",
    "log1p",
    "log2",
    "log10",
    "exp",
    "expm1",
    "sqrt",
    "pow",
}

_NUMPY_ALIASES = {"np", "numpy"}


def _literal_args(node: ast.Call) -> bool:
    def literal(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Constant):
            return isinstance(expr.value, (int, float))
        if isinstance(expr, ast.UnaryOp):
            return literal(expr.operand)
        if isinstance(expr, ast.BinOp):
            return literal(expr.left) and literal(expr.right)
        if isinstance(expr, ast.Attribute):
            # math.pi / np.e style named constants
            return isinstance(expr.value, ast.Name) and expr.attr in ("pi", "e")
        return False

    return all(literal(arg) for arg in node.args) and not node.keywords


@register_rule
class FloatDeterminism(Rule):
    id = "float-determinism"
    summary = "flag functions mixing math.* and np.* transcendentals"
    invariant = "np.log is not bitwise math.log on this libm (PR 4)"

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if not (module.hot_path or module.basename in EXPLICIT_MODULES):
                continue
            for scope_name, scope in iter_scopes(module.tree):
                math_calls: list[ast.Call] = []
                numpy_fns: set[str] = set()
                for node in scope_body_nodes(scope):
                    if not isinstance(node, ast.Call):
                        continue
                    func = node.func
                    if not (
                        isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.attr in TRANSCENDENTALS
                    ):
                        continue
                    if func.value.id == "math" and not _literal_args(node):
                        math_calls.append(node)
                    elif func.value.id in _NUMPY_ALIASES:
                        numpy_fns.add(func.attr)
                if math_calls and numpy_fns:
                    for call in math_calls:
                        fn = call.func.attr  # type: ignore[union-attr]
                        yield Finding(
                            rule=self.id,
                            path=str(module.path),
                            line=call.lineno,
                            message=f"{scope_name} mixes math.{fn} with "
                            f"np.{{{', '.join(sorted(numpy_fns))}}} — the scalar "
                            "and vectorized libm kernels are not bitwise equal",
                            hint="keep one family per dataflow; for scalar "
                            "semantics over arrays use the _MATH_* frompyfunc "
                            "wrappers in space/encoding.py",
                        )
