"""strict-json: the wire protocol rejects NaN/Infinity at both ends.

PR 5 established the service convention: every ``json.dumps`` on the wire
passes ``allow_nan=False`` (so a NaN objective can never silently become
invalid JSON the peer may or may not parse) and every ``json.loads``
installs a ``parse_constant`` hook that rejects ``NaN``/``Infinity``
tokens.  Exact non-finite floats travel as ``{"$float": repr}`` markers via
``wire_encode``/``wire_decode`` instead.

Scope: the wire modules (``client``/``service``/``server`` basenames).
Disk checkpoints (``runner.py``) deliberately stay on permissive JSON.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..base import Finding, Rule, register_rule
from ..source import Project

WIRE_MODULES = {"client", "service", "server"}


def _keyword(node: ast.Call, name: str) -> ast.keyword | None:
    for kw in node.keywords:
        if kw.arg == name:
            return kw
    return None


@register_rule
class StrictJson(Rule):
    id = "strict-json"
    summary = "wire json.dumps needs allow_nan=False, json.loads a parse_constant hook"
    invariant = "strict-JSON service framing (PR 5)"

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if module.basename not in WIRE_MODULES:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "json"
                ):
                    continue
                if func.attr == "dumps":
                    kw = _keyword(node, "allow_nan")
                    strict = (
                        kw is not None
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is False
                    )
                    if not strict:
                        yield Finding(
                            rule=self.id,
                            path=str(module.path),
                            line=node.lineno,
                            message="json.dumps on the wire without "
                            "allow_nan=False can emit bare NaN/Infinity "
                            "tokens the peer must not accept",
                            hint="pass allow_nan=False and route non-finite "
                            "floats through wire_encode",
                        )
                elif func.attr == "loads":
                    if _keyword(node, "parse_constant") is None:
                        yield Finding(
                            rule=self.id,
                            path=str(module.path),
                            line=node.lineno,
                            message="json.loads on the wire without a "
                            "parse_constant hook silently accepts "
                            "NaN/Infinity tokens",
                            hint="pass parse_constant=_reject_constant "
                            "(see service.py) and decode $float markers "
                            "via wire_decode",
                        )
