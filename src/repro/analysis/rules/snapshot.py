"""snapshot-drift: mutable tuner state must ride the session snapshot.

The restore contract (PRs 3/6/9): a snapshot restores by (1) calling
``_reset_state``, (2) replaying the history through ``_observe``, (3)
loading ``_state_dict`` via ``_load_state_dict``, (4) rebuilding derived
caches in ``_post_restore``.  That gives every mutable attribute of a
``Tuner`` subclass exactly three legal lifecycles:

* **replay-rebuilt** — mutated in ``_observe`` *and* reset in
  ``_reset_state`` (e.g. encoded-row caches): the replay regenerates it;
* **snapshot-carried** — mutated on the ask path (``_plan`` / ``_propose``
  and anything they call) or in a ``set_*`` policy setter: must be read in
  ``_state_dict`` *and* written back in ``_load_state_dict`` /
  ``_post_restore``, because replay never re-runs the ask path;
* **ephemeral** — only ever reset to literals; carries no information.

Every PR from 6 through 9 added cadence/cache/pool state and had to
hand-audit this; this rule does the audit mechanically, resolving the
subclass hierarchy across files and tracking local aliases
(``st = self._policy_state; st[k] = v``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from ..base import Finding, Rule, register_rule
from ..source import Project, SourceModule

RESET_METHODS = {"_reset_state"}
OBSERVE_METHODS = {"_observe", "_record_observation"}
STATE_READ_METHODS = {"_state_dict"}
RESTORE_METHODS = {"_load_state_dict", "_post_restore"}
ASK_ROOTS = {"_plan", "_propose"}

#: base-class plumbing whose persistence the session layer owns directly
#: (the RNG bit-state and profiler ride the session snapshot themselves)
EXEMPT_ATTRS = {
    "_rng",
    "phase_profiler",
    "_session",
    "_history",
    "_objective",
    "space",
    "seed",
    "name",
}

#: method names that mutate their receiver in place
_MUTATOR_NAMES = {
    "append",
    "appendleft",
    "extend",
    "extendleft",
    "add",
    "insert",
    "update",
    "setdefault",
    "pop",
    "popleft",
    "popitem",
    "remove",
    "discard",
    "push",
    "sort",
    "reverse",
}
_MUTATOR_PREFIXES = ("set_", "extend_", "refresh_")
#: in-place calls that only empty a container — they count as a reset, and
#: can never introduce state that needs to ride the snapshot
_RESET_OPS = {"clear", "reset"}


def _is_mutator(name: str) -> bool:
    return name in _MUTATOR_NAMES or name.startswith(_MUTATOR_PREFIXES)


def _is_reset_value(expr: ast.expr) -> bool:
    """Literal-ish values: resetting to them cannot create snapshot state."""
    if isinstance(expr, ast.Constant):
        return True
    if isinstance(expr, ast.UnaryOp):
        return _is_reset_value(expr.operand)
    if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
        return all(_is_reset_value(e) for e in expr.elts)
    if isinstance(expr, ast.Dict):
        return all(
            k is not None and _is_reset_value(k) and _is_reset_value(v)
            for k, v in zip(expr.keys, expr.values)
        )
    if isinstance(expr, ast.Call) and not expr.keywords:
        name = expr.func.id if isinstance(expr.func, ast.Name) else None
        if name in ("set", "dict", "list", "tuple", "deque", "frozenset"):
            return all(_is_reset_value(a) for a in expr.args)
    return False


@dataclass
class _MethodOps:
    """Attribute operations of one method body."""

    #: attr -> first line of a state-carrying write (store or mutator call)
    writes: dict[str, int] = field(default_factory=dict)
    #: attr -> first line of a reset (literal store or clear()/reset())
    resets: dict[str, int] = field(default_factory=dict)
    reads: set[str] = field(default_factory=set)
    calls: set[str] = field(default_factory=set)  # self.<method>() callees

    def merge(self, other: "_MethodOps") -> None:
        for attr, line in other.writes.items():
            self.writes.setdefault(attr, line)
        for attr, line in other.resets.items():
            self.resets.setdefault(attr, line)
        self.reads |= other.reads
        self.calls |= other.calls


def _self_attr_of(node: ast.expr) -> str | None:
    while isinstance(node, ast.Subscript):
        node = node.value
    chain: list[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and chain:
        return chain[-1]
    return None


class _OpsCollector(ast.NodeVisitor):
    """Collect attr ops for one method, tracking ``x = self.attr`` aliases."""

    def __init__(self) -> None:
        self.ops = _MethodOps()
        self._aliases: dict[str, str] = {}

    def _resolve(self, node: ast.expr) -> str | None:
        """Attr named by ``self.X``, ``self.X[...]`` or a tracked alias."""
        attr = _self_attr_of(node)
        if attr is not None:
            return attr
        base = node
        while isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Name):
            return self._aliases.get(base.id)
        return None

    def _resolve_store(self, node: ast.expr) -> str | None:
        """Like :meth:`_resolve`, but a bare local name is a rebinding of the
        local, not a write through the alias."""
        if isinstance(node, ast.Name):
            return None
        return self._resolve(node)

    def _record_write(self, attr: str, line: int, reset: bool) -> None:
        if reset:
            self.ops.resets.setdefault(attr, line)
        else:
            self.ops.writes.setdefault(attr, line)

    def visit_Assign(self, node: ast.Assign) -> None:
        # alias tracking: st = self._policy_state
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and _self_attr_of(node.value) is not None
            and isinstance(node.value, ast.Attribute)
        ):
            self._aliases[node.targets[0].id] = node.value.attr
        reset = _is_reset_value(node.value)
        for target in node.targets:
            attr = self._resolve_store(target)
            if attr is not None:
                # a[k] = v is a mutation, never a reset, even for literal v
                subscript = isinstance(target, ast.Subscript)
                self._record_write(attr, node.lineno, reset and not subscript)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = self._resolve_store(node.target)
        if attr is not None:
            self._record_write(attr, node.lineno, reset=False)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            attr = self._resolve_store(node.target)
            if attr is not None:
                self._record_write(attr, node.lineno, _is_reset_value(node.value))
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            attr = self._resolve_store(target)
            if attr is not None:
                self._record_write(attr, node.lineno, reset=False)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = self._resolve(func.value)
            if receiver is not None:
                if func.attr in _RESET_OPS:
                    self._record_write(receiver, node.lineno, reset=True)
                elif _is_mutator(func.attr):
                    self._record_write(receiver, node.lineno, reset=False)
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                self.ops.calls.add(func.attr)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            attr = _self_attr_of(node)
            if attr is not None:
                self.ops.reads.add(attr)
        self.generic_visit(node)


def _collect_ops(method: ast.FunctionDef) -> _MethodOps:
    collector = _OpsCollector()
    for stmt in method.body:
        collector.visit(stmt)
    return collector.ops


@register_rule
class SnapshotDrift(Rule):
    id = "snapshot-drift"
    summary = "ask-path tuner state must be carried by _state_dict and restore"
    invariant = "snapshot/restore completeness of Tuner subclasses (PRs 3/6/9)"

    def check(self, project: Project) -> Iterable[Finding]:
        classes: dict[str, tuple[SourceModule, ast.ClassDef]] = {}
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    classes.setdefault(node.name, (module, node))

        tuner_like = self._tuner_closure(classes)
        for name in sorted(tuner_like):
            if name == "Tuner":
                continue  # the abstract base is the contract, not a subject
            yield from self._check_class(name, classes)

    @staticmethod
    def _tuner_closure(classes) -> set[str]:
        tuner_like = {"Tuner"}
        changed = True
        while changed:
            changed = False
            for name, (_module, node) in classes.items():
                if name in tuner_like:
                    continue
                for base in node.bases:
                    base_name = (
                        base.id
                        if isinstance(base, ast.Name)
                        else base.attr
                        if isinstance(base, ast.Attribute)
                        else None
                    )
                    if base_name in tuner_like:
                        tuner_like.add(name)
                        changed = True
                        break
        return tuner_like

    @staticmethod
    def _family(name: str, classes) -> list[tuple[SourceModule, ast.ClassDef]]:
        family = []
        queue, seen = [name], set()
        while queue:
            current = queue.pop(0)
            if current in seen or current not in classes:
                continue
            seen.add(current)
            module, node = classes[current]
            family.append((module, node))
            for base in node.bases:
                if isinstance(base, ast.Name):
                    queue.append(base.id)
                elif isinstance(base, ast.Attribute):
                    queue.append(base.attr)
        return family

    def _check_class(self, name: str, classes) -> Iterable[Finding]:
        family = self._family(name, classes)
        module, cls = family[0]  # the subclass itself anchors findings

        ops_by_method: dict[str, _MethodOps] = {}
        for _mod, node in family:
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    merged = ops_by_method.setdefault(item.name, _MethodOps())
                    merged.merge(_collect_ops(item))

        def union(method_names: Iterable[str]) -> _MethodOps:
            out = _MethodOps()
            for method in method_names:
                if method in ops_by_method:
                    out.merge(ops_by_method[method])
            return out

        # ask path: closure over self-method calls from _plan/_propose,
        # plus every set_* policy setter
        reachable: set[str] = set()
        queue = [m for m in ops_by_method if m in ASK_ROOTS]
        queue += [m for m in ops_by_method if m.startswith("set_")]
        while queue:
            method = queue.pop()
            if method in reachable:
                continue
            reachable.add(method)
            queue.extend(
                callee
                for callee in ops_by_method.get(method, _MethodOps()).calls
                if callee in ops_by_method
            )
        reachable -= (
            RESET_METHODS | OBSERVE_METHODS | STATE_READ_METHODS | RESTORE_METHODS
        )

        ask_ops = union(reachable)
        observe_ops = union(OBSERVE_METHODS)
        reset_ops = union(RESET_METHODS)
        restore_ops = union(RESTORE_METHODS)
        restore_writes = set(restore_ops.writes) | set(restore_ops.resets)

        def snapshot_covered(attr: str) -> bool:
            # written on the restore path — either deserialized in
            # _load_state_dict or rebuilt as a derived cache in _post_restore
            return attr in restore_writes

        path = str(module.path)
        for attr, line in sorted(ask_ops.writes.items(), key=lambda kv: kv[1]):
            if attr in EXEMPT_ATTRS or snapshot_covered(attr):
                continue
            yield Finding(
                rule=self.id,
                path=path,
                line=line,
                message=f"{name}.{attr} is mutated on the ask path but does "
                "not ride the snapshot: restore replays _observe only, so "
                "this state is lost (or stale) after restore",
                hint=f"serialize {attr} in _state_dict and restore it in "
                "_load_state_dict (or rebuild it in _post_restore)",
            )
        for attr, line in sorted(observe_ops.writes.items(), key=lambda kv: kv[1]):
            if attr in EXEMPT_ATTRS or snapshot_covered(attr):
                continue
            if attr in reset_ops.writes or attr in reset_ops.resets:
                continue  # replay-rebuilt: reset + re-observed
            yield Finding(
                rule=self.id,
                path=path,
                line=line,
                message=f"{name}.{attr} is mutated in _observe but never "
                "reset in _reset_state: the restore replay would stack onto "
                "stale state from the previous run",
                hint=f"reset {attr} in _reset_state (replay rebuilds it) or "
                "carry it in _state_dict",
            )
