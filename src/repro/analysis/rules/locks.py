"""lock-discipline: a lightweight race detector for the threaded TCP tier.

Two invariants from PR 5's concurrency design:

* **guarded attributes** — within a class that owns a ``self._lock``, any
  attribute that is ever *written* while holding ``with self._lock`` is a
  shared mutable; reading or writing it anywhere else without the lock
  (``__init__`` excepted) is a data race on the threaded server.  The
  protected set is inferred from the class's own locking, so the rule needs
  no annotation: lock a write once and every unlocked access lights up.
* **lock order** — the documented order is registry ``_lock`` first,
  per-session/entry lock second.  Acquiring ``self._lock`` while already
  holding an ``<entry>.lock`` (or inside ``_locked_entry``) inverts that
  order and can deadlock against ``_admit``/``_evict``.

Scope: modules with a ``session``/``service``/``server`` basename — the
ask/tell session object and the TCP service tier.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..base import Finding, Rule, dotted_name, register_rule
from ..source import Project

THREADED_MODULES = {"session", "service", "server"}

#: method calls that mutate common containers in place
_MUTATORS = {
    "append",
    "appendleft",
    "extend",
    "extendleft",
    "add",
    "insert",
    "update",
    "setdefault",
    "pop",
    "popleft",
    "popitem",
    "remove",
    "discard",
    "clear",
    "move_to_end",
}


def _self_attr(node: ast.expr) -> str | None:
    """``x`` for an expression rooted at ``self.x``, else None."""
    while isinstance(node, ast.Subscript):
        node = node.value
    chain: list[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and chain:
        return chain[-1]
    return None


def _is_self_lock(expr: ast.expr) -> bool:
    return dotted_name(expr) == "self._lock"


def _holds_entry_lock(expr: ast.expr) -> bool:
    """True for ``entry.lock``-style context or ``self._locked_entry(...)``."""
    if isinstance(expr, ast.Call):
        name = dotted_name(expr.func) or ""
        return name.endswith("_locked_entry")
    name = dotted_name(expr) or ""
    return name.endswith(".lock")


class _AccessCollector(ast.NodeVisitor):
    """Record (attr, line, is_write, locked, entry_locked) accesses."""

    def __init__(self) -> None:
        self.accesses: list[tuple[str, int, bool, bool, bool]] = []
        self.inversions: list[int] = []
        self._locked = False
        self._entry_locked = False
        self._acquired_entry_lock = False

    def visit_With(self, node: ast.With) -> None:
        was_locked, was_entry = self._locked, self._entry_locked
        for item in node.items:
            if _is_self_lock(item.context_expr):
                if self._entry_locked or self._acquired_entry_lock:
                    self.inversions.append(node.lineno)
                self._locked = True
            elif _holds_entry_lock(item.context_expr):
                self._entry_locked = True
            self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)
        self._locked, self._entry_locked = was_locked, was_entry

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func) or ""
        if name.endswith(".lock.acquire"):
            self._acquired_entry_lock = True
        elif isinstance(node.func, ast.Attribute):
            attr = _self_attr(node.func.value)
            if attr is not None and node.func.attr in _MUTATORS:
                self.accesses.append(
                    (attr, node.lineno, True, self._locked, self._entry_locked)
                )
        self.generic_visit(node)

    def _record_targets(self, targets: Iterable[ast.expr]) -> None:
        for target in targets:
            attr = _self_attr(target)
            if attr is not None:
                self.accesses.append(
                    (attr, target.lineno, True, self._locked, self._entry_locked)
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_targets(node.targets)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_targets([node.target])
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_targets([node.target])
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._record_targets(node.targets)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            attr = _self_attr(node)
            if attr is not None:
                self.accesses.append(
                    (attr, node.lineno, False, self._locked, self._entry_locked)
                )
        self.generic_visit(node)


def _class_methods(cls: ast.ClassDef) -> list[ast.FunctionDef]:
    return [
        node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _owns_lock(cls: ast.ClassDef) -> bool:
    for method in _class_methods(cls):
        if method.name != "__init__":
            continue
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and any(
                _self_attr(t) == "_lock" for t in node.targets
            ):
                return True
    return False


@register_rule
class LockDiscipline(Rule):
    id = "lock-discipline"
    summary = "guarded attrs need `with self._lock`; registry lock before session lock"
    invariant = "registry-then-session lock order, locked shared state (PR 5)"

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if module.basename not in THREADED_MODULES:
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and _owns_lock(node):
                    yield from self._check_class(module, node)

    def _check_class(self, module, cls: ast.ClassDef) -> Iterable[Finding]:
        per_method: dict[str, _AccessCollector] = {}
        for method in _class_methods(cls):
            collector = _AccessCollector()
            for stmt in method.body:
                collector.visit(stmt)
            per_method[method.name] = collector

        # pass A: attrs written at least once under the lock are "guarded"
        guarded: set[str] = set()
        for name, collector in per_method.items():
            if name == "__init__":
                continue
            for attr, _line, is_write, locked, _entry in collector.accesses:
                if is_write and locked and attr != "_lock":
                    guarded.add(attr)

        # pass B: any access to a guarded attr outside the lock
        for name, collector in per_method.items():
            if name == "__init__":
                continue
            reported: set[str] = set()
            for attr, line, _is_write, locked, _entry in collector.accesses:
                if attr in guarded and not locked and attr not in reported:
                    reported.add(attr)
                    yield Finding(
                        rule=self.id,
                        path=str(module.path),
                        line=line,
                        message=f"{cls.name}.{name} touches self.{attr} "
                        "without holding self._lock, but other methods "
                        "mutate it under the lock",
                        hint="wrap the access in `with self._lock:` (RLock — "
                        "re-entry is safe) or suppress if the caller "
                        "provably holds it",
                    )
            for line in collector.inversions:
                yield Finding(
                    rule=self.id,
                    path=str(module.path),
                    line=line,
                    message=f"{cls.name}.{name} acquires self._lock while "
                    "holding a per-entry lock — inverts the documented "
                    "registry-then-session lock order",
                    hint="take self._lock first, or release the entry lock "
                    "before touching registry state",
                )
