"""Project-specific invariant rules.

Importing this package registers every rule with
:func:`repro.analysis.base.register_rule`.
"""

from . import (  # noqa: F401
    floats,
    hot_path,
    locks,
    rng,
    snapshot,
    strict_json,
)
