"""Static invariant checking for the reproduction codebase.

``repro.analysis`` is a small, stdlib-only AST linter that mechanically
enforces the repo's load-bearing contracts — determinism (all randomness
flows through a passed ``rng``), snapshot completeness (mutable tuner state
rides ``_state_dict``), lock discipline in the threaded TCP tier, the
strict-JSON wire convention, float-determinism (``np.log`` is not bitwise
``math.log``), and hot-path purity (no per-row Python loops in vectorized
modules).

Run it as ``python -m repro check``; see :mod:`repro.analysis.engine` for
the programmatic entry point and :mod:`repro.analysis.rules` for the rules.

Findings are suppressed per line with a justified marker comment::

    self._cache[key] = value  # repro: allow[snapshot-drift] rebuilt lazily, pure function of rows

The justification text after the bracket is mandatory; a bare
``# repro: allow[rule-id]`` is itself reported as a finding.
"""

from .base import Finding, Rule, all_rules, get_rule, register_rule
from .engine import Report, run_check

__all__ = [
    "Finding",
    "Rule",
    "Report",
    "all_rules",
    "get_rule",
    "register_rule",
    "run_check",
]
