"""``python -m repro check`` — CLI front end for the invariant checker.

Kept separate from :mod:`repro.__main__` so the checker stays importable
and testable without the numpy-heavy experiment stack.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from .engine import run_check

__all__ = ["add_check_arguments", "cmd_check", "default_check_root"]


def default_check_root() -> Path:
    """The ``repro`` package directory — what a bare ``repro check`` scans."""
    return Path(__file__).resolve().parent.parent


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to check (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULE[,RULE...]",
        help="run only these rules (repeatable, comma-separated)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="RULE[,RULE...]",
        help="skip these rules (repeatable, comma-separated)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )


def _split_ids(values: list[str] | None) -> list[str] | None:
    if not values:
        return None
    out: list[str] = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out or None


def cmd_check(args: argparse.Namespace) -> int:
    # importing the rules package populates the registry
    from . import rules as _rules  # noqa: F401
    from .base import all_rules

    if args.list_rules:
        for rule_id, cls in sorted(all_rules().items()):
            print(f"{rule_id:20s} {cls.summary}")
            print(f"{'':20s}   guards: {cls.invariant}")
        return 0

    paths = [p for p in args.paths] or [default_check_root()]
    try:
        report = run_check(
            paths, select=_split_ids(args.select), ignore=_split_ids(args.ignore)
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}")
        return 2

    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_human(root=Path.cwd()))
    return 0 if report.ok else 1
