"""ATF / OpenTuner-like baseline.

The Auto-Tuning Framework (ATF, Rasch et al.) extends OpenTuner (Ansel et
al.) with known-constraint support.  OpenTuner's search is an ensemble of
heuristic *techniques* (greedy mutation / hill climbing, differential
evolution style crossover, random sampling) orchestrated by a multi-armed
bandit that allocates evaluations to whichever technique has recently
produced improvements (the "AUC bandit").

This reproduction keeps that structure:

* an elite set of the best configurations found so far;
* mutation, crossover, and random techniques that propose new configurations
  (respecting the known constraints through the search space's feasibility
  test and Chain-of-Trees);
* a sliding-window AUC bandit that scores techniques by their recent
  improvements and picks the next technique with an ε-greedy rule.

Hidden constraints get no special treatment — infeasible evaluations are
simply recorded as failures, matching how OpenTuner handles them (a high
objective value provides no gradient for the heuristics).

The paper observes (RQ4) that this exploitation-heavy strategy wins on simple
well-behaved kernels (e.g. SpMV on cage12) but gets stuck in local minima on
complex spaces; the reproduction preserves that qualitative behaviour.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Mapping

import numpy as np

from ..core.result import ObjectiveResult
from ..core.session import frozen_key_from_json, frozen_key_to_json
from ..core.tuner import Tuner
from ..space.space import Configuration, SearchSpace

__all__ = ["OpenTunerLikeTuner", "AUCBandit"]


class AUCBandit:
    """Sliding-window area-under-curve credit assignment over techniques."""

    def __init__(
        self,
        techniques: list[str],
        window: int = 32,
        exploration: float = 0.15,
    ) -> None:
        if not techniques:
            raise ValueError("the bandit needs at least one technique")
        self.techniques = list(techniques)
        self.window = window
        self.exploration = exploration
        self._outcomes: dict[str, deque[float]] = {
            name: deque(maxlen=window) for name in self.techniques
        }
        self._uses: dict[str, int] = {name: 0 for name in self.techniques}

    def select(self, rng: np.random.Generator) -> str:
        """ε-greedy selection on the exponentially weighted recent success rate."""
        unused = [t for t in self.techniques if self._uses[t] == 0]
        if unused:
            return unused[int(rng.integers(len(unused)))]
        if rng.random() < self.exploration:
            return self.techniques[int(rng.integers(len(self.techniques)))]
        return max(self.techniques, key=self._score)

    def _score(self, technique: str) -> float:
        outcomes = self._outcomes[technique]
        if not outcomes:
            return 0.0
        # AUC-style: recent successes weigh more.
        weights = np.arange(1, len(outcomes) + 1, dtype=float)
        return float(np.dot(weights, np.asarray(outcomes)) / weights.sum())

    def update(self, technique: str, improved: bool) -> None:
        self._uses[technique] += 1
        self._outcomes[technique].append(1.0 if improved else 0.0)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """Bandit statistics as a JSON-serializable dict (for checkpoints)."""
        return {
            "techniques": list(self.techniques),
            "window": self.window,
            "exploration": self.exploration,
            "outcomes": {name: list(dq) for name, dq in self._outcomes.items()},
            "uses": dict(self._uses),
        }

    def load_state_dict(self, payload: Mapping[str, Any]) -> None:
        self.techniques = list(payload.get("techniques", self.techniques))
        self.window = int(payload.get("window", self.window))
        self.exploration = float(payload.get("exploration", self.exploration))
        outcomes = payload.get("outcomes", {})
        self._outcomes = {
            name: deque(
                (float(x) for x in outcomes.get(name, ())), maxlen=self.window
            )
            for name in self.techniques
        }
        uses = payload.get("uses", {})
        self._uses = {name: int(uses.get(name, 0)) for name in self.techniques}


class OpenTunerLikeTuner(Tuner):
    """Bandit ensemble of heuristic search techniques with constraint support."""

    name = "ATF with OpenTuner"

    def __init__(
        self,
        space: SearchSpace,
        seed: int | None = None,
        elite_size: int = 5,
        n_initial_random: int | None = None,
        mutation_strength: int = 1,
    ) -> None:
        super().__init__(space, seed=seed)
        self.elite_size = elite_size
        self.n_initial_random = n_initial_random
        self.mutation_strength = mutation_strength
        self._bandit = AUCBandit(["mutate", "crossover", "random"])
        self._initial_left = 0
        #: technique that produced each in-flight learning suggestion,
        #: keyed by frozen configuration (a list handles rare duplicates)
        self._inflight: dict[tuple, list[str]] = {}

    # ------------------------------------------------------------------
    def _reset_state(self, budget: int) -> None:
        super()._reset_state(budget)
        self._bandit = AUCBandit(["mutate", "crossover", "random"])
        self._initial_left = 0
        self._inflight = {}

    def _plan(self, budget: int) -> None:
        n_initial = self.n_initial_random or max(3, min(budget // 6, 10))
        self._initial_left = min(n_initial, budget)

    def _propose(self, k: int, pending_keys: set[tuple]) -> list[tuple[Configuration, str]]:
        proposals: list[tuple[Configuration, str]] = []
        seen = self._evaluated_keys | set(pending_keys)
        for _ in range(k):
            if self._initial_left > 0:
                self._initial_left -= 1
                config = self.space.sample_one(self._rng)
                seen.add(self.space.freeze(config))
                proposals.append((config, "initial"))
                continue
            technique = self._bandit.select(self._rng)
            config = self._propose_with(technique, seen)
            key = self.space.freeze(config)
            seen.add(key)
            self._inflight.setdefault(key, []).append(technique)
            proposals.append((config, "learning"))
        return proposals

    def _observe(self, configuration: Mapping[str, Any], result: ObjectiveResult) -> None:
        """Credit the producing technique once its evaluation is told back.

        ``improved`` compares against the best value *before* this
        observation (the history already contains it when the hook runs).
        Initial-phase samples — and history replay during checkpoint restore,
        where the bandit state is loaded separately — carry no in-flight
        technique and update nothing.
        """
        key = self.space.freeze(configuration)
        techniques = self._inflight.get(key)
        if not techniques:
            return
        technique = techniques.pop(0)
        if not techniques:
            del self._inflight[key]
        prior = self._history.evaluations[:-1] if self._history is not None else []
        best_before = min(
            (e.value for e in prior if e.feasible), default=math.inf
        )
        improved = result.feasible and result.value < best_before
        self._bandit.update(technique, improved)

    # ------------------------------------------------------------------
    def _state_dict(self) -> dict[str, Any]:
        state = super()._state_dict()
        state["initial_left"] = self._initial_left
        state["bandit"] = self._bandit.state_dict()
        state["inflight"] = [
            {"key": frozen_key_to_json(key), "techniques": list(techniques)}
            for key, techniques in self._inflight.items()
        ]
        return state

    def _load_state_dict(self, payload: Mapping[str, Any]) -> None:
        super()._load_state_dict(payload)
        self._initial_left = int(payload.get("initial_left", 0))
        self._bandit.load_state_dict(payload.get("bandit", {}))
        self._inflight = {
            frozen_key_from_json(entry["key"]): list(entry["techniques"])
            for entry in payload.get("inflight", ())
        }

    # ------------------------------------------------------------------
    def _elites(self) -> list[Configuration]:
        feasible = sorted(self.history.feasible_evaluations, key=lambda e: e.value)
        return [e.configuration for e in feasible[: self.elite_size]]

    def _propose_with(self, technique: str, seen: set[tuple]) -> Configuration:
        elites = self._elites()
        proposal: Configuration | None = None
        if technique == "mutate" and elites:
            proposal = self._mutate(elites[int(self._rng.integers(len(elites)))])
        elif technique == "crossover" and len(elites) >= 2:
            i, j = self._rng.choice(len(elites), size=2, replace=False)
            proposal = self._crossover(elites[int(i)], elites[int(j)])
        if proposal is None or self.space.freeze(proposal) in seen:
            # fall back to random sampling (also the "random" technique):
            # one batched row draw instead of up to 16 scalar draws
            decode = self.space.encoder.decode
            for row in self.space.sample_rows(self._rng, 16):
                candidate = decode(row)
                if self.space.freeze(candidate) not in seen:
                    return candidate
            return self.space.sample_one(self._rng)
        return proposal

    def _mutate(self, configuration: Mapping[str, Any]) -> Configuration | None:
        """Change ``mutation_strength`` parameters to a nearby feasible value."""
        config = dict(configuration)
        names = list(self.space.parameter_names)
        self._rng.shuffle(names)
        changed = 0
        for name in names:
            if changed >= self.mutation_strength:
                break
            param = self.space[name]
            cot = self.space.chain_of_trees
            if cot is not None and cot.covers(name):
                options = [
                    v for v in cot.feasible_values(name, config)
                    if v != param.canonical(config[name])
                ]
            else:
                options = param.neighbours(config[name])
            if not options:
                continue
            config[name] = options[int(self._rng.integers(len(options)))]
            changed += 1
        if changed == 0:
            return None
        if not self.space.is_feasible(config):
            return None
        return config

    def _crossover(
        self, first: Mapping[str, Any], second: Mapping[str, Any]
    ) -> Configuration | None:
        """Mix parameters of two elites; repair infeasible offspring by rejection."""
        for _ in range(8):
            child: Configuration = {}
            for name in self.space.parameter_names:
                source = first if self._rng.random() < 0.5 else second
                child[name] = source[name]
            if self.space.is_feasible(child):
                return child
        return None
