"""Ytopt-like baseline: Bayesian optimization without BaCO's customizations.

Ytopt (Wu et al.) wraps skopt's Bayesian optimization to tune compiler
pragmas.  Compared with BaCO it

* uses a Random-Forest surrogate by default (a GP without constraint support
  is available and is what Fig. 8's "Ytopt (GP)" variant uses),
* encodes all parameters numerically (permutations are treated as unordered
  category indices — no permutation structure),
* handles hidden constraints by adding infeasible points to the data set with
  a large penalty objective value,
* optimizes the acquisition over a random candidate batch (no local search),
* applies no log transformations, lengthscale priors, or noiseless-EI
  adjustments.

Known constraints are respected when *sampling candidates* (rejection /
Chain-of-Trees sampling through the shared :class:`SearchSpace`), mirroring
the manual search-space pruning the paper performs for Ytopt.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np
from scipy import stats

from ..core.doe import initial_design_queue
from ..core.tuner import Tuner
from ..models.gp import GaussianProcess
from ..models.random_forest import RandomForestRegressor
from ..space.parameters import PermutationParameter
from ..space.space import Configuration, SearchSpace

__all__ = ["YtoptLikeTuner"]

#: factor applied to the worst feasible value to penalize infeasible points
_PENALTY_FACTOR = 10.0


class YtoptLikeTuner(Tuner):
    """BO baseline with RF (default) or vanilla GP surrogate and penalty handling."""

    name = "Ytopt"

    def __init__(
        self,
        space: SearchSpace,
        seed: int | None = None,
        surrogate: str = "rf",
        n_initial: int | None = None,
        n_candidates: int = 256,
        rf_trees: int = 32,
    ) -> None:
        super().__init__(space, seed=seed)
        if surrogate not in ("rf", "gp"):
            raise ValueError("surrogate must be 'rf' or 'gp'")
        self.surrogate = surrogate
        self.n_initial = n_initial
        self.n_candidates = n_candidates
        self.rf_trees = rf_trees
        if surrogate == "gp":
            self.name = "Ytopt (GP)"
        # a naive model space: permutations degraded to categorical distance
        self._gp_parameters = self._naive_parameters(space)

    @staticmethod
    def _naive_parameters(space: SearchSpace):
        parameters = []
        for param in space.parameters:
            if isinstance(param, PermutationParameter):
                parameters.append(
                    PermutationParameter(param.name, param.n_elements, metric="naive")
                )
            else:
                parameters.append(param)
        return parameters

    # ------------------------------------------------------------------
    def _plan(self, budget: int) -> None:
        n_initial = self.n_initial or max(3, min(budget // 5, 12))
        self._doe_queue = initial_design_queue(self.space, n_initial, budget, self._rng)

    def _propose(self, k: int, pending_keys: set[tuple]) -> list[tuple[Configuration, str]]:
        proposals: list[tuple[Configuration, str]] = []
        while self._doe_queue and len(proposals) < k:
            proposals.append((self._doe_queue.popleft(), "initial"))
        while len(proposals) < k:
            extra = set(pending_keys)
            extra.update(self.space.freeze(c) for c, _ in proposals)
            proposals.append((self._recommend(extra), "learning"))
        return proposals

    # ------------------------------------------------------------------
    def _training_data(self) -> tuple[list[Configuration], np.ndarray]:
        """All evaluations; infeasible ones carry a large penalty value."""
        evaluations = list(self.history)
        feasible_values = [e.value for e in evaluations if e.feasible]
        if feasible_values:
            penalty = max(feasible_values) * _PENALTY_FACTOR
        else:
            penalty = 1e6
        configs = [e.configuration for e in evaluations]
        values = np.array([e.value if e.feasible else penalty for e in evaluations])
        return configs, values

    def _recommend(self, extra_exclude: set[tuple] = frozenset()) -> Configuration:
        configs, values = self._training_data()
        evaluated = {self.space.freeze(c) for c in configs} | set(extra_exclude)
        if len(configs) < 2 or len(set(values.tolist())) < 2:
            return self._random_unseen(evaluated)

        # one vectorized feasible draw; the candidate matrix doubles as the
        # surrogate's feature matrix (rows are the space's encoding)
        rows = self.space.sample_rows(self._rng, self.n_candidates)
        decode = self.space.encoder.decode
        pool: list[Configuration] = []
        pool_rows: list[np.ndarray] = []
        seen: set[tuple] = set()
        for row in rows:
            candidate = decode(row)
            key = self.space.freeze(candidate)
            if key in evaluated or key in seen:
                continue
            seen.add(key)
            pool.append(candidate)
            pool_rows.append(row)
        if not pool:
            return self._random_unseen(evaluated)

        try:
            ei = self._expected_improvement(configs, values, pool, np.asarray(pool_rows))
        except (ValueError, np.linalg.LinAlgError):
            return self._random_unseen(evaluated)
        return pool[int(np.argmax(ei))]

    def _expected_improvement(
        self,
        configs: Sequence[Mapping[str, Any]],
        values: np.ndarray,
        pool: Sequence[Mapping[str, Any]],
        pool_rows: np.ndarray,
    ) -> np.ndarray:
        best = float(np.min(values))
        if self.surrogate == "rf":
            features = self.space.encode_many(configs)
            model = RandomForestRegressor(n_trees=self.rf_trees, rng=self._rng)
            model.fit(features, values)
            mean, variance = model.predict_with_uncertainty(pool_rows)
        else:
            model = GaussianProcess(
                self._gp_parameters,
                lengthscale_prior=None,
                log_transform_output=False,
                standardize_output=True,
                n_prior_samples=8,
                n_refined_starts=1,
                advanced_fit=True,
                rng=self._rng,
            )
            model.fit(configs, values)
            best = float(model.to_model_scale(best))
            if model.encoder.signature() == self.space.encoder.signature():
                mean, variance = model.predict_rows(pool_rows, include_noise=True)
            else:
                mean, variance = model.predict(pool, include_noise=True)
        std = np.sqrt(np.maximum(variance, 1e-18))
        improvement = best - mean
        z = improvement / std
        return np.maximum(improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z), 0.0)

    def _random_unseen(self, evaluated: set[tuple]) -> Configuration:
        """First unseen configuration of one batched draw (give-up: one more)."""
        decode = self.space.encoder.decode
        for row in self.space.sample_rows(self._rng, 32):
            config = decode(row)
            if self.space.freeze(config) not in evaluated:
                return config
        return self.space.sample_one(self._rng)
