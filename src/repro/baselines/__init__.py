"""Baseline autotuners used in the paper's evaluation."""

from .opentuner import AUCBandit, OpenTunerLikeTuner
from .random_search import CoTSamplingTuner, UniformSamplingTuner
from .ytopt import YtoptLikeTuner

__all__ = [
    "AUCBandit",
    "CoTSamplingTuner",
    "OpenTunerLikeTuner",
    "UniformSamplingTuner",
    "YtoptLikeTuner",
]
