"""Random-sampling baselines.

Two baselines from the evaluation (Sec. 5.1):

* :class:`UniformSamplingTuner` — samples uniformly from the feasible region
  (bias-free uniform-over-leaves sampling when a Chain-of-Trees exists).
* :class:`CoTSamplingTuner` — samples by walking each Chain-of-Trees tree and
  choosing a child uniformly at every level, which is the biased sampling
  scheme of Rasch et al.; this baseline isolates the impact of the sampling
  bias BaCO removes.
"""

from __future__ import annotations

from ..core.tuner import Tuner
from ..space.space import SearchSpace

__all__ = ["UniformSamplingTuner", "CoTSamplingTuner"]


class UniformSamplingTuner(Tuner):
    """Uniform random sampling over the feasible region."""

    name = "Uniform Sampling"
    _biased_cot = False

    def _run(self, budget: int) -> None:
        seen: set[tuple] = set()
        while self._remaining(budget) > 0:
            config = None
            for _ in range(32):
                candidate = self.space.sample_one(self._rng, biased_cot=self._biased_cot)
                key = self.space.freeze(candidate)
                if key not in seen:
                    seen.add(key)
                    config = candidate
                    break
            if config is None:
                config = self.space.sample_one(self._rng, biased_cot=self._biased_cot)
            self._evaluate(config)


class CoTSamplingTuner(UniformSamplingTuner):
    """Biased per-level Chain-of-Trees sampling (ATF-style)."""

    name = "CoT Sampling"
    _biased_cot = True
