"""Random-sampling baselines.

Two baselines from the evaluation (Sec. 5.1):

* :class:`UniformSamplingTuner` — samples uniformly from the feasible region
  (bias-free uniform-over-leaves sampling when a Chain-of-Trees exists).
* :class:`CoTSamplingTuner` — samples by walking each Chain-of-Trees tree and
  choosing a child uniformly at every level, which is the biased sampling
  scheme of Rasch et al.; this baseline isolates the impact of the sampling
  bias BaCO removes.

Both are ask/tell state machines: sampling happens at proposal time, so the
serial driver consumes the RNG exactly as the historical loop did, while
batch asks stay deduplicated against in-flight suggestions.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..core.session import frozen_key_from_json, frozen_key_to_json
from ..core.tuner import Tuner
from ..space.space import Configuration, SearchSpace

__all__ = ["UniformSamplingTuner", "CoTSamplingTuner"]


class UniformSamplingTuner(Tuner):
    """Uniform random sampling over the feasible region."""

    name = "Uniform Sampling"
    _biased_cot = False

    def __init__(self, space: SearchSpace, seed: int | None = None) -> None:
        super().__init__(space, seed=seed)
        # Keys accepted through the dedup loop.  Kept separate from the
        # base class's evaluated-key set to preserve the historical
        # semantics exactly: configurations accepted only via the
        # give-up fallback are *not* added, so they may be re-drawn.
        self._seen: set[tuple] = set()

    def _reset_state(self, budget: int) -> None:
        super()._reset_state(budget)
        self._seen = set()

    def _propose(self, k: int, pending_keys: set[tuple]) -> list[tuple[Configuration, str]]:
        proposals: list[tuple[Configuration, str]] = []
        blocked = self._seen | set(pending_keys)
        decode = self.space.encoder.decode
        for _ in range(k):
            # one vectorized draw replaces the historical loop of up to 32
            # scalar rejection-sampled draws; the semantics are preserved:
            # first unseen candidate wins, and a final give-up draw (never
            # added to the seen set, so it may be re-proposed later) covers
            # exhausted spaces
            config = None
            for row in self.space.sample_rows(
                self._rng, 32, biased_cot=self._biased_cot
            ):
                candidate = decode(row)
                key = self.space.freeze(candidate)
                if key not in blocked:
                    self._seen.add(key)
                    blocked.add(key)
                    config = candidate
                    break
            if config is None:
                config = self.space.sample_one(self._rng, biased_cot=self._biased_cot)
            proposals.append((config, "learning"))
        return proposals

    def _state_dict(self) -> dict[str, Any]:
        state = super()._state_dict()
        state["seen"] = [frozen_key_to_json(key) for key in sorted(self._seen)]
        return state

    def _load_state_dict(self, payload: Mapping[str, Any]) -> None:
        super()._load_state_dict(payload)
        self._seen = {frozen_key_from_json(item) for item in payload.get("seen", ())}


class CoTSamplingTuner(UniformSamplingTuner):
    """Biased per-level Chain-of-Trees sampling (ATF-style)."""

    name = "CoT Sampling"
    _biased_cot = True
