"""repro — a reproduction of BaCO, the Bayesian Compiler Optimization framework.

BaCO (Hellsten et al., ASPLOS 2023) is a portable autotuner for compilers
with scheduling languages.  This package re-implements the full system on
numpy/scipy:

* :mod:`repro.space` — mixed-type constrained search spaces (RIPOC +
  permutations, known constraints, Chain-of-Trees),
* :mod:`repro.models` — Gaussian processes over compiler domains and random
  forests, written from scratch,
* :mod:`repro.core` — the BaCO optimizer (feasibility-aware noiseless EI,
  multi-start local search, hidden-constraint model),
* :mod:`repro.baselines` — ATF/OpenTuner-like, Ytopt-like, and random
  sampling baselines,
* :mod:`repro.compilers` — simulated TACO, RISE & ELEVATE, and HPVM2FPGA
  toolchains used as black boxes,
* :mod:`repro.workloads` — the 25 benchmark instances of the evaluation,
* :mod:`repro.experiments` — the harness reproducing every table and figure.

Quickstart::

    import numpy as np
    from repro import (
        BacoTuner, SearchSpace, OrdinalParameter, CategoricalParameter,
        PermutationParameter, Constraint, ObjectiveResult,
    )

    space = SearchSpace(
        [
            OrdinalParameter("tile", [8, 16, 32, 64, 128], transform="log"),
            CategoricalParameter("schedule", ["static", "dynamic"]),
            PermutationParameter("loop_order", 3),
        ],
        [Constraint("tile >= 16")],
    )

    def compile_and_run(config) -> ObjectiveResult:
        ...  # invoke your compiler toolchain here

    history = BacoTuner(space, seed=0).tune(compile_and_run, budget=40)
    print(history.best().configuration, history.best_value())
"""

from .baselines import (
    CoTSamplingTuner,
    OpenTunerLikeTuner,
    UniformSamplingTuner,
    YtoptLikeTuner,
)
from .core import (
    BacoSettings,
    BacoTuner,
    Evaluation,
    ObjectiveResult,
    Tuner,
    TuningHistory,
)
from .space import (
    CategoricalParameter,
    Constraint,
    IntegerParameter,
    OrdinalParameter,
    PermutationParameter,
    RealParameter,
    SearchSpace,
)
from .workloads import Benchmark, benchmark_names, get_benchmark

__version__ = "1.0.0"

__all__ = [
    "BacoSettings",
    "BacoTuner",
    "Benchmark",
    "CategoricalParameter",
    "Constraint",
    "CoTSamplingTuner",
    "Evaluation",
    "IntegerParameter",
    "ObjectiveResult",
    "OpenTunerLikeTuner",
    "OrdinalParameter",
    "PermutationParameter",
    "RealParameter",
    "SearchSpace",
    "Tuner",
    "TuningHistory",
    "UniformSamplingTuner",
    "YtoptLikeTuner",
    "benchmark_names",
    "get_benchmark",
    "__version__",
]
