"""Simulated HPVM2FPGA: design-space exploration over FPGA compiler flags.

HPVM2FPGA explores compiler transformations — loop unrolling, greedy loop
fusion, argument privatization, kernel fusion — and reports an *estimated*
execution time for an Intel Arria-10 target.  The parameter space is
generated automatically from the program IR; most parameters are boolean
flags, with hidden constraints among them (Table 2/3 of the paper: "I/C, H").

The reproduction models each benchmark as a set of loops/kernels with
per-loop trip counts and baseline latencies.  Flags interact:

* unrolling a loop divides its latency but multiplies its resource usage,
* fusing two kernels removes intermediate buffer traffic but only if both
  are unrolled compatibly — otherwise the design fails placement (a hidden
  constraint, since the toolchain only discovers it after synthesis),
* argument privatization removes memory-port contention for the loops that
  read the privatized argument but costs BRAM,
* exceeding the device's LUT / BRAM / DSP budget makes the design
  unsynthesizable (hidden constraint — the estimator rejects it).

As in the paper, these benchmarks have no expert configuration; the default
configuration applies no transformations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

from ..core.result import ObjectiveResult
from .machines import ARRIA_10, FpgaMachine
from .taco import _config_noise

__all__ = ["FpgaLoop", "FpgaBenchmarkSpec", "HpvmFpgaKernel", "FPGA_BENCHMARKS"]


@dataclass(frozen=True)
class FpgaLoop:
    """One unrollable loop of the accelerated program."""

    name: str
    base_latency_ms: float
    trip_count: int
    #: LUT / DSP / BRAM cost of one replicated loop body
    luts: int
    dsps: int
    brams: int
    #: fraction of the latency that is memory-bound (unrolling does not help it)
    memory_fraction: float = 0.3


@dataclass(frozen=True)
class FpgaBenchmarkSpec:
    """Static description of one HPVM2FPGA benchmark."""

    name: str
    loops: tuple[FpgaLoop, ...]
    #: pairs of loop indices that may be fused by kernel fusion flags
    fusable: tuple[tuple[int, int], ...]
    #: latency saved (ms) by each successful fusion
    fusion_saving_ms: float
    #: privatizable arguments: (flag name, latency saving fraction, BRAM cost)
    privatizable: tuple[tuple[str, float, int], ...]
    base_overhead_ms: float = 0.5


FPGA_BENCHMARKS: dict[str, FpgaBenchmarkSpec] = {
    "bfs": FpgaBenchmarkSpec(
        name="bfs",
        loops=(
            FpgaLoop("visit", 2.6, 1 << 16, luts=9_000, dsps=12, brams=40, memory_fraction=0.55),
            FpgaLoop("frontier", 1.8, 1 << 14, luts=6_000, dsps=6, brams=24, memory_fraction=0.45),
        ),
        fusable=((0, 1),),
        fusion_saving_ms=0.7,
        privatizable=(("priv_levels", 0.18, 300),),
        base_overhead_ms=0.4,
    ),
    "audio": FpgaBenchmarkSpec(
        name="audio",
        loops=(
            FpgaLoop("fir_left", 1.1, 4096, luts=14_000, dsps=96, brams=60, memory_fraction=0.2),
            FpgaLoop("fir_right", 1.1, 4096, luts=14_000, dsps=96, brams=60, memory_fraction=0.2),
            FpgaLoop("rotate", 0.8, 2048, luts=8_000, dsps=48, brams=30, memory_fraction=0.25),
            FpgaLoop("fft", 0.9, 2048, luts=12_000, dsps=64, brams=44, memory_fraction=0.3),
            FpgaLoop("ifft", 0.9, 2048, luts=12_000, dsps=64, brams=44, memory_fraction=0.3),
            FpgaLoop("delay", 0.4, 1024, luts=3_500, dsps=8, brams=20, memory_fraction=0.5),
            FpgaLoop("mix", 0.6, 1024, luts=5_000, dsps=24, brams=16, memory_fraction=0.35),
            FpgaLoop("normalize", 0.5, 1024, luts=4_000, dsps=16, brams=12, memory_fraction=0.4),
        ),
        fusable=((0, 1), (3, 4), (5, 6), (6, 7)),
        fusion_saving_ms=0.35,
        privatizable=(
            ("priv_coeffs", 0.12, 400),
            ("priv_hrtf", 0.1, 500),
            ("priv_window", 0.06, 250),
        ),
        base_overhead_ms=0.8,
    ),
    "preeuler": FpgaBenchmarkSpec(
        name="preeuler",
        loops=(
            FpgaLoop("flux", 4.2, 1 << 15, luts=22_000, dsps=160, brams=90, memory_fraction=0.3),
            FpgaLoop("update", 3.1, 1 << 15, luts=16_000, dsps=110, brams=70, memory_fraction=0.4),
            FpgaLoop("timestep", 1.4, 1 << 13, luts=9_000, dsps=40, brams=30, memory_fraction=0.5),
            FpgaLoop("boundary", 0.9, 1 << 12, luts=6_000, dsps=20, brams=18, memory_fraction=0.55),
        ),
        fusable=((0, 1), (2, 3)),
        fusion_saving_ms=1.1,
        privatizable=(("priv_fluxes", 0.15, 600),),
        base_overhead_ms=1.0,
    ),
}


class HpvmFpgaKernel:
    """Black-box evaluator: flag configuration -> estimated FPGA execution time."""

    def __init__(
        self,
        benchmark: str,
        machine: FpgaMachine = ARRIA_10,
        noise: float = 0.02,
        seed: int = 0,
    ) -> None:
        if benchmark not in FPGA_BENCHMARKS:
            raise KeyError(
                f"unknown HPVM2FPGA benchmark {benchmark!r}; available: {sorted(FPGA_BENCHMARKS)}"
            )
        self.spec = FPGA_BENCHMARKS[benchmark]
        self.machine = machine
        self.noise = noise
        self.seed = seed

    # ------------------------------------------------------------------
    def _unroll_factor(self, configuration: Mapping[str, Any], index: int) -> int:
        return int(configuration.get(f"unroll_{self.spec.loops[index].name}", 1))

    def _fusion_enabled(self, configuration: Mapping[str, Any], pair_index: int) -> bool:
        return int(configuration.get(f"fuse_{pair_index}", 0)) == 1

    def resource_usage(self, configuration: Mapping[str, Any]) -> dict[str, float]:
        """Total LUT / DSP / BRAM usage of the requested design."""
        luts = 40_000.0  # static shell / interconnect
        dsps = 32.0
        brams = 120.0
        for index, loop in enumerate(self.spec.loops):
            unroll = max(1, self._unroll_factor(configuration, index))
            luts += loop.luts * unroll
            dsps += loop.dsps * unroll
            brams += loop.brams * (1.0 + 0.35 * (unroll - 1))
        for flag, _saving, bram_cost in self.spec.privatizable:
            if int(configuration.get(flag, 0)) == 1:
                brams += bram_cost
        for pair_index, _pair in enumerate(self.spec.fusable):
            if self._fusion_enabled(configuration, pair_index):
                luts += 3_000.0
        return {"luts": luts, "dsps": dsps, "brams": brams}

    def _hidden_violation(self, configuration: Mapping[str, Any]) -> bool:
        usage = self.resource_usage(configuration)
        if usage["luts"] > self.machine.luts or usage["dsps"] > self.machine.dsps:
            return True
        if usage["brams"] > self.machine.brams:
            return True
        # incompatible fusion: fusing loops whose unroll factors differ by more
        # than 4x fails scheduling inside the HLS backend.
        for pair_index, (a, b) in enumerate(self.spec.fusable):
            if self._fusion_enabled(configuration, pair_index):
                ua = max(1, self._unroll_factor(configuration, a))
                ub = max(1, self._unroll_factor(configuration, b))
                if max(ua, ub) / min(ua, ub) > 4:
                    return True
        return False

    # ------------------------------------------------------------------
    def evaluate(self, configuration: Mapping[str, Any]) -> ObjectiveResult:
        """Estimated execution time in milliseconds of the generated design."""
        if self._hidden_violation(configuration):
            return ObjectiveResult(value=math.inf, feasible=False)

        total = self.spec.base_overhead_ms
        privatized_saving = 0.0
        for flag, saving, _bram in self.spec.privatizable:
            if int(configuration.get(flag, 0)) == 1:
                privatized_saving += saving

        for index, loop in enumerate(self.spec.loops):
            unroll = max(1, self._unroll_factor(configuration, index))
            compute = loop.base_latency_ms * (1.0 - loop.memory_fraction) / unroll
            memory = loop.base_latency_ms * loop.memory_fraction
            memory *= max(0.5, 1.0 - privatized_saving)
            # deeper unrolling lowers the achievable clock slightly
            clock_penalty = 1.0 + 0.03 * math.log2(unroll)
            total += (compute + memory) * clock_penalty

        for pair_index, _pair in enumerate(self.spec.fusable):
            if self._fusion_enabled(configuration, pair_index):
                total -= self.spec.fusion_saving_ms
        total = max(total, 0.05)
        total *= _config_noise(configuration, self.seed, self.noise)
        return ObjectiveResult(value=float(total), feasible=True)

    __call__ = evaluate
