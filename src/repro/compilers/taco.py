"""Simulated TACO: a cost model for autotuning sparse tensor algebra schedules.

The real TACO compiler generates C code for sparse tensor expressions and its
scheduling language exposes tiling (split factors), loop reordering
(permutations), parallelization strategy and unrolling.  This module replaces
"generate + compile + run on a Xeon" with an analytic cost model that keeps
the properties that matter for reproducing the *autotuning* results:

* runtimes are a smooth-but-rugged function of log-scale tile parameters with
  a tensor-dependent optimum (cache capacity model),
* the loop-order permutation matters a lot: a small set of orders close to
  the concordant traversal is fast, discordant orders that traverse the
  compressed dimension out of order are catastrophically slow (the paper
  notes SpMV schedules can be "several orders of magnitude" slower),
* the best loop order is *not* the default one, so a tuner that explores
  permutations can beat the expert configuration by ~10% (Sec. 5.3, RQ4),
* parallelization strategy interacts with the row imbalance of the tensor
  (static scheduling suffers on skewed social-network graphs),
* the TTV benchmark has a *hidden* constraint: certain combinations of
  dynamic scheduling and reduction-loop-outermost orders fail code
  generation, mirroring Table 3's "K/H" entry.

Each kernel instance is a deterministic function of the configuration (noise
is derived from a hash of the configuration), so experiments are reproducible
and tuner-to-tuner comparisons are fair.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..core.result import ObjectiveResult
from .machines import CpuMachine, XEON_GOLD_6130
from .tensors import SparseTensor

__all__ = ["TacoExpression", "TacoKernel", "TACO_EXPRESSIONS"]


@dataclass(frozen=True)
class TacoExpression:
    """Static description of one tensor-algebra expression."""

    name: str
    #: number of nested loops exposed to reordering
    n_loops: int
    #: floating point operations per nonzero (dense rank R multiplies in)
    flops_per_nnz: float
    #: bytes moved per nonzero (index + value traffic)
    bytes_per_nnz: float
    #: index (in the canonical loop order) of the compressed/reduction loop
    reduction_loop: int
    #: whether the expression exhibits TACO's hidden code-generation failures
    has_hidden_constraint: bool = False


#: dense rank used for the dense operands of SpMM / SDDMM / MTTKRP
_DENSE_RANK = 64

TACO_EXPRESSIONS: dict[str, TacoExpression] = {
    "spmv": TacoExpression("spmv", n_loops=5, flops_per_nnz=2.0, bytes_per_nnz=16.0, reduction_loop=4),
    "spmm": TacoExpression(
        "spmm", n_loops=5, flops_per_nnz=2.0 * _DENSE_RANK, bytes_per_nnz=12.0 + 8.0 * _DENSE_RANK / 4, reduction_loop=4
    ),
    "sddmm": TacoExpression(
        "sddmm", n_loops=5, flops_per_nnz=3.0 * _DENSE_RANK, bytes_per_nnz=20.0 + 8.0 * _DENSE_RANK / 4, reduction_loop=4
    ),
    "ttv": TacoExpression(
        "ttv", n_loops=5, flops_per_nnz=2.0, bytes_per_nnz=20.0, reduction_loop=4, has_hidden_constraint=True
    ),
    "mttkrp": TacoExpression(
        "mttkrp", n_loops=4, flops_per_nnz=3.0 * _DENSE_RANK, bytes_per_nnz=24.0 + 8.0 * _DENSE_RANK / 4, reduction_loop=3
    ),
}


def _config_noise(configuration: Mapping[str, Any], seed: int, scale: float) -> float:
    """Deterministic multiplicative noise derived from the configuration."""
    digest = hashlib.sha256(
        (str(sorted(configuration.items())) + f"|{seed}").encode()
    ).digest()
    u = int.from_bytes(digest[:8], "little") / 2**64
    # map the uniform hash to a roughly normal perturbation
    z = math.sqrt(-2.0 * math.log(max(u, 1e-12))) * math.cos(
        2.0 * math.pi * int.from_bytes(digest[8:16], "little") / 2**64
    )
    return float(np.clip(1.0 + scale * z, 0.5, 2.0))


class TacoKernel:
    """The black box: one tensor expression applied to one sparse tensor."""

    def __init__(
        self,
        expression: str,
        tensor: SparseTensor,
        machine: CpuMachine = XEON_GOLD_6130,
        noise: float = 0.03,
        seed: int = 0,
    ) -> None:
        if expression not in TACO_EXPRESSIONS:
            raise KeyError(
                f"unknown TACO expression {expression!r}; available: {sorted(TACO_EXPRESSIONS)}"
            )
        self.expression = TACO_EXPRESSIONS[expression]
        self.tensor = tensor
        self.machine = machine
        self.noise = noise
        self.seed = seed

    # ------------------------------------------------------------------
    @property
    def best_loop_order(self) -> tuple[int, ...]:
        """The fastest loop order: concordant order with the two innermost loops swapped.

        The default (identity) order is concordant and therefore good, but a
        slightly different order is ~10% faster — this is what lets BaCO beat
        the expert configurations, which only consider the default order.
        """
        n = self.expression.n_loops
        order = list(range(n))
        order[-1], order[-2] = order[-2], order[-1]
        return tuple(order)

    # ------------------------------------------------------------------
    def evaluate(self, configuration: Mapping[str, Any]) -> ObjectiveResult:
        """Estimated runtime in milliseconds for the schedule ``configuration``."""
        if self._violates_hidden_constraint(configuration):
            return ObjectiveResult(value=math.inf, feasible=False)
        runtime = self._base_runtime_ms()
        runtime *= 1.0 + self._order_penalty(configuration)
        runtime *= 1.0 + self._cache_penalty(configuration)
        runtime /= self._parallel_efficiency(configuration)
        runtime *= 1.0 + self._unroll_penalty(configuration)
        runtime *= _config_noise(configuration, self.seed, self.noise)
        return ObjectiveResult(value=float(runtime), feasible=True)

    __call__ = evaluate

    # ------------------------------------------------------------------
    def _base_runtime_ms(self) -> float:
        """Roofline estimate of the single-thread runtime."""
        flops = self.tensor.nnz * self.expression.flops_per_nnz
        traffic = self.tensor.nnz * self.expression.bytes_per_nnz + self.tensor.working_set_bytes()
        compute_ms = flops / (self.machine.peak_gflops / self.machine.n_cores * 1e6)
        memory_ms = traffic / (self.machine.mem_bandwidth_gib * 1024**3) * 1e3
        return max(compute_ms, memory_ms)

    def _order_penalty(self, configuration: Mapping[str, Any]) -> float:
        perm = configuration.get("permutation")
        if perm is None:
            return 0.12
        perm = tuple(int(v) for v in perm)
        best = self.best_loop_order
        weights = np.array([1.6 / (1.6**j) for j in range(len(best))])
        displacement = np.array([abs(perm[j] - best[j]) for j in range(len(best))], dtype=float)
        penalty = float(np.dot(weights, displacement)) * 0.12
        # Discordant traversal: the compressed reduction loop hoisted outermost
        # forces random access into the compressed structure -> catastrophic.
        if perm[0] == self.expression.reduction_loop:
            penalty += 8.0 + 40.0 * self.tensor.skew
        return penalty

    def _cache_penalty(self, configuration: Mapping[str, Any]) -> float:
        penalty = 0.0
        row_bytes = max(self.tensor.nnz_per_row, 1.0) * 12.0
        ideal_chunk = float(np.clip(self.machine.l2_kib * 1024.0 / (row_bytes * 4.0), 8.0, 512.0))
        chunk = float(configuration.get("chunk_size", 32))
        penalty += 0.22 * abs(math.log2(chunk) - math.log2(ideal_chunk))
        if "chunk_size2" in configuration:
            penalty += 0.07 * abs(math.log2(float(configuration["chunk_size2"])) - math.log2(16.0))
        if "chunk_size3" in configuration:
            penalty += 0.05 * abs(math.log2(float(configuration["chunk_size3"])) - math.log2(8.0))
        return penalty

    def _parallel_efficiency(self, configuration: Mapping[str, Any]) -> float:
        cores = self.machine.n_cores
        chunk = float(configuration.get("chunk_size", 32))
        n_chunks = max(self.tensor.n_rows / chunk, 1.0)
        scalability = min(1.0, n_chunks / cores)
        scheduling = configuration.get("omp_scheduling", "static")
        omp_chunk = float(configuration.get("omp_chunk_size", 16))
        if scheduling == "static":
            overhead = 2.2 * self.tensor.skew + 0.3 * self.tensor.row_imbalance / 4.0
        elif scheduling == "dynamic":
            dispatches = n_chunks / max(omp_chunk, 1.0)
            overhead = 0.08 + min(0.4, dispatches / 40_000.0) + 0.25 * self.tensor.skew * (omp_chunk / 256.0)
        else:  # guided
            overhead = 0.05 + 0.8 * self.tensor.skew
        efficiency = cores * scalability / (1.0 + overhead)
        return max(efficiency, 1.0)

    def _unroll_penalty(self, configuration: Mapping[str, Any]) -> float:
        unroll = float(configuration.get("unroll_factor", 1))
        return 0.05 * abs(math.log2(unroll) - math.log2(8.0))

    def _violates_hidden_constraint(self, configuration: Mapping[str, Any]) -> bool:
        """TTV-style hidden failure: reduction loop outermost + dynamic scheduling."""
        if not self.expression.has_hidden_constraint:
            return False
        perm = configuration.get("permutation")
        if perm is None:
            return False
        perm = tuple(int(v) for v in perm)
        scheduling = configuration.get("omp_scheduling", "static")
        return perm[0] == self.expression.reduction_loop and scheduling != "static"
