"""Synthetic sparse tensors standing in for SuiteSparse / FROSTT datasets.

The paper's TACO evaluation (Table 4) uses real sparse matrices and tensors
(SuiteSparse, the Facebook Activities graph, FROSTT tensors and synthetic
uniform tensors).  Those datasets are not available offline, so this module
generates *synthetic* tensors with the same shapes and nonzero counts and a
controllable nonzero structure (uniform vs. power-law row distributions).

Only the summary statistics of the sparsity pattern matter for the analytic
TACO cost model (rows, columns, nnz, average nonzeros per row, row imbalance,
density), so the generator materializes per-row nonzero counts rather than
explicit coordinates — this keeps tensor creation fast while still giving the
different datasets genuinely different tuning landscapes (e.g. a social
network graph rewards dynamic scheduling much more than a uniform random
matrix does).
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

__all__ = ["SparseTensor", "generate_tensor", "TENSOR_REGISTRY", "get_tensor"]


@dataclass(frozen=True)
class SparseTensor:
    """Summary description of a sparse tensor used by the TACO cost model."""

    name: str
    shape: tuple[int, ...]
    nnz: int
    #: coefficient of variation of nonzeros per row (0 = perfectly balanced)
    row_imbalance: float
    #: fraction of nonzeros concentrated in the densest 1% of rows
    skew: float
    #: data source tag mirroring Table 4 ("SS", "FB", "FT", "Rand")
    source: str = "Rand"

    @property
    def n_modes(self) -> int:
        return len(self.shape)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1] if len(self.shape) > 1 else 1

    @property
    def density(self) -> float:
        total = 1.0
        for dim in self.shape:
            total *= dim
        return self.nnz / total

    @property
    def nnz_per_row(self) -> float:
        return self.nnz / self.n_rows

    def working_set_bytes(self, value_bytes: int = 8, index_bytes: int = 4) -> float:
        """Approximate memory footprint of the compressed tensor."""
        return self.nnz * (value_bytes + index_bytes * (self.n_modes - 1)) + self.n_rows * index_bytes


def generate_tensor(
    name: str,
    shape: tuple[int, ...],
    nnz: int,
    distribution: str = "uniform",
    source: str = "Rand",
    seed: int = 0,
) -> SparseTensor:
    """Create a synthetic tensor with the requested shape / nnz / structure.

    ``distribution`` selects the per-row nonzero distribution:

    * ``"uniform"`` — balanced rows (synthetic random tensors),
    * ``"powerlaw"`` — heavy-tailed rows (social networks, circuits),
    * ``"banded"`` — moderately structured rows (PDE / fluid-dynamics meshes).
    """
    if nnz <= 0:
        raise ValueError("nnz must be positive")
    if any(dim <= 0 for dim in shape):
        raise ValueError("all tensor dimensions must be positive")
    # zlib.crc32, not hash(): str hashing is randomized per process, which
    # would make tensor contents -- and every TACO objective value -- differ
    # between processes and break the orchestrator's bit-identical guarantee
    rng = np.random.default_rng(seed ^ (zlib.crc32(name.encode()) & 0xFFFF))
    n_rows = shape[0]
    mean_per_row = nnz / n_rows
    if distribution == "uniform":
        counts = rng.poisson(mean_per_row, size=min(n_rows, 100_000)).astype(float) + 1e-9
    elif distribution == "powerlaw":
        raw = rng.pareto(1.6, size=min(n_rows, 100_000)) + 1.0
        counts = raw / raw.mean() * mean_per_row
    elif distribution == "banded":
        base = rng.poisson(mean_per_row, size=min(n_rows, 100_000)).astype(float)
        ramp = 1.0 + 0.5 * np.sin(np.linspace(0, 8 * math.pi, len(base)))
        counts = base * ramp + 1e-9
    else:
        raise ValueError(f"unknown distribution {distribution!r}")
    counts = np.maximum(counts, 1e-9)
    imbalance = float(np.std(counts) / np.mean(counts))
    sorted_counts = np.sort(counts)[::-1]
    top = max(1, len(counts) // 100)
    skew = float(sorted_counts[:top].sum() / counts.sum())
    return SparseTensor(
        name=name,
        shape=tuple(int(d) for d in shape),
        nnz=int(nnz),
        row_imbalance=imbalance,
        skew=skew,
        source=source,
    )


#: (shape, nnz, distribution, source) for every dataset of Table 4 plus
#: amazon0312 (used by Fig. 8/9).
_TENSOR_SPECS: dict[str, tuple[tuple[int, ...], int, str, str]] = {
    "ACTIVSg10K": ((20_000, 20_000), 135_888, "banded", "SS"),
    "email-Enron": ((36_692, 36_692), 367_662, "powerlaw", "SS"),
    "Goodwin_040": ((17_922, 17_922), 561_677, "banded", "SS"),
    "scircuit": ((170_998, 170_998), 958_936, "powerlaw", "SS"),
    "filter3D": ((106_437, 106_437), 2_707_179, "banded", "SS"),
    "laminar_duct3D": ((67_173, 67_173), 3_788_857, "banded", "SS"),
    "cage12": ((130_228, 130_228), 2_032_536, "uniform", "SS"),
    "smt": ((25_710, 25_710), 3_749_582, "banded", "SS"),
    "amazon0312": ((400_727, 400_727), 3_200_440, "powerlaw", "SS"),
    "random2": ((10_000, 10_000), 5_000_000, "uniform", "Rand"),
    "random1": ((1_000, 500, 100), 5_000_000, "uniform", "Rand"),
    "facebook": ((1_504, 42_390, 39_986), 737_934, "powerlaw", "FB"),
    "uber": ((183, 24, 1_140, 1_717), 3_309_490, "uniform", "FT"),
    "nips": ((2_482, 2_482, 14_036, 17), 3_101_609, "powerlaw", "FT"),
    "chicago": ((6_186, 24, 77, 32), 5_330_673, "uniform", "FT"),
    "uber3": ((183, 1_140, 1_717), 1_117_629, "uniform", "FT"),
}

TENSOR_REGISTRY = sorted(_TENSOR_SPECS)


@lru_cache(maxsize=None)
def get_tensor(name: str) -> SparseTensor:
    """Look up (and lazily generate) one of the Table 4 tensors by name."""
    if name not in _TENSOR_SPECS:
        raise KeyError(f"unknown tensor {name!r}; available: {TENSOR_REGISTRY}")
    shape, nnz, distribution, source = _TENSOR_SPECS[name]
    return generate_tensor(name, shape, nnz, distribution=distribution, source=source)
