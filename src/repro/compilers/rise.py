"""Simulated RISE & ELEVATE: cost models for rewritten CPU / GPU kernels.

RISE expresses computations with data-parallel patterns and ELEVATE applies
rewrite strategies (tiling, vectorization, work-group mapping, coalescing).
The autotuner picks the numerical parameters of those rewrites (tile sizes,
local/work-group sizes, vector widths, sequential work per thread) subject to

* **known constraints** collected by the compiler, mostly divisibility
  relations between tile sizes, work-group sizes and problem sizes, and the
  device limit on work-group size, and
* **hidden constraints** discovered at run time, mostly exceeding the GPU's
  shared-memory or register budgets, in which case the generated kernel fails
  to execute.

Two cost models are provided:

* :class:`RiseGpuKernel` — a roofline + occupancy model of an OpenCL kernel
  on a K80-class GPU.  It covers the dense linear algebra (MM, Asum, Scal,
  K-means), stencil, and image-processing (Harris) benchmarks through a small
  per-benchmark parameter-role specification.
* :class:`RiseCpuKernel` — a cache-blocking + vectorization model of the
  MM_CPU benchmark, which also exposes a loop-permutation parameter.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..core.result import ObjectiveResult
from .machines import CpuMachine, GpuMachine, NVIDIA_K80, XEON_E5_2650
from .taco import _config_noise

__all__ = ["GpuKernelSpec", "RiseGpuKernel", "RiseCpuKernel", "GPU_KERNEL_SPECS"]


@dataclass(frozen=True)
class GpuKernelSpec:
    """Static description of one RISE GPU benchmark.

    ``roles`` maps parameter names (as used in the search space) to semantic
    roles understood by the cost model:

    * ``"local0"`` / ``"local1"`` — work-group dimensions,
    * ``"tile0"`` / ``"tile1"`` / ``"tile_k"`` — tile sizes staged in shared memory,
    * ``"vector"`` — vector width of loads/stores,
    * ``"seq"`` — sequential work items per thread,
    * ``"split"`` — reduction split factor (tree reduction width).
    """

    name: str
    #: problem sizes (rows, cols, depth) — depth 1 for 1-D / 2-D kernels
    problem: tuple[int, int, int]
    flops_per_element: float
    bytes_per_element: float
    roles: dict[str, str]
    #: multiplicative weight of shared-memory staging traffic saved by tiling
    reuse_weight: float = 1.0
    #: whether exceeding shared memory / registers is possible (hidden constraints)
    has_hidden_constraint: bool = True
    #: launch overhead in milliseconds
    launch_overhead_ms: float = 0.02


def _mm_roles() -> dict[str, str]:
    return {
        "ls0": "local0",
        "ls1": "local1",
        "ts0": "tile0",
        "ts1": "tile1",
        "tk": "tile_k",
        "vw": "vector",
        "sq0": "seq",
        "sq1": "seq2",
        "split": "split",
        "swizzle": "swizzle",
    }


GPU_KERNEL_SPECS: dict[str, GpuKernelSpec] = {
    "mm_gpu": GpuKernelSpec(
        name="mm_gpu",
        problem=(1024, 1024, 1024),
        flops_per_element=2.0 * 1024,
        bytes_per_element=8.0,
        roles=_mm_roles(),
        reuse_weight=2.2,
    ),
    "asum_gpu": GpuKernelSpec(
        name="asum_gpu",
        problem=(1 << 22, 1, 1),
        flops_per_element=1.0,
        bytes_per_element=4.0,
        roles={"ls0": "local0", "split": "split", "sq0": "seq", "vw": "vector", "gs0": "tile0"},
        reuse_weight=0.2,
        has_hidden_constraint=False,
    ),
    "scal_gpu": GpuKernelSpec(
        name="scal_gpu",
        problem=(1 << 23, 1, 1),
        flops_per_element=1.0,
        bytes_per_element=8.0,
        roles={
            "ls0": "local0",
            "ls1": "local1",
            "gs0": "tile0",
            "gs1": "tile1",
            "sq0": "seq",
            "sq1": "seq2",
            "vw": "vector",
        },
        reuse_weight=0.2,
    ),
    "kmeans_gpu": GpuKernelSpec(
        name="kmeans_gpu",
        problem=(200_000, 34, 5),
        flops_per_element=3.0 * 34,
        bytes_per_element=4.0 * 34,
        roles={"ls0": "local0", "ls1": "local1", "sq0": "seq", "vw": "vector"},
        reuse_weight=0.8,
    ),
    "harris_gpu": GpuKernelSpec(
        name="harris_gpu",
        problem=(1536, 2560, 1),
        flops_per_element=40.0,
        bytes_per_element=12.0,
        roles={
            "ls0": "local0",
            "ls1": "local1",
            "ts0": "tile0",
            "ts1": "tile1",
            "vw": "vector",
            "sq0": "seq",
            "split": "split",
        },
        reuse_weight=1.6,
        has_hidden_constraint=False,
    ),
    "stencil_gpu": GpuKernelSpec(
        name="stencil_gpu",
        problem=(4096, 4096, 1),
        flops_per_element=9.0,
        bytes_per_element=8.0,
        roles={"ls0": "local0", "ls1": "local1", "ts0": "tile0", "ts1": "tile1"},
        reuse_weight=1.4,
        has_hidden_constraint=False,
    ),
}


class RiseGpuKernel:
    """Black-box evaluator for a RISE-generated OpenCL kernel on a GPU."""

    def __init__(
        self,
        benchmark: str,
        machine: GpuMachine = NVIDIA_K80,
        noise: float = 0.04,
        seed: int = 0,
    ) -> None:
        if benchmark not in GPU_KERNEL_SPECS:
            raise KeyError(
                f"unknown RISE GPU benchmark {benchmark!r}; available: {sorted(GPU_KERNEL_SPECS)}"
            )
        self.spec = GPU_KERNEL_SPECS[benchmark]
        self.machine = machine
        self.noise = noise
        self.seed = seed

    # ------------------------------------------------------------------
    def _value(self, configuration: Mapping[str, Any], role: str, default: float) -> float:
        for name, param_role in self.spec.roles.items():
            if param_role == role and name in configuration:
                return float(configuration[name])
        return default

    # ------------------------------------------------------------------
    def shared_memory_bytes(self, configuration: Mapping[str, Any]) -> float:
        """Shared-memory bytes staged per work group (tiles of the inputs)."""
        tile0 = self._value(configuration, "tile0", 32)
        tile1 = self._value(configuration, "tile1", 32)
        tile_k = self._value(configuration, "tile_k", 1)
        return (tile0 * max(tile_k, 1) + tile1 * max(tile_k, 1)) * 4.0

    def registers_per_thread(self, configuration: Mapping[str, Any]) -> float:
        """Rough register-pressure estimate from per-thread work and vector width."""
        vector = self._value(configuration, "vector", 1)
        seq = self._value(configuration, "seq", 1) * self._value(configuration, "seq2", 1)
        return 24.0 + 4.0 * vector + 2.0 * seq

    def _hidden_violation(self, configuration: Mapping[str, Any]) -> bool:
        if not self.spec.has_hidden_constraint:
            return False
        if self.shared_memory_bytes(configuration) > self.machine.shared_memory_kib * 1024.0:
            return True
        local = self._value(configuration, "local0", 32) * self._value(configuration, "local1", 1)
        total_registers = self.registers_per_thread(configuration) * local
        return total_registers > self.machine.registers_per_cu

    # ------------------------------------------------------------------
    def evaluate(self, configuration: Mapping[str, Any]) -> ObjectiveResult:
        """Estimated kernel runtime in milliseconds."""
        if self._hidden_violation(configuration):
            return ObjectiveResult(value=math.inf, feasible=False)

        rows, cols, _depth = self.spec.problem
        elements = rows * cols
        local0 = self._value(configuration, "local0", 32)
        local1 = self._value(configuration, "local1", 1)
        vector = self._value(configuration, "vector", 1)
        tile0 = self._value(configuration, "tile0", local0)
        tile1 = self._value(configuration, "tile1", local1)
        tile_k = self._value(configuration, "tile_k", 1)
        seq = self._value(configuration, "seq", 1) * self._value(configuration, "seq2", 1)
        split = self._value(configuration, "split", 1)

        work_group = local0 * local1
        # occupancy: work groups per compute unit limited by threads and shared memory
        shared = max(self.shared_memory_bytes(configuration), 1.0)
        wg_by_shared = (self.machine.shared_memory_kib * 1024.0) / shared
        wg_by_threads = 2048.0 / max(work_group, 1.0)
        resident = min(8.0, wg_by_shared, wg_by_threads)
        occupancy = min(1.0, resident * work_group / 2048.0)
        # very small work groups waste warp lanes
        warp_efficiency = min(1.0, work_group / self.machine.warp_size)

        flops = elements * self.spec.flops_per_element
        compute_ms = flops / (self.machine.peak_gflops * 1e6) / max(occupancy, 0.05)

        # memory traffic: tiling reuses data staged in shared memory,
        # vectorized and coalesced accesses approach peak bandwidth.
        reuse = 1.0 + self.spec.reuse_weight * math.log2(max(min(tile0, tile1) * max(tile_k, 1), 1.0))
        coalescing = min(1.0, (local0 * vector) / 32.0)
        coalescing = max(coalescing, 0.1)
        vector_boost = 1.0 + 0.15 * math.log2(max(vector, 1.0))
        traffic = elements * self.spec.bytes_per_element / max(reuse, 1.0)
        bandwidth = self.machine.mem_bandwidth_gib * 1024**3 * coalescing * vector_boost
        memory_ms = traffic / bandwidth * 1e3

        # reductions: too little sequential work -> tree overhead; too much -> serialization
        seq_penalty = 0.06 * abs(math.log2(max(seq, 1.0)) - 3.0)
        split_penalty = 0.04 * abs(math.log2(max(split, 1.0)) - 5.0) if "split" in self.spec.roles.values() else 0.0
        imbalance = 0.15 if (rows % max(tile0, 1) != 0 or cols % max(tile1, 1) != 0) else 0.0

        runtime = max(compute_ms, memory_ms) / max(warp_efficiency, 0.05)
        runtime *= 1.0 + seq_penalty + split_penalty + imbalance
        runtime += self.spec.launch_overhead_ms
        runtime *= _config_noise(configuration, self.seed, self.noise)
        return ObjectiveResult(value=float(runtime), feasible=True)

    __call__ = evaluate


class RiseCpuKernel:
    """Cache-blocked, vectorized matrix multiplication on a CPU (MM_CPU).

    Parameters: tile sizes ``ts0``/``ts1``/``tk`` (ordinal, power of two),
    vector width ``vw``, and the loop-order ``permutation`` of the three
    blocked loops.  Known constraints require tiles to divide the problem
    size; the hidden constraint models the compiler's vectorizer rejecting
    innermost loops that are too short for the chosen vector width.
    """

    def __init__(
        self,
        problem: tuple[int, int, int] = (1024, 1024, 1024),
        machine: CpuMachine = XEON_E5_2650,
        noise: float = 0.03,
        seed: int = 0,
    ) -> None:
        self.problem = problem
        self.machine = machine
        self.noise = noise
        self.seed = seed

    best_loop_order = (1, 0, 2)

    def evaluate(self, configuration: Mapping[str, Any]) -> ObjectiveResult:
        n, m, k = self.problem
        ts0 = float(configuration.get("ts0", 32))
        ts1 = float(configuration.get("ts1", 32))
        tk = float(configuration.get("tk", 32))
        vw = float(configuration.get("vw", 4))

        # hidden constraint: innermost tile shorter than the vector width makes
        # the vectorizer bail out and code generation fail.
        if ts1 < vw:
            return ObjectiveResult(value=math.inf, feasible=False)

        flops = 2.0 * n * m * k
        compute_ms = flops / (self.machine.peak_gflops * 1e6)
        vector_eff = min(1.0, 0.55 + 0.15 * math.log2(max(vw, 1.0)))

        # cache blocking: the working set of a tile should fit in L2
        tile_bytes = (ts0 * tk + tk * ts1 + ts0 * ts1) * 8.0
        l2_bytes = self.machine.l2_kib * 1024.0
        if tile_bytes <= l2_bytes:
            cache_penalty = 0.12 * abs(math.log2(max(tile_bytes, 1.0)) - math.log2(l2_bytes * 0.5))
        else:
            cache_penalty = 0.9 * math.log2(tile_bytes / l2_bytes + 1.0)

        perm = configuration.get("permutation")
        if perm is None:
            order_penalty = 0.1
        else:
            perm = tuple(int(v) for v in perm)
            weights = (0.5, 0.3, 0.15)
            order_penalty = 0.15 * sum(
                w * abs(p - b) for w, p, b in zip(weights, perm, self.best_loop_order)
            )
            if perm[-1] == 2:  # reduction loop innermost prevents register blocking
                order_penalty += 0.25

        runtime = compute_ms / (self.machine.n_cores * vector_eff)
        runtime *= 1.0 + cache_penalty + order_penalty
        runtime *= _config_noise(configuration, self.seed, self.noise)
        return ObjectiveResult(value=float(runtime), feasible=True)

    __call__ = evaluate
