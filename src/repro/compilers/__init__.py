"""Simulated compiler toolchains (the black boxes being autotuned)."""

from .hpvm2fpga import FPGA_BENCHMARKS, FpgaBenchmarkSpec, FpgaLoop, HpvmFpgaKernel
from .machines import (
    ARRIA_10,
    CpuMachine,
    FpgaMachine,
    GpuMachine,
    NVIDIA_K80,
    XEON_E5_2650,
    XEON_GOLD_6130,
)
from .rise import GPU_KERNEL_SPECS, GpuKernelSpec, RiseCpuKernel, RiseGpuKernel
from .taco import TACO_EXPRESSIONS, TacoExpression, TacoKernel
from .tensors import SparseTensor, TENSOR_REGISTRY, generate_tensor, get_tensor

__all__ = [
    "ARRIA_10",
    "CpuMachine",
    "FPGA_BENCHMARKS",
    "FpgaBenchmarkSpec",
    "FpgaLoop",
    "FpgaMachine",
    "GPU_KERNEL_SPECS",
    "GpuKernelSpec",
    "GpuMachine",
    "HpvmFpgaKernel",
    "NVIDIA_K80",
    "RiseCpuKernel",
    "RiseGpuKernel",
    "SparseTensor",
    "TACO_EXPRESSIONS",
    "TENSOR_REGISTRY",
    "TacoExpression",
    "TacoKernel",
    "XEON_E5_2650",
    "XEON_GOLD_6130",
    "generate_tensor",
    "get_tensor",
]
