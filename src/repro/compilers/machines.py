"""Simple machine models used by the simulated compiler toolchains.

These stand in for the hardware of the paper's evaluation (dual Xeon Gold
6130 for TACO, Xeon E5-2650 v3 + NVIDIA K80 for RISE & ELEVATE, Intel
Arria-10 GX for HPVM2FPGA).  Only coarse characteristics matter for the cost
models: peak throughput, cache / memory sizes, core / compute-unit counts and
resource budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CpuMachine", "GpuMachine", "FpgaMachine", "XEON_GOLD_6130", "XEON_E5_2650", "NVIDIA_K80", "ARRIA_10"]


@dataclass(frozen=True)
class CpuMachine:
    """A multicore CPU node."""

    name: str
    n_cores: int
    peak_gflops: float
    #: last-level cache per socket in MiB
    llc_mib: float
    #: per-core private cache in KiB
    l2_kib: float
    #: sustainable memory bandwidth in GiB/s
    mem_bandwidth_gib: float


@dataclass(frozen=True)
class GpuMachine:
    """A CUDA/OpenCL-style GPU."""

    name: str
    n_compute_units: int
    max_work_group_size: int
    shared_memory_kib: float
    registers_per_cu: int
    peak_gflops: float
    mem_bandwidth_gib: float
    warp_size: int = 32


@dataclass(frozen=True)
class FpgaMachine:
    """An FPGA device with finite logic / memory / DSP resources."""

    name: str
    luts: int
    brams: int
    dsps: int
    clock_mhz: float


XEON_GOLD_6130 = CpuMachine(
    name="2x Intel Xeon Gold 6130",
    n_cores=32,
    peak_gflops=2150.0,
    llc_mib=22.0,
    l2_kib=1024.0,
    mem_bandwidth_gib=119.0,
)

XEON_E5_2650 = CpuMachine(
    name="Intel Xeon E5-2650 v3 (8 cores used)",
    n_cores=8,
    peak_gflops=290.0,
    llc_mib=25.0,
    l2_kib=256.0,
    mem_bandwidth_gib=68.0,
)

NVIDIA_K80 = GpuMachine(
    name="NVIDIA K80 (one GK210)",
    n_compute_units=13,
    max_work_group_size=1024,
    shared_memory_kib=48.0,
    registers_per_cu=65_536,
    peak_gflops=2910.0,
    mem_bandwidth_gib=240.0,
)

ARRIA_10 = FpgaMachine(
    name="Intel Arria 10 GX 1150",
    luts=427_200,
    brams=2_713,
    dsps=1_518,
    clock_mhz=240.0,
)
