"""Parameter types for autotuning search spaces.

BaCO (Sec. 4.1) supports the full RIPOC set of parameter types plus
permutations:

* :class:`RealParameter` -- continuous parameters (e.g. a probability).
* :class:`IntegerParameter` -- integer parameters (e.g. a tile size).
* :class:`OrdinalParameter` -- discrete, ordered values (e.g. unroll factors).
* :class:`CategoricalParameter` -- discrete, unordered values (e.g. a
  parallelization scheme).
* :class:`PermutationParameter` -- orderings of ``n`` elements (e.g. loop
  reorderings).

Each parameter knows how to

* sample a value uniformly at random,
* measure the *distance* between two of its values (this is what feeds the
  Gaussian-process kernel, Eq. (2) of the paper),
* enumerate the *neighbours* of a value (used by the acquisition-function
  local search, Sec. 3.3),
* convert values to a numeric *internal* representation used by models that
  require a vector encoding (e.g. the random forest).

Numeric parameters may carry a ``log`` transformation; the paper observes
(Sec. 4.1 and 4.2) that tile-size-like parameters behave exponentially and
that log-transforming them both densifies the search space and produces more
natural GP distances.
"""

from __future__ import annotations

import itertools
import math
from abc import ABC, abstractmethod
from typing import Any, Iterable, Sequence

import numpy as np

from .constraints import Domain

__all__ = [
    "Parameter",
    "NumericParameter",
    "RealParameter",
    "IntegerParameter",
    "OrdinalParameter",
    "CategoricalParameter",
    "PermutationParameter",
    "PERMUTATION_METRICS",
    "kendall_distance",
    "spearman_distance",
    "hamming_permutation_distance",
]


class Parameter(ABC):
    """Abstract base class for all tunable parameters."""

    #: short code used in Table 3 style summaries ("R", "I", "O", "C", "P")
    type_code = "?"

    def __init__(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise ValueError("parameter name must be a non-empty string")
        self.name = name

    # -- value handling -------------------------------------------------
    @abstractmethod
    def sample(self, rng: np.random.Generator) -> Any:
        """Draw a value uniformly at random."""

    def sample_batch(self, rng: np.random.Generator, n: int) -> Any:
        """Draw ``n`` values as one column (vectorized where the type allows).

        Returns a float column for numeric types, an object column for
        categoricals, and an ``(n, n_elements)`` matrix for permutations.
        The distribution matches ``n`` independent :meth:`sample` calls; the
        RNG consumption differs (one batched draw instead of ``n`` scalar
        ones), which is what makes the row samplers fast.
        """
        column = np.empty(n, dtype=object)
        column[:] = [self.sample(rng) for _ in range(n)]
        return column

    def propagation_domain(self) -> Domain | None:
        """Initial :class:`Domain` for constraint propagation, or ``None``.

        ``None`` opts the parameter out of domain pruning (permutations: the
        value space has no useful set/interval shape); such parameters are
        always sampled unrestricted and left to rejection filtering.
        """
        return None

    def sample_batch_from(
        self, rng: np.random.Generator, n: int, domain: Domain | None
    ) -> Any:
        """Like :meth:`sample_batch`, but restricted to ``domain``.

        Sampling is uniform over the restricted domain, with the same column
        dtype as :meth:`sample_batch`.  Passing ``None`` means unrestricted.
        The RNG consumption differs from :meth:`sample_batch` in general, so
        callers must only use this on the opt-in propagation path.
        """
        if domain is None:
            return self.sample_batch(rng, n)
        raise TypeError(
            f"{type(self).__name__} does not support domain-restricted sampling"
        )

    @abstractmethod
    def contains(self, value: Any) -> bool:
        """Return ``True`` if ``value`` is a legal value of this parameter."""

    @abstractmethod
    def distance(self, a: Any, b: Any) -> float:
        """Distance between two values, used in the GP kernel."""

    @abstractmethod
    def neighbours(self, value: Any) -> list[Any]:
        """Values reachable from ``value`` by a single local-search move."""

    @abstractmethod
    def to_numeric(self, value: Any) -> float | tuple[float, ...]:
        """Numeric encoding used by vector-based models (random forests)."""

    # -- cardinality ----------------------------------------------------
    @property
    def is_discrete(self) -> bool:
        return self.cardinality() is not None

    def cardinality(self) -> int | None:
        """Number of possible values, or ``None`` for continuous parameters."""
        return None

    def values_list(self) -> list[Any]:
        """All possible values for discrete parameters."""
        raise TypeError(f"{type(self).__name__} is not enumerable")

    # -- misc -----------------------------------------------------------
    def canonical(self, value: Any) -> Any:
        """Return the canonical representation of ``value``."""
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class NumericParameter(Parameter):
    """Shared behaviour for real / integer / ordinal parameters.

    The distance between two values is the absolute difference, optionally in
    log space when ``transform="log"`` (Sec. 4.1: tile sizes 2 and 4 should
    be about as similar as 512 and 1024).
    """

    def __init__(self, name: str, transform: str = "linear") -> None:
        super().__init__(name)
        if transform not in ("linear", "log"):
            raise ValueError(f"unknown transform {transform!r}")
        self.transform = transform

    def _warp(self, value: float) -> float:
        if self.transform == "log":
            if value <= 0:
                raise ValueError(
                    f"log transform requires positive values, got {value} "
                    f"for parameter {self.name!r}"
                )
            return math.log(value)
        return float(value)

    def distance(self, a: Any, b: Any) -> float:
        return abs(self._warp(a) - self._warp(b))

    def to_numeric(self, value: Any) -> float:
        return self._warp(value)


class RealParameter(NumericParameter):
    """A continuous parameter on the interval ``[low, high]``."""

    type_code = "R"

    def __init__(
        self,
        name: str,
        low: float,
        high: float,
        transform: str = "linear",
        default: float | None = None,
    ) -> None:
        super().__init__(name, transform)
        if not low < high:
            raise ValueError(f"low must be < high, got [{low}, {high}]")
        if transform == "log" and low <= 0:
            raise ValueError("log-transformed real parameters require low > 0")
        self.low = float(low)
        self.high = float(high)
        self.default = float(default) if default is not None else (low + high) / 2.0

    def sample(self, rng: np.random.Generator) -> float:
        if self.transform == "log":
            return float(np.exp(rng.uniform(math.log(self.low), math.log(self.high))))
        return float(rng.uniform(self.low, self.high))

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.transform == "log":
            return np.exp(rng.uniform(math.log(self.low), math.log(self.high), size=n))
        return rng.uniform(self.low, self.high, size=n)

    def propagation_domain(self) -> Domain:
        return Domain.interval(self.low, self.high)

    def sample_batch_from(
        self, rng: np.random.Generator, n: int, domain: Domain | None
    ) -> np.ndarray:
        if domain is None:
            return self.sample_batch(rng, n)
        low = max(self.low, domain.low)
        high = min(self.high, domain.high)
        if not low <= high:
            raise ValueError(
                f"empty propagated domain for real parameter {self.name!r}"
            )
        # a truncated uniform (or truncated log-uniform) is again uniform on
        # the sub-interval, so pruning preserves the sampling distribution
        # conditioned on feasibility
        if self.transform == "log":
            return np.exp(rng.uniform(math.log(low), math.log(high), size=n))
        return rng.uniform(low, high, size=n)

    def contains(self, value: Any) -> bool:
        try:
            v = float(value)
        except (TypeError, ValueError):
            return False
        return self.low <= v <= self.high

    def neighbours(self, value: Any) -> list[float]:
        """Local moves: +/- 5% and +/- 20% of the (possibly log) range."""
        lo, hi = self._warp(self.low), self._warp(self.high)
        v = self._warp(value)
        span = hi - lo
        out = []
        for step in (-0.2, -0.05, 0.05, 0.2):
            w = min(hi, max(lo, v + step * span))
            cand = math.exp(w) if self.transform == "log" else w
            if not math.isclose(cand, float(value)):
                out.append(float(cand))
        return out

    def cardinality(self) -> int | None:
        return None


class IntegerParameter(NumericParameter):
    """An integer parameter on the inclusive range ``[low, high]``."""

    type_code = "I"

    def __init__(
        self,
        name: str,
        low: int,
        high: int,
        transform: str = "linear",
        default: int | None = None,
    ) -> None:
        super().__init__(name, transform)
        if not int(low) <= int(high):
            raise ValueError(f"low must be <= high, got [{low}, {high}]")
        if transform == "log" and low <= 0:
            raise ValueError("log-transformed integer parameters require low > 0")
        self.low = int(low)
        self.high = int(high)
        self.default = int(default) if default is not None else self.low

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.integers(self.low, self.high + 1, size=n).astype(float)

    #: ranges wider than this propagate as intervals instead of value sets
    ENUMERATION_CAP = 4096

    def propagation_domain(self) -> Domain:
        if self.cardinality() <= self.ENUMERATION_CAP:
            return Domain.discrete(range(self.low, self.high + 1))
        return Domain.interval(self.low, self.high)

    def sample_batch_from(
        self, rng: np.random.Generator, n: int, domain: Domain | None
    ) -> np.ndarray:
        if domain is None:
            return self.sample_batch(rng, n)
        if domain.kind == "discrete":
            if not domain.values:
                raise ValueError(
                    f"empty propagated domain for integer parameter {self.name!r}"
                )
            table = np.asarray(domain.values, dtype=float)
            return table[rng.integers(len(table), size=n)]
        low = max(self.low, math.ceil(domain.low))
        high = min(self.high, math.floor(domain.high))
        if low > high:
            raise ValueError(
                f"empty propagated domain for integer parameter {self.name!r}"
            )
        return rng.integers(low, high + 1, size=n).astype(float)

    def contains(self, value: Any) -> bool:
        try:
            v = int(value)
        except (TypeError, ValueError):
            return False
        return v == value and self.low <= v <= self.high

    def neighbours(self, value: Any) -> list[int]:
        v = int(value)
        out = set()
        for delta in (-1, 1):
            cand = v + delta
            if self.low <= cand <= self.high:
                out.add(cand)
        # larger jumps for wide ranges so local search is not crippled
        span = self.high - self.low
        if span > 16:
            for delta in (-span // 8, span // 8):
                cand = v + delta
                if self.low <= cand <= self.high and cand != v:
                    out.add(int(cand))
        return sorted(out)

    def cardinality(self) -> int:
        return self.high - self.low + 1

    def values_list(self) -> list[int]:
        return list(range(self.low, self.high + 1))

    def canonical(self, value: Any) -> int:
        return int(value)


class OrdinalParameter(NumericParameter):
    """A discrete parameter whose values have a natural order.

    Typical examples are power-of-two tile sizes or unroll factors.  Values
    must be numeric and are kept sorted; the distance is the (possibly log)
    difference of *values*, not of ranks.
    """

    type_code = "O"

    def __init__(
        self,
        name: str,
        values: Sequence[float],
        transform: str = "linear",
        default: float | None = None,
    ) -> None:
        super().__init__(name, transform)
        if len(values) == 0:
            raise ValueError("ordinal parameter needs at least one value")
        vals = sorted(set(float(v) if not float(v).is_integer() else int(v) for v in values))
        if transform == "log" and vals[0] <= 0:
            raise ValueError("log-transformed ordinal parameters require positive values")
        self.values = vals
        self.default = default if default is not None else vals[0]
        if self.default not in vals:
            raise ValueError(f"default {default!r} not among ordinal values")
        self._index = {v: i for i, v in enumerate(vals)}

    def sample(self, rng: np.random.Generator) -> Any:
        return self.values[int(rng.integers(len(self.values)))]

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        table = np.asarray([float(v) for v in self.values], dtype=float)
        return table[rng.integers(len(self.values), size=n)]

    def propagation_domain(self) -> Domain:
        return Domain.discrete(self.values)

    def sample_batch_from(
        self, rng: np.random.Generator, n: int, domain: Domain | None
    ) -> np.ndarray:
        if domain is None:
            return self.sample_batch(rng, n)
        if not domain.values:
            raise ValueError(
                f"empty propagated domain for ordinal parameter {self.name!r}"
            )
        table = np.asarray([float(v) for v in domain.values], dtype=float)
        return table[rng.integers(len(table), size=n)]

    def contains(self, value: Any) -> bool:
        try:
            return self.canonical(value) in self._index
        except (TypeError, ValueError):
            return False

    def canonical(self, value: Any) -> Any:
        v = float(value)
        return int(v) if v.is_integer() else v

    def neighbours(self, value: Any) -> list[Any]:
        idx = self._index[self.canonical(value)]
        out = []
        if idx > 0:
            out.append(self.values[idx - 1])
        if idx + 1 < len(self.values):
            out.append(self.values[idx + 1])
        return out

    def cardinality(self) -> int:
        return len(self.values)

    def values_list(self) -> list[Any]:
        return list(self.values)

    def index_of(self, value: Any) -> int:
        return self._index[self.canonical(value)]


class CategoricalParameter(Parameter):
    """A discrete parameter with no inherent order.

    Distance is the Hamming distance (Sec. 4.1): 0 if equal, 1 otherwise.
    """

    type_code = "C"

    def __init__(self, name: str, values: Sequence[Any], default: Any | None = None) -> None:
        super().__init__(name)
        vals = list(dict.fromkeys(values))
        if len(vals) == 0:
            raise ValueError("categorical parameter needs at least one value")
        self.values = vals
        self.default = default if default is not None else vals[0]
        if self.default not in vals:
            raise ValueError(f"default {default!r} not among categorical values")
        self._index = {v: i for i, v in enumerate(vals)}

    def sample(self, rng: np.random.Generator) -> Any:
        return self.values[int(rng.integers(len(self.values)))]

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        table = np.empty(len(self.values), dtype=object)
        table[:] = self.values
        return table[rng.integers(len(self.values), size=n)]

    def propagation_domain(self) -> Domain:
        return Domain.discrete(self.values)

    def sample_batch_from(
        self, rng: np.random.Generator, n: int, domain: Domain | None
    ) -> np.ndarray:
        if domain is None:
            return self.sample_batch(rng, n)
        if not domain.values:
            raise ValueError(
                f"empty propagated domain for categorical parameter {self.name!r}"
            )
        table = np.empty(len(domain.values), dtype=object)
        table[:] = list(domain.values)
        return table[rng.integers(len(table), size=n)]

    def contains(self, value: Any) -> bool:
        return value in self._index

    def distance(self, a: Any, b: Any) -> float:
        return 0.0 if a == b else 1.0

    def neighbours(self, value: Any) -> list[Any]:
        return [v for v in self.values if v != value]

    def to_numeric(self, value: Any) -> float:
        return float(self._index[value])

    def cardinality(self) -> int:
        return len(self.values)

    def values_list(self) -> list[Any]:
        return list(self.values)

    def index_of(self, value: Any) -> int:
        return self._index[value]


# ---------------------------------------------------------------------------
# permutation semimetrics (Fig. 3 of the paper)
# ---------------------------------------------------------------------------

def kendall_distance(a: Sequence[int], b: Sequence[int]) -> float:
    """Number of discordant pairs between two permutations."""
    a = tuple(a)
    b = tuple(b)
    n = len(a)
    count = 0
    for i in range(n):
        for j in range(i + 1, n):
            if (a[i] < a[j]) != (b[i] < b[j]):
                count += 1
    return float(count)


def spearman_distance(a: Sequence[int], b: Sequence[int]) -> float:
    """Sum of squared element displacements between two permutations."""
    return float(sum((int(x) - int(y)) ** 2 for x, y in zip(a, b)))


def hamming_permutation_distance(a: Sequence[int], b: Sequence[int]) -> float:
    """Number of positions whose element differs between the permutations."""
    return float(sum(1 for x, y in zip(a, b) if x != y))


def _naive_distance(a: Sequence[int], b: Sequence[int]) -> float:
    """Treat permutations as categoricals: 0 if identical else 1."""
    return 0.0 if tuple(a) == tuple(b) else 1.0


PERMUTATION_METRICS = {
    "spearman": spearman_distance,
    "kendall": kendall_distance,
    "hamming": hamming_permutation_distance,
    "naive": _naive_distance,
}


class PermutationParameter(Parameter):
    """A parameter whose value is a permutation of ``n`` elements.

    Values are tuples containing each integer in ``range(n)`` exactly once.
    The default semimetric is Spearman's rank correlation which the paper's
    ablation (Fig. 9) finds to perform best; Kendall, Hamming and the naive
    categorical treatment are also available.
    """

    type_code = "P"

    def __init__(
        self,
        name: str,
        n_elements: int,
        metric: str = "spearman",
        default: Sequence[int] | None = None,
    ) -> None:
        super().__init__(name)
        if n_elements < 1:
            raise ValueError("permutation needs at least one element")
        if metric not in PERMUTATION_METRICS:
            raise ValueError(
                f"unknown permutation metric {metric!r}; "
                f"choose from {sorted(PERMUTATION_METRICS)}"
            )
        self.n_elements = int(n_elements)
        self.metric = metric
        self._distance_fn = PERMUTATION_METRICS[metric]
        self.default = tuple(default) if default is not None else tuple(range(n_elements))
        if not self.contains(self.default):
            raise ValueError(f"default {default!r} is not a permutation of {n_elements} elements")

    def sample(self, rng: np.random.Generator) -> tuple[int, ...]:
        return tuple(int(i) for i in rng.permutation(self.n_elements))

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        base = np.tile(np.arange(self.n_elements, dtype=float), (n, 1))
        return rng.permuted(base, axis=1)

    def contains(self, value: Any) -> bool:
        try:
            t = tuple(int(v) for v in value)
        except (TypeError, ValueError):
            return False
        return len(t) == self.n_elements and sorted(t) == list(range(self.n_elements))

    def canonical(self, value: Any) -> tuple[int, ...]:
        return tuple(int(v) for v in value)

    def distance(self, a: Any, b: Any) -> float:
        return self._distance_fn(self.canonical(a), self.canonical(b))

    def max_distance(self) -> float:
        """Largest possible distance under the configured metric."""
        identity = tuple(range(self.n_elements))
        reversed_perm = tuple(reversed(identity))
        if self.metric == "naive":
            return 1.0
        return self._distance_fn(identity, reversed_perm)

    def neighbours(self, value: Any) -> list[tuple[int, ...]]:
        """All permutations reachable by swapping two adjacent elements."""
        perm = list(self.canonical(value))
        out = []
        for i in range(len(perm) - 1):
            nxt = perm.copy()
            nxt[i], nxt[i + 1] = nxt[i + 1], nxt[i]
            out.append(tuple(nxt))
        return out

    def all_swaps(self, value: Any) -> list[tuple[int, ...]]:
        """All permutations reachable by swapping any two elements."""
        perm = list(self.canonical(value))
        out = []
        for i in range(len(perm)):
            for j in range(i + 1, len(perm)):
                nxt = perm.copy()
                nxt[i], nxt[j] = nxt[j], nxt[i]
                out.append(tuple(nxt))
        return out

    def to_numeric(self, value: Any) -> tuple[float, ...]:
        return tuple(float(v) for v in self.canonical(value))

    def cardinality(self) -> int:
        return math.factorial(self.n_elements)

    def values_list(self) -> list[tuple[int, ...]]:
        if self.n_elements > 8:
            raise TypeError(
                f"refusing to enumerate {self.n_elements}! permutations; "
                "use sampling instead"
            )
        return [tuple(p) for p in itertools.permutations(range(self.n_elements))]
