"""Fixed-width numeric encoding of configurations (the tuner's hot-path layer).

Every model in the tuner — the GP surrogate, the random-forest feasibility
classifier, the RF surrogate of the Fig. 8 comparison — ultimately consumes a
*numeric* view of a configuration: warped reals/ints (``log`` where the
parameter says so, Sec. 4.1), category indices, and canonical permutation
tuples.  Historically each consumer re-derived those features from the raw
``Configuration`` dicts on every call, which put a Python loop inside every
distance computation and every acquisition evaluation.

:class:`ConfigEncoder` performs that derivation **once** per configuration,
producing a fixed-width ``float64`` row.  The column layout is:

* numeric parameters (real / integer / ordinal): one column holding the
  warped value (``log`` applied for ``transform="log"``),
* categorical parameters: one column holding the category index,
* permutation parameters: ``n_elements`` columns holding the canonical
  permutation tuple.

The encoding is identical, value for value, to the historical
``Parameter.to_numeric`` path, so models fitted on either representation see
bit-identical feature matrices.  Rows round-trip: :meth:`ConfigEncoder.decode`
maps any encoded row back to a configuration (nearest legal value per
parameter, rank-projection for permutation blocks), and
``decode(encode(c)) == c`` up to canonicalization for every parameter type.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from .parameters import (
    CategoricalParameter,
    IntegerParameter,
    NumericParameter,
    OrdinalParameter,
    Parameter,
    PermutationParameter,
    RealParameter,
)

__all__ = ["ColumnBlock", "ConfigEncoder"]


@dataclass(frozen=True)
class ColumnBlock:
    """The columns of the encoded matrix owned by one parameter."""

    parameter: Parameter
    start: int
    width: int
    #: "numeric" | "categorical" | "permutation"
    kind: str

    @property
    def stop(self) -> int:
        return self.start + self.width

    @property
    def columns(self) -> slice:
        return slice(self.start, self.stop)


class ConfigEncoder:
    """Maps configurations to fixed-width float rows and back."""

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        self.parameters: list[Parameter] = list(parameters)
        blocks: list[ColumnBlock] = []
        offset = 0
        for param in self.parameters:
            if isinstance(param, PermutationParameter):
                kind, width = "permutation", param.n_elements
            elif isinstance(param, CategoricalParameter):
                kind, width = "categorical", 1
            elif isinstance(param, NumericParameter):
                kind, width = "numeric", 1
            else:
                raise TypeError(
                    f"cannot encode parameter type {type(param).__name__}"
                )
            blocks.append(ColumnBlock(param, offset, width, kind))
            offset += width
        self.blocks: list[ColumnBlock] = blocks
        self.width: int = offset
        self._by_name = {b.parameter.name: b for b in blocks}

    # ------------------------------------------------------------------
    def columns(self, name: str) -> slice:
        """Column slice owned by the named parameter."""
        return self._by_name[name].columns

    def signature(self) -> tuple:
        """Layout + warp identity: equal signatures produce equal encodings.

        Two encoders with the same signature map any configuration to the
        same row, so consumers (GP vs. feasibility model) can share one
        encoded matrix.
        """
        parts = []
        for block in self.blocks:
            transform = getattr(block.parameter, "transform", None)
            # categorical encoding depends on the category order too
            values = (
                tuple(block.parameter.values) if block.kind == "categorical" else None
            )
            parts.append(
                (block.parameter.name, block.kind, block.width, transform, values)
            )
        return tuple(parts)

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode(self, configuration: Mapping[str, Any]) -> np.ndarray:
        """Encode one configuration as a ``(width,)`` float row."""
        return self.encode_batch([configuration])[0]

    def encode_batch(self, configurations: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Encode a batch of configurations as an ``(n, width)`` matrix.

        Values are extracted column-wise so per-parameter work (warping,
        category lookup) happens once per configuration, not once per use.
        The per-value warp deliberately goes through ``Parameter._warp``
        (scalar ``math.log``) so rows are bit-identical to the historical
        per-pair path.
        """
        n = len(configurations)
        out = np.empty((n, self.width), dtype=float)
        if n == 0:
            return out
        for block in self.blocks:
            name = block.parameter.name
            column = [cfg[name] for cfg in configurations]
            if block.kind == "numeric":
                warp = block.parameter._warp
                out[:, block.start] = [warp(v) for v in column]
            elif block.kind == "categorical":
                index_of = block.parameter.index_of
                out[:, block.start] = [index_of(v) for v in column]
            else:  # permutation
                out[:, block.columns] = np.asarray(
                    [block.parameter.canonical(v) for v in column], dtype=float
                )
        return out

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def decode(self, row: Sequence[float]) -> dict[str, Any]:
        """Map an encoded row back to a configuration.

        Exact inverse on encoded rows; arbitrary rows are projected to the
        nearest legal value per parameter (nearest warped value for
        numerics, nearest index for categoricals, rank projection for
        permutation blocks).
        """
        row = np.asarray(row, dtype=float)
        if row.shape != (self.width,):
            raise ValueError(
                f"expected a row of width {self.width}, got shape {row.shape}"
            )
        config: dict[str, Any] = {}
        for block in self.blocks:
            param = block.parameter
            if block.kind == "numeric":
                config[param.name] = _decode_numeric(param, float(row[block.start]))
            elif block.kind == "categorical":
                idx = int(round(float(row[block.start])))
                idx = min(max(idx, 0), len(param.values) - 1)
                config[param.name] = param.values[idx]
            else:
                config[param.name] = _decode_permutation(param, row[block.columns])
        return config

    def decode_batch(self, rows: np.ndarray) -> list[dict[str, Any]]:
        return [self.decode(row) for row in np.asarray(rows, dtype=float)]


def _decode_numeric(param: NumericParameter, value: float) -> Any:
    if isinstance(param, OrdinalParameter):
        warped = np.array([param._warp(v) for v in param.values])
        return param.values[int(np.argmin(np.abs(warped - value)))]
    raw = math.exp(value) if param.transform == "log" else value
    if isinstance(param, IntegerParameter):
        return int(min(max(round(raw), param.low), param.high))
    if isinstance(param, RealParameter):
        return float(min(max(raw, param.low), param.high))
    return float(raw)


def _decode_permutation(param: PermutationParameter, values: np.ndarray) -> tuple[int, ...]:
    rounded = [int(round(v)) for v in values]
    if sorted(rounded) == list(range(param.n_elements)):
        return tuple(rounded)
    # Not a valid permutation: project by rank (stable, ties by position).
    ranks = np.argsort(np.argsort(values, kind="stable"), kind="stable")
    return tuple(int(r) for r in ranks)
