"""Fixed-width numeric encoding of configurations (the tuner's hot-path layer).

Every model in the tuner — the GP surrogate, the random-forest feasibility
classifier, the RF surrogate of the Fig. 8 comparison — ultimately consumes a
*numeric* view of a configuration: warped reals/ints (``log`` where the
parameter says so, Sec. 4.1), category indices, and canonical permutation
tuples.  Historically each consumer re-derived those features from the raw
``Configuration`` dicts on every call, which put a Python loop inside every
distance computation and every acquisition evaluation.

:class:`ConfigEncoder` performs that derivation **once** per configuration,
producing a fixed-width ``float64`` row.  The column layout is:

* numeric parameters (real / integer / ordinal): one column holding the
  warped value (``log`` applied for ``transform="log"``),
* categorical parameters: one column holding the category index,
* permutation parameters: ``n_elements`` columns holding the canonical
  permutation tuple.

The encoding is identical, value for value, to the historical
``Parameter.to_numeric`` path, so models fitted on either representation see
bit-identical feature matrices.  Rows round-trip: :meth:`ConfigEncoder.decode`
maps any encoded row back to a configuration (nearest legal value per
parameter, rank-projection for permutation blocks), and
``decode(encode(c)) == c`` up to canonicalization for every parameter type.
"""
# repro: hot-path — row-space module: per-row Python loops, .tolist(), and in-loop decode are flagged (see repro.analysis)

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from .parameters import (
    CategoricalParameter,
    IntegerParameter,
    NumericParameter,
    OrdinalParameter,
    Parameter,
    PermutationParameter,
    RealParameter,
)

__all__ = ["ColumnBlock", "ConfigEncoder"]

#: Elementwise ``math.log`` / ``math.exp``.  Deliberately NOT ``np.log`` /
#: ``np.exp``: vectorized libm kernels may differ from the scalar functions
#: in the last ulp, and the scalar ``Parameter._warp`` path defines the
#: canonical encoding.  ``frompyfunc`` keeps column code bit-identical to it.
_MATH_LOG = np.frompyfunc(math.log, 1, 1)
_MATH_EXP = np.frompyfunc(math.exp, 1, 1)


def _nearest_indices(sorted_table: np.ndarray, column: np.ndarray) -> np.ndarray:
    """Index of the nearest table entry per element (ties to the lower index,
    matching the scalar decode's ``argmin``)."""
    positions = np.searchsorted(sorted_table, column).clip(0, len(sorted_table) - 1)
    lower = (positions - 1).clip(0)
    take_lower = np.abs(sorted_table[lower] - column) <= np.abs(
        sorted_table[positions] - column
    )
    return np.where(take_lower, lower, positions)


@dataclass(frozen=True)
class ColumnBlock:
    """The columns of the encoded matrix owned by one parameter."""

    parameter: Parameter
    start: int
    width: int
    #: "numeric" | "categorical" | "permutation"
    kind: str

    @property
    def stop(self) -> int:
        return self.start + self.width

    @property
    def columns(self) -> slice:
        return slice(self.start, self.stop)


class ConfigEncoder:
    """Maps configurations to fixed-width float rows and back."""

    def __init__(self, parameters: Sequence[Parameter]) -> None:
        self.parameters: list[Parameter] = list(parameters)
        blocks: list[ColumnBlock] = []
        offset = 0
        for param in self.parameters:
            if isinstance(param, PermutationParameter):
                kind, width = "permutation", param.n_elements
            elif isinstance(param, CategoricalParameter):
                kind, width = "categorical", 1
            elif isinstance(param, NumericParameter):
                kind, width = "numeric", 1
            else:
                raise TypeError(
                    f"cannot encode parameter type {type(param).__name__}"
                )
            blocks.append(ColumnBlock(param, offset, width, kind))
            offset += width
        self.blocks: list[ColumnBlock] = blocks
        self.width: int = offset
        self._by_name = {b.parameter.name: b for b in blocks}
        # Per-block lookup tables for the vectorized column paths.  np.log is
        # not bitwise-identical to math.log on every libm, so discrete
        # parameters warp through tables built with the scalar ``_warp`` once;
        # column encodings are then exact ``np.take`` lookups that agree bit
        # for bit with :meth:`encode_batch`.
        self._ordinal_raw: dict[str, np.ndarray] = {}
        self._ordinal_warped: dict[str, np.ndarray] = {}
        for block in blocks:
            param = block.parameter
            if block.kind == "numeric" and isinstance(param, OrdinalParameter):
                self._ordinal_raw[param.name] = np.asarray(
                    [float(v) for v in param.values], dtype=float
                )
                self._ordinal_warped[param.name] = np.asarray(
                    [param._warp(v) for v in param.values], dtype=float
                )

    # ------------------------------------------------------------------
    def columns(self, name: str) -> slice:
        """Column slice owned by the named parameter."""
        return self._by_name[name].columns

    def signature(self) -> tuple:
        """Layout + warp identity: equal signatures produce equal encodings.

        Two encoders with the same signature map any configuration to the
        same row, so consumers (GP vs. feasibility model) can share one
        encoded matrix.
        """
        parts = []
        for block in self.blocks:
            transform = getattr(block.parameter, "transform", None)
            # categorical encoding depends on the category order too
            values = (
                tuple(block.parameter.values) if block.kind == "categorical" else None
            )
            parts.append(
                (block.parameter.name, block.kind, block.width, transform, values)
            )
        return tuple(parts)

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode(self, configuration: Mapping[str, Any]) -> np.ndarray:
        """Encode one configuration as a ``(width,)`` float row."""
        return self.encode_batch([configuration])[0]

    def encode_batch(self, configurations: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Encode a batch of configurations as an ``(n, width)`` matrix.

        Values are extracted column-wise so per-parameter work (warping,
        category lookup) happens once per configuration, not once per use.
        The per-value warp deliberately goes through ``Parameter._warp``
        (scalar ``math.log``) so rows are bit-identical to the historical
        per-pair path.
        """
        n = len(configurations)
        out = np.empty((n, self.width), dtype=float)
        if n == 0:
            return out
        for block in self.blocks:
            name = block.parameter.name
            column = [cfg[name] for cfg in configurations]
            if block.kind == "numeric":
                warp = block.parameter._warp
                out[:, block.start] = [warp(v) for v in column]
            elif block.kind == "categorical":
                index_of = block.parameter.index_of
                out[:, block.start] = [index_of(v) for v in column]
            else:  # permutation
                out[:, block.columns] = np.asarray(
                    [block.parameter.canonical(v) for v in column], dtype=float
                )
        return out

    # ------------------------------------------------------------------
    # column (whole-batch) paths
    # ------------------------------------------------------------------
    def encode_value_column(self, name: str, values: Any) -> np.ndarray:
        """Encode one parameter's raw-value column as its ``(n, width)`` block.

        Values must be legal, canonical values of the parameter (the batch
        samplers and leaf caches guarantee this).  Discrete parameters encode
        through exact lookup tables, so the result is bit-identical to
        :meth:`encode_batch` of the corresponding configurations.
        """
        block = self._by_name[name]
        param = block.parameter
        if block.kind == "numeric":
            if name in self._ordinal_warped:
                indices = np.searchsorted(
                    self._ordinal_raw[name], np.asarray(values, dtype=float)
                )
                return self._ordinal_warped[name][indices][:, None]
            column = np.asarray(values, dtype=float)
            if getattr(param, "transform", "linear") == "log":
                column = _MATH_LOG(np.asarray(values)).astype(float)
            return column[:, None]
        if block.kind == "categorical":
            index_of = param.index_of
            return np.asarray([index_of(v) for v in values], dtype=float)[:, None]
        # permutation: accept an (n, k) matrix or a column of tuples
        if isinstance(values, np.ndarray) and values.ndim == 2:
            return values.astype(float)
        return np.asarray([tuple(v) for v in values], dtype=float)

    def encode_columns(self, columns: Mapping[str, Any]) -> np.ndarray:
        """Encode raw-value columns (one entry per parameter) as a row matrix.

        The column-major inverse of :meth:`value_columns`; bit-identical to
        ``encode_batch`` on the corresponding configuration dicts.
        """
        lengths = {len(columns[b.parameter.name]) for b in self.blocks}
        if len(lengths) != 1:
            raise ValueError(f"ragged or missing columns: lengths {sorted(lengths)}")
        (n,) = lengths
        out = np.empty((n, self.width), dtype=float)
        for block in self.blocks:
            name = block.parameter.name
            out[:, block.columns] = self.encode_value_column(name, columns[name])
        return out

    def value_columns(
        self, rows: np.ndarray, names: "Sequence[str] | None" = None
    ) -> dict[str, np.ndarray]:
        """Exact raw values of every parameter as per-parameter columns.

        The vectorized counterpart of :meth:`decode` for *legal* encoded rows:
        numeric parameters come back as float columns of raw (unwarped)
        values, categorical parameters as object columns of category values,
        permutations as object columns of tuples.  Like ``decode``, arbitrary
        rows are projected to the nearest legal value per parameter.
        ``names`` restricts the work to the listed parameters (the constraint
        mask only ever needs the constrained columns).
        """
        rows = np.asarray(rows, dtype=float)
        if rows.ndim != 2 or rows.shape[1] != self.width:
            raise ValueError(f"expected rows of width {self.width}, got {rows.shape}")
        wanted = None if names is None else set(names)
        columns: dict[str, np.ndarray] = {}
        for block in self.blocks:
            param = block.parameter
            name = param.name
            if wanted is not None and name not in wanted:
                continue
            if block.kind == "numeric":
                column = rows[:, block.start]
                if name in self._ordinal_warped:
                    columns[name] = self._ordinal_raw[name][
                        _nearest_indices(self._ordinal_warped[name], column)
                    ]
                elif isinstance(param, IntegerParameter):
                    raw = np.exp(column) if param.transform == "log" else column
                    columns[name] = np.clip(np.rint(raw), param.low, param.high)
                else:  # real
                    raw = (
                        _MATH_EXP(column).astype(float)
                        if param.transform == "log"
                        else column.astype(float)
                    )
                    columns[name] = np.clip(raw, param.low, param.high)
            elif block.kind == "categorical":
                indices = np.clip(
                    np.rint(rows[:, block.start]).astype(int), 0, len(param.values) - 1
                )
                table = np.empty(len(param.values), dtype=object)
                table[:] = param.values
                columns[name] = table[indices]
            else:  # permutation
                column = np.empty(len(rows), dtype=object)
                column[:] = [
                    _decode_permutation(param, row) for row in rows[:, block.columns]
                ]
                columns[name] = column
        return columns

    def legal_mask(self, rows: np.ndarray) -> np.ndarray:
        """Which rows are faithful encodings of legal parameter values.

        Row-space analogue of ``all(param.contains(value) ...)``: ordinal and
        categorical columns must hit a table entry exactly, integer columns
        must be exact warps of in-range integers, real columns must lie in the
        warped interval, and permutation blocks must round to a permutation.
        """
        rows = np.asarray(rows, dtype=float)
        mask = np.ones(len(rows), dtype=bool)
        for block in self.blocks:
            param = block.parameter
            if block.kind == "numeric":
                column = rows[:, block.start]
                if param.name in self._ordinal_warped:
                    warped = self._ordinal_warped[param.name]
                    positions = np.searchsorted(warped, column).clip(0, len(warped) - 1)
                    mask &= warped[positions] == column
                elif isinstance(param, IntegerParameter):
                    raw = np.rint(
                        np.exp(column) if param.transform == "log" else column
                    )
                    rewarped = (
                        _MATH_LOG(raw).astype(float)
                        if param.transform == "log"
                        else raw
                    )
                    mask &= (raw >= param.low) & (raw <= param.high) & (rewarped == column)
                else:  # real
                    mask &= (column >= param._warp(param.low)) & (
                        column <= param._warp(param.high)
                    )
            elif block.kind == "categorical":
                column = rows[:, block.start]
                indices = np.rint(column)
                mask &= (indices == column) & (indices >= 0) & (
                    indices < len(param.values)
                )
            else:  # permutation
                sub = rows[:, block.columns]
                rounded = np.rint(sub)
                mask &= np.all(rounded == sub, axis=1) & np.all(
                    np.sort(rounded, axis=1) == np.arange(block.width), axis=1
                )
        return mask

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def decode(self, row: Sequence[float]) -> dict[str, Any]:
        """Map an encoded row back to a configuration.

        Exact inverse on encoded rows; arbitrary rows are projected to the
        nearest legal value per parameter (nearest warped value for
        numerics, nearest index for categoricals, rank projection for
        permutation blocks).
        """
        row = np.asarray(row, dtype=float)
        if row.shape != (self.width,):
            raise ValueError(
                f"expected a row of width {self.width}, got shape {row.shape}"
            )
        config: dict[str, Any] = {}
        for block in self.blocks:
            param = block.parameter
            if block.kind == "numeric":
                config[param.name] = _decode_numeric(param, float(row[block.start]))
            elif block.kind == "categorical":
                idx = int(round(float(row[block.start])))
                idx = min(max(idx, 0), len(param.values) - 1)
                config[param.name] = param.values[idx]
            else:
                config[param.name] = _decode_permutation(param, row[block.columns])
        return config

    def decode_batch(self, rows: np.ndarray) -> list[dict[str, Any]]:
        return [self.decode(row) for row in np.asarray(rows, dtype=float)]


def _decode_numeric(param: NumericParameter, value: float) -> Any:
    if isinstance(param, OrdinalParameter):
        warped = np.array([param._warp(v) for v in param.values])
        return param.values[int(np.argmin(np.abs(warped - value)))]
    raw = math.exp(value) if param.transform == "log" else value
    if isinstance(param, IntegerParameter):
        return int(min(max(round(raw), param.low), param.high))
    if isinstance(param, RealParameter):
        return float(min(max(raw, param.low), param.high))
    return float(raw)


def _decode_permutation(param: PermutationParameter, values: np.ndarray) -> tuple[int, ...]:
    rounded = [int(round(v)) for v in values]
    if sorted(rounded) == list(range(param.n_elements)):
        return tuple(rounded)
    # Not a valid permutation: project by rank (stable, ties by position).
    ranks = np.argsort(np.argsort(values, kind="stable"), kind="stable")
    return tuple(int(r) for r in ranks)
