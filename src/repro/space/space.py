"""The :class:`SearchSpace`: parameters + known constraints.

A search space bundles the tunable parameters exposed by a compiler's
scheduling language together with the *known constraints* relating them.  It
offers everything the optimizers need:

* feasible random sampling (through the Chain-of-Trees where possible,
  rejection sampling otherwise),
* feasibility tests against the known constraints,
* neighbour enumeration restricted to the feasible region (for the
  acquisition-function local search),
* numeric encoding of configurations (for random-forest models),
* size statistics matching Table 3 of the paper (dense size vs. feasible
  size).
"""

from __future__ import annotations

import math
from functools import cached_property
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from .chain_of_trees import ChainOfTrees, FeasibleSetTooLarge, Tree
from .constraints import (
    Constraint,
    Domain,
    compile_column_evaluator,
    compile_domain_reducer,
    group_codependent,
    propagate_domains,
)
from .encoding import ConfigEncoder
from .parameters import Parameter, PermutationParameter

__all__ = ["SearchSpace", "Configuration", "freeze_configuration"]

#: A configuration is a plain mapping from parameter name to value.
Configuration = dict[str, Any]


def freeze_configuration(configuration: Mapping[str, Any], names: Sequence[str]) -> tuple:
    """Hashable, order-normalized representation of a configuration."""
    return tuple(
        tuple(configuration[n]) if isinstance(configuration[n], (list, tuple)) else configuration[n]
        for n in names
    )


class SearchSpace:
    """A constrained, mixed-type autotuning search space."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        constraints: Sequence[Constraint] = (),
        build_chain_of_trees: bool = True,
        max_cot_nodes: int = 2_000_000,
        propagate: bool = False,
    ) -> None:
        names = [p.name for p in parameters]
        if len(names) != len(set(names)):
            raise ValueError("duplicate parameter names in search space")
        self.parameters: list[Parameter] = list(parameters)
        self.parameter_names: list[str] = names
        self._by_name: dict[str, Parameter] = {p.name: p for p in parameters}
        self.constraints: list[Constraint] = list(constraints)
        for constraint in self.constraints:
            unknown = constraint.variables - set(names)
            if unknown:
                raise ValueError(
                    f"constraint {constraint.name!r} references unknown parameters {sorted(unknown)}"
                )
        #: opt-in constraint propagation (domain pruning before sampling).
        #: Default off: the propagated draw consumes the RNG differently, and
        #: the default path must stay bit-compatible with committed
        #: trajectories.  Feasibility *semantics* are identical either way —
        #: pruning only removes values that can never appear in a feasible
        #: configuration, and the rejection filter still runs last.
        self.propagate = bool(propagate)
        #: per-sample_rows diagnostics (acceptance rate, rounds, breakdowns),
        #: refreshed by every call — also embedded in rejection-failure errors
        self.last_sample_stats: dict[str, Any] | None = None
        self.chain_of_trees: ChainOfTrees | None = None
        #: constraints not captured by the CoT (evaluated explicitly)
        self._residual_constraints: list[Constraint] = list(self.constraints)
        if build_chain_of_trees and self.constraints:
            self._build_chain_of_trees(max_cot_nodes)
        #: lazily built vectorized-path caches (compiled constraint closures,
        #: per-tree encoded leaf matrices, pruned free-parameter domains).
        #: Kept in one dict so pickling can drop them — they are rebuilt on
        #: demand after unpickling.
        self._vector_caches: dict[str, Any] = {}

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        state["_vector_caches"] = {}
        # the encoder cached_property is picklable, but compiled closures are
        # not; `encoder` itself is cheap to rebuild so drop it alongside
        state.pop("encoder", None)
        return state

    def with_propagation(self, propagate: bool = True) -> "SearchSpace":
        """A view of this space with constraint propagation toggled.

        Shares parameters, constraints, the chain of trees, and the encoder
        with the original (benchmark spaces are process-wide singletons via an
        ``lru_cache``, so mutating them in place would leak the toggle across
        unrelated tuners); only the propagation flag and the lazily built
        vector caches are private to the view.
        """
        if bool(propagate) == self.propagate:
            return self
        self.encoder  # materialize the cached_property so the view shares it
        clone = object.__new__(type(self))
        clone.__dict__.update(self.__dict__)
        clone.propagate = bool(propagate)
        clone._vector_caches = {}
        clone.last_sample_stats = None
        return clone

    def _pruned_free_domains(self) -> tuple[dict[str, Domain], int]:
        """Arc-consistent domains for the free (non-tree) parameters, cached.

        Residual constraints can only reference free parameters — the
        co-dependency grouping is transitively closed and tree capture is
        all-or-nothing per group — so one global fixed point (no prefix)
        covers every ``sample_rows`` batch; per-node propagation lives in the
        :class:`~repro.space.chain_of_trees.Tree` builder instead.
        """
        cached = self._vector_caches.get("pruned_free_domains")
        if cached is None:
            covered = self._covered_names()
            initial = {
                p.name: dom
                for p in self.parameters
                if p.name not in covered and (dom := p.propagation_domain()) is not None
            }
            reducers = [
                reducer
                for c in self._residual_constraints
                if (reducer := compile_domain_reducer(c)) is not None
            ]
            if initial and reducers:
                domains, rounds = propagate_domains(reducers, initial, {})
            else:
                domains, rounds = initial, 0
            cached = (domains, rounds)
            self._vector_caches["pruned_free_domains"] = cached
        return cached

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _build_chain_of_trees(self, max_cot_nodes: int) -> None:
        groups = group_codependent(self.parameter_names, self.constraints)
        trees: list[Tree] = []
        captured: list[Constraint] = []
        for group in groups:
            group_constraints = [
                c for c in self.constraints if c.variables <= set(group)
            ]
            if not group_constraints:
                continue
            group_params = [self._by_name[n] for n in group]
            if not all(p.is_discrete for p in group_params):
                continue
            if any(p.cardinality() > 10_000 for p in group_params):
                continue
            try:
                trees.append(
                    Tree(
                        group_params,
                        group_constraints,
                        max_nodes=max_cot_nodes,
                        propagate=self.propagate,
                    )
                )
            except FeasibleSetTooLarge:
                continue
            captured.extend(group_constraints)
        if trees:
            self.chain_of_trees = ChainOfTrees(trees)
            captured_set = {id(c) for c in captured}
            self._residual_constraints = [
                c for c in self.constraints if id(c) not in captured_set
            ]

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.parameters)

    def __getitem__(self, name: str) -> Parameter:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def dimension(self) -> int:
        """Number of tunable parameters (the "Dim" column of Table 3)."""
        return len(self.parameters)

    def dense_size(self) -> float:
        """Cartesian-product size of the space, ``inf`` if any parameter is continuous."""
        total = 1.0
        for param in self.parameters:
            card = param.cardinality()
            if card is None:
                return math.inf
            total *= card
        return total

    def feasible_size(self, max_exhaustive: int = 2_000_000) -> float:
        """Number of configurations satisfying the known constraints.

        Uses the Chain-of-Trees counts when all constraints are captured by
        it; otherwise falls back to exhaustive counting when the dense size
        is small enough, and to ``nan`` otherwise.
        """
        if not self.constraints:
            return self.dense_size()
        if self.chain_of_trees is not None and not self._residual_constraints:
            free = 1.0
            covered = set(self.chain_of_trees.parameter_names)
            for param in self.parameters:
                if param.name in covered:
                    continue
                card = param.cardinality()
                if card is None:
                    return math.inf
                free *= card
            return self.chain_of_trees.n_feasible * free
        dense = self.dense_size()
        if dense is math.inf or dense > max_exhaustive:
            return float("nan")
        count = 0
        for config in self.iter_dense():
            if self.is_feasible(config):
                count += 1
        return float(count)

    def iter_dense(self) -> Iterable[Configuration]:
        """Iterate over the full Cartesian product (discrete spaces only)."""
        values = [p.values_list() for p in self.parameters]

        def rec(depth: int, partial: Configuration):
            if depth == len(self.parameters):
                yield dict(partial)
                return
            name = self.parameters[depth].name
            for value in values[depth]:
                partial[name] = value
                yield from rec(depth + 1, partial)
            partial.pop(name, None)

        yield from rec(0, {})

    # ------------------------------------------------------------------
    # feasibility
    # ------------------------------------------------------------------
    def is_feasible(self, configuration: Mapping[str, Any]) -> bool:
        """Check the known constraints (hidden constraints are *not* checked here)."""
        for param in self.parameters:
            if param.name not in configuration:
                raise KeyError(f"configuration is missing parameter {param.name!r}")
            if not param.contains(configuration[param.name]):
                return False
        if self.chain_of_trees is not None:
            if not self.chain_of_trees.contains(configuration):
                return False
            for constraint in self._residual_constraints:
                if not constraint.evaluate(configuration):
                    return False
            return True
        for constraint in self.constraints:
            if not constraint.evaluate(configuration):
                return False
        return True

    # ------------------------------------------------------------------
    # vectorized candidate-generation caches
    # ------------------------------------------------------------------
    def _covered_names(self) -> set[str]:
        if self.chain_of_trees is None:
            return set()
        return set(self.chain_of_trees.parameter_names)

    @staticmethod
    def _raw_column(param: Parameter, values: Sequence[Any]) -> np.ndarray:
        """Raw values as a column: float for numerics, object otherwise."""
        if isinstance(param, PermutationParameter):
            column = np.empty(len(values), dtype=object)
            column[:] = [tuple(v) for v in values]
            return column
        first = values[0] if values else None
        if isinstance(first, (int, float, np.integer, np.floating)) and not isinstance(
            first, bool
        ):
            return np.asarray(values, dtype=float)
        column = np.empty(len(values), dtype=object)
        column[:] = list(values)
        return column

    def _tree_tables(self) -> list[tuple[Any, dict[str, np.ndarray], dict[str, np.ndarray]]]:
        """Per tree: (tree, raw leaf columns, encoded leaf blocks), cached.

        The leaf matrices turn one feasible draw into a single ``np.take``
        per parameter instead of a per-level walk with one weighted
        ``rng.choice`` per tree depth.
        """
        tables = self._vector_caches.get("tree_tables")
        if tables is None:
            tables = []
            if self.chain_of_trees is not None:
                for tree in self.chain_of_trees.trees:
                    leaves = tree.leaves()
                    raw = {
                        param.name: self._raw_column(
                            param, [leaf[param.name] for leaf in leaves]
                        )
                        for param in tree.parameters
                    }
                    encoded = {
                        name: self.encoder.encode_value_column(name, column)
                        for name, column in raw.items()
                    }
                    tables.append((tree, raw, encoded))
            self._vector_caches["tree_tables"] = tables
        return tables

    def _compiled(self, which: str) -> list:
        """Compiled column evaluators for ``"residual"`` or ``"all"`` constraints."""
        key = f"compiled_{which}"
        evaluators = self._vector_caches.get(key)
        if evaluators is None:
            constraints = (
                self._residual_constraints if which == "residual" else self.constraints
            )
            evaluators = [
                (constraint, compile_column_evaluator(constraint))
                for constraint in constraints
            ]
            self._vector_caches[key] = evaluators
        return evaluators

    @staticmethod
    def _env_column(column: np.ndarray) -> np.ndarray:
        """Constraint-env view of a column (permutation matrices to tuples)."""
        if column.ndim == 2:
            env = np.empty(len(column), dtype=object)
            env[:] = [tuple(int(v) for v in row) for row in column]
            return env
        return column

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample(
        self,
        rng: np.random.Generator,
        n_samples: int = 1,
        biased_cot: bool = False,
        max_rejection_rounds: int = 10_000,
        propagate: bool | None = None,
    ) -> list[Configuration]:
        """Draw ``n_samples`` feasible configurations.

        Thin dict boundary over :meth:`sample_rows`: the draw itself happens
        entirely in row space (leaf-matrix CoT draws, batched parameter
        sampling, compiled residual constraints) and each accepted row is
        decoded once.  The feasible distribution matches the historical
        per-configuration scalar loop, which survives as
        :meth:`sample_reference` (the oracle used by tests and benchmarks);
        the RNG consumption order is the vectorized scheme's.
        """
        rows = self.sample_rows(
            rng,
            n_samples,
            biased_cot=biased_cot,
            max_rejection_rounds=max_rejection_rounds,
            propagate=propagate,
        )
        decode = self.encoder.decode
        return [decode(row) for row in rows]

    def sample_reference(
        self,
        rng: np.random.Generator,
        n_samples: int = 1,
        biased_cot: bool = False,
        max_rejection_rounds: int = 10_000,
    ) -> list[Configuration]:
        """The historical scalar sampling loop (reference oracle).

        One configuration at a time: per-level Chain-of-Trees walks, one
        scalar ``Parameter.sample`` call per uncovered parameter, and one
        Python ``eval`` per residual constraint.  Kept verbatim so the
        vectorized path has an executable specification to be tested and
        benchmarked against.
        """
        samples: list[Configuration] = []
        covered = self._covered_names()
        attempts = 0
        while len(samples) < n_samples:
            attempts += 1
            if attempts > max_rejection_rounds * max(1, n_samples):
                raise RuntimeError(
                    "rejection sampling failed to find feasible configurations; "
                    "the feasible region may be too sparse"
                )
            config: Configuration = {}
            if self.chain_of_trees is not None:
                config.update(self.chain_of_trees.sample(rng, biased=biased_cot))
            for param in self.parameters:
                if param.name not in covered:
                    config[param.name] = param.sample(rng)
            if all(c.evaluate(config) for c in self._residual_constraints):
                samples.append(config)
        return samples

    def sample_rows(
        self,
        rng: np.random.Generator,
        n_samples: int = 1,
        biased_cot: bool = False,
        max_rejection_rounds: int = 10_000,
        propagate: bool | None = None,
    ) -> np.ndarray:
        """Draw ``n_samples`` feasible configurations as encoded rows.

        One vectorized pass per rejection round: every tree contributes a
        leaf-matrix gather, every unconstrained parameter one batched draw,
        and the residual constraints are evaluated by their compiled column
        evaluators.  Returns an ``(n_samples, width)`` float matrix in the
        shared :class:`~repro.space.encoding.ConfigEncoder` layout.

        With ``propagate`` (``None`` defers to the space-level flag), free
        parameters draw from their arc-consistency-pruned domains instead of
        the full ranges — the compiled residual mask still runs as the final
        filter, so feasibility is decided by exactly the same code either
        way.  Because pruning only removes values that appear in *no*
        feasible configuration, the accepted-sample distribution is unchanged
        (uniform draws restricted to a superset of the feasible set stay
        uniform after conditioning on feasibility); only the RNG consumption
        differs, which is why the flag defaults to off.
        """
        if n_samples < 0:
            raise ValueError("n_samples must be non-negative")
        effective_propagate = self.propagate if propagate is None else bool(propagate)
        encoder = self.encoder
        tree_tables = self._tree_tables()
        covered = self._covered_names()
        free_params = [p for p in self.parameters if p.name not in covered]
        residuals = self._compiled("residual")
        residual_vars: set[str] = set()
        for constraint, _ in residuals:
            residual_vars |= constraint.variables
        pruned_domains: dict[str, Domain] = {}
        if effective_propagate:
            pruned_domains, _rounds = self._pruned_free_domains()
            empty = sorted(n for n, d in pruned_domains.items() if d.is_empty)
            if empty:
                raise RuntimeError(
                    "constraint propagation pruned the domains of parameters "
                    f"{empty} to empty: the known constraints admit no "
                    "feasible configuration"
                )

        collected: list[np.ndarray] = []
        constraint_passed = [0] * len(residuals)
        accepted = 0
        drawn = 0
        rounds = 0
        budget = max_rejection_rounds * max(1, n_samples)
        while accepted < n_samples:
            need = n_samples - accepted
            if drawn >= budget:
                self._record_sample_stats(
                    n_samples, accepted, drawn, rounds, effective_propagate,
                    residuals, constraint_passed,
                )
                raise RuntimeError(self._rejection_failure_message())
            need = min(need, budget - drawn)
            drawn += need
            rounds += 1
            rows = np.empty((need, encoder.width), dtype=float)
            env: dict[str, np.ndarray] = {}
            for tree, raw, encoded in tree_tables:
                indices = tree.sample_leaf_indices(rng, need, biased=biased_cot)
                for name, block in encoded.items():
                    rows[:, encoder.columns(name)] = block[indices]
                for name in raw:
                    if name in residual_vars:
                        env[name] = raw[name][indices]
            for param in free_params:
                if effective_propagate:
                    column = param.sample_batch_from(
                        rng, need, pruned_domains.get(param.name)
                    )
                else:
                    column = param.sample_batch(rng, need)
                rows[:, encoder.columns(param.name)] = encoder.encode_value_column(
                    param.name, column
                )
                if param.name in residual_vars:
                    env[param.name] = self._env_column(np.asarray(column))
            if residuals:
                mask = np.ones(need, dtype=bool)
                for slot, (_, evaluator) in enumerate(residuals):
                    passed = np.asarray(evaluator(env), dtype=bool)
                    constraint_passed[slot] += int(passed.sum())
                    mask &= passed
                rows = rows[mask]
            collected.append(rows)
            accepted += len(rows)
        self._record_sample_stats(
            n_samples, accepted, drawn, rounds, effective_propagate,
            residuals, constraint_passed,
        )
        if not collected:
            return np.empty((0, encoder.width), dtype=float)
        return np.vstack(collected)[:n_samples]

    def _record_sample_stats(
        self,
        requested: int,
        accepted: int,
        drawn: int,
        rounds: int,
        propagate: bool,
        residuals: list,
        constraint_passed: list[int],
    ) -> None:
        """Refresh :attr:`last_sample_stats` after a ``sample_rows`` run."""
        trees = []
        if self.chain_of_trees is not None:
            trees = [
                {"parameters": list(tree.parameter_names), "leaves": tree.n_feasible}
                for tree in self.chain_of_trees.trees
            ]
        self.last_sample_stats = {
            "requested": requested,
            "accepted": accepted,
            "drawn": drawn,
            "rounds": rounds,
            "acceptance_rate": accepted / drawn if drawn else float("nan"),
            "propagate": propagate,
            "constraints": [
                {
                    "name": constraint.name,
                    "passed": passed,
                    "rate": passed / drawn if drawn else float("nan"),
                }
                for (constraint, _), passed in zip(residuals, constraint_passed)
            ],
            "trees": trees,
        }

    def _rejection_failure_message(self) -> str:
        """Rich diagnostics for an exhausted rejection budget.

        Keeps the historical first line (callers and tests match on it) and
        appends the measured acceptance rate, the rounds attempted, the
        per-residual-constraint pass rates, and the per-tree leaf counts so a
        too-sparse space can be diagnosed from the error alone.
        """
        stats = self.last_sample_stats or {}
        lines = [
            "rejection sampling failed to find feasible configurations; "
            "the feasible region may be too sparse.",
            f"  requested {stats.get('requested', '?')} samples, accepted "
            f"{stats.get('accepted', '?')} of {stats.get('drawn', '?')} draws "
            f"(acceptance rate {stats.get('acceptance_rate', float('nan')):.3g}) "
            f"over {stats.get('rounds', '?')} rounds "
            f"(propagate={stats.get('propagate', False)})",
        ]
        for entry in stats.get("constraints", []):
            lines.append(
                f"  residual constraint {entry['name']!r}: "
                f"{entry['passed']} passed (rate {entry['rate']:.3g})"
            )
        for entry in stats.get("trees", []):
            lines.append(
                f"  tree over {entry['parameters']}: {entry['leaves']} feasible "
                "leaves (tree draws are always feasible by construction)"
            )
        if not stats.get("propagate", False) and self._residual_constraints:
            lines.append(
                "  hint: constraint propagation (SearchSpace.with_propagation() "
                "or BacoSettings(constraint_propagation=True)) prunes domains "
                "before drawing and can cut rejection rates by orders of "
                "magnitude on sparse spaces"
            )
        return "\n".join(lines)

    def feasible_mask_rows(self, rows: np.ndarray) -> np.ndarray:
        """Known-constraint feasibility of encoded rows, fully vectorized.

        Row-space equivalent of :meth:`is_feasible`: a row passes when it is
        a faithful encoding of legal parameter values *and* every known
        constraint holds on the decoded values.  The Chain-of-Trees needs no
        separate membership walk here — for full configurations tree
        membership is exactly the conjunction of the tree's constraints,
        which the compiled evaluators check directly.
        """
        rows = np.asarray(rows, dtype=float)
        mask = self.encoder.legal_mask(rows)
        evaluators = self._compiled("all")
        if evaluators and mask.any():
            constrained: set[str] = set()
            for constraint, _ in evaluators:
                constrained |= constraint.variables
            env = {
                name: self._env_column(column)
                for name, column in self.encoder.value_columns(
                    rows, names=constrained
                ).items()
            }
            for _, evaluator in evaluators:
                mask &= evaluator(env)
        return mask

    def sample_one(self, rng: np.random.Generator, biased_cot: bool = False) -> Configuration:
        return self.sample(rng, 1, biased_cot=biased_cot)[0]

    def default_configuration(self) -> Configuration:
        """The per-parameter defaults (may be infeasible for constrained spaces)."""
        config: Configuration = {}
        for p in self.parameters:
            default = getattr(p, "default", None)
            config[p.name] = default if default is not None else p.values_list()[0]
        return config

    # ------------------------------------------------------------------
    # neighbourhoods
    # ------------------------------------------------------------------
    def neighbours(
        self, configuration: Mapping[str, Any], feasible_only: bool = True
    ) -> list[Configuration]:
        """All configurations reachable by modifying a single parameter.

        This is the neighbourhood used by BaCO's multi-start local search
        (Sec. 3.3).  When a parameter belongs to a Chain-of-Trees tree, its
        candidate values are restricted to those feasible given the other
        parameters of the same tree, which avoids wasting moves on infeasible
        configurations.
        """
        result: list[Configuration] = []
        for param in self.parameters:
            current = configuration[param.name]
            if (
                feasible_only
                and self.chain_of_trees is not None
                and self.chain_of_trees.covers(param.name)
            ):
                candidates = [
                    v
                    for v in self.chain_of_trees.feasible_values(param.name, configuration)
                    if v != param.canonical(current)
                ]
            else:
                candidates = param.neighbours(current)
            for value in candidates:
                neighbour = dict(configuration)
                neighbour[param.name] = value
                if not feasible_only or self.is_feasible(neighbour):
                    result.append(neighbour)
        return result

    def neighbour_rows_batch(
        self, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Feasible one-parameter-change neighbourhoods of several rows at once.

        Returns ``(neighbour_rows, owners)`` where ``owners[j]`` is the index
        of the input row that neighbour ``j`` belongs to; within one owner the
        neighbours keep the parameter-major order of :meth:`neighbours`.  The
        candidate *values* come from the same sources as the dict path
        (Chain-of-Trees conditional values for covered parameters,
        ``Parameter.neighbours`` otherwise), but materialization is one
        matrix build and feasibility is one compiled-residual mask instead of
        a full ``is_feasible`` walk per neighbour.
        """
        rows = np.asarray(rows, dtype=float)
        encoder = self.encoder
        value_cols = encoder.value_columns(rows)
        cot = self.chain_of_trees
        residuals = self._compiled("residual")
        residual_vars: set[str] = set()
        for constraint, _ in residuals:
            residual_vars |= constraint.variables
        # with propagation on, drop candidate values the fixed point proved
        # infeasible before materializing them: they could only fail the
        # residual mask below, so the returned neighbours are identical
        pruned_sets: dict[str, Any] = {}
        if self.propagate:
            for name, dom in self._pruned_free_domains()[0].items():
                pruned_sets[name] = (
                    set(dom.values) if dom.kind == "discrete" else dom
                )

        blocks: list[np.ndarray] = []
        owners: list[int] = []
        changed_names: list[str] = []
        changed_values: list[Any] = []
        for i in range(len(rows)):
            config: Configuration | None = None
            for param in self.parameters:
                current = value_cols[param.name][i]
                if cot is not None and cot.covers(param.name):
                    if config is None:
                        config = {
                            name: value_cols[name][i] for name in self.parameter_names
                        }
                    candidates = [
                        v
                        for v in cot.feasible_values(param.name, config)
                        if v != param.canonical(current)
                    ]
                else:
                    # the contains() filter mirrors the dict path, where
                    # is_feasible drops e.g. a real neighbour whose
                    # exp(warp(high)) clamp overshot the raw bound by one ulp
                    candidates = [
                        v for v in param.neighbours(current) if param.contains(v)
                    ]
                    admitted = pruned_sets.get(param.name)
                    if isinstance(admitted, set):
                        candidates = [
                            v for v in candidates if param.canonical(v) in admitted
                        ]
                    elif admitted is not None:
                        candidates = [
                            v
                            for v in candidates
                            if admitted.low <= float(v) <= admitted.high
                        ]
                if not candidates:
                    continue
                block = np.tile(rows[i], (len(candidates), 1))
                block[:, encoder.columns(param.name)] = encoder.encode_value_column(
                    param.name, self._raw_column(param, candidates)
                )
                blocks.append(block)
                owners.extend([i] * len(candidates))
                changed_names.extend([param.name] * len(candidates))
                changed_values.extend(candidates)
        if not blocks:
            return np.empty((0, encoder.width), dtype=float), np.empty(0, dtype=int)
        batch = np.vstack(blocks)
        owner_idx = np.asarray(owners, dtype=int)

        if residuals:
            changed = np.asarray(changed_names, dtype=object)
            env: dict[str, np.ndarray] = {}
            for name in residual_vars:
                column = self._env_column(value_cols[name])[owner_idx]
                replace = changed == name
                if replace.any():
                    column = column.copy()
                    for j in np.nonzero(replace)[0]:
                        column[j] = changed_values[j]
                env[name] = column
            mask = np.ones(len(batch), dtype=bool)
            for _, evaluator in residuals:
                mask &= evaluator(env)
            batch = batch[mask]
            owner_idx = owner_idx[mask]
        return batch, owner_idx

    # ------------------------------------------------------------------
    # encodings
    # ------------------------------------------------------------------
    @cached_property
    def encoder(self) -> ConfigEncoder:
        """The fixed-width numeric encoder shared by every model layer."""
        return ConfigEncoder(self.parameters)

    def encode(self, configuration: Mapping[str, Any]) -> np.ndarray:
        """Flat numeric encoding of a configuration (one encoder row)."""
        return self.encoder.encode(configuration)

    def encode_batch(self, configurations: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Encode a batch of configurations as an ``(n, width)`` float matrix."""
        return self.encoder.encode_batch(configurations)

    # kept as an alias for historical callers
    def encode_many(self, configurations: Sequence[Mapping[str, Any]]) -> np.ndarray:
        return self.encoder.encode_batch(configurations)

    def decode_row(self, row: Sequence[float]) -> Configuration:
        """Round-trip an encoded row back to a configuration."""
        return self.encoder.decode(row)

    def freeze(self, configuration: Mapping[str, Any]) -> tuple:
        """Hashable key for a configuration (used for de-duplication)."""
        return freeze_configuration(configuration, self.parameter_names)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def parameter_type_codes(self) -> str:
        """Short type summary like "O/C/P" used in Table 3."""
        codes = []
        for param in self.parameters:
            if param.type_code not in codes:
                codes.append(param.type_code)
        order = {"R": 0, "I": 1, "O": 2, "C": 3, "P": 4}
        return "/".join(sorted(codes, key=lambda c: order.get(c, 9)))

    def describe(self) -> dict[str, Any]:
        """Summary statistics in the spirit of Table 3."""
        return {
            "dimension": self.dimension,
            "types": self.parameter_type_codes(),
            "dense_size": self.dense_size(),
            "feasible_size": self.feasible_size(),
            "n_known_constraints": len(self.constraints),
        }
