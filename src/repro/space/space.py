"""The :class:`SearchSpace`: parameters + known constraints.

A search space bundles the tunable parameters exposed by a compiler's
scheduling language together with the *known constraints* relating them.  It
offers everything the optimizers need:

* feasible random sampling (through the Chain-of-Trees where possible,
  rejection sampling otherwise),
* feasibility tests against the known constraints,
* neighbour enumeration restricted to the feasible region (for the
  acquisition-function local search),
* numeric encoding of configurations (for random-forest models),
* size statistics matching Table 3 of the paper (dense size vs. feasible
  size).
"""

from __future__ import annotations

import math
from functools import cached_property
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from .chain_of_trees import ChainOfTrees, FeasibleSetTooLarge, Tree
from .constraints import Constraint, group_codependent
from .encoding import ConfigEncoder
from .parameters import Parameter

__all__ = ["SearchSpace", "Configuration", "freeze_configuration"]

#: A configuration is a plain mapping from parameter name to value.
Configuration = dict[str, Any]


def freeze_configuration(configuration: Mapping[str, Any], names: Sequence[str]) -> tuple:
    """Hashable, order-normalized representation of a configuration."""
    return tuple(
        tuple(configuration[n]) if isinstance(configuration[n], (list, tuple)) else configuration[n]
        for n in names
    )


class SearchSpace:
    """A constrained, mixed-type autotuning search space."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        constraints: Sequence[Constraint] = (),
        build_chain_of_trees: bool = True,
        max_cot_nodes: int = 2_000_000,
    ) -> None:
        names = [p.name for p in parameters]
        if len(names) != len(set(names)):
            raise ValueError("duplicate parameter names in search space")
        self.parameters: list[Parameter] = list(parameters)
        self.parameter_names: list[str] = names
        self._by_name: dict[str, Parameter] = {p.name: p for p in parameters}
        self.constraints: list[Constraint] = list(constraints)
        for constraint in self.constraints:
            unknown = constraint.variables - set(names)
            if unknown:
                raise ValueError(
                    f"constraint {constraint.name!r} references unknown parameters {sorted(unknown)}"
                )
        self.chain_of_trees: ChainOfTrees | None = None
        #: constraints not captured by the CoT (evaluated explicitly)
        self._residual_constraints: list[Constraint] = list(self.constraints)
        if build_chain_of_trees and self.constraints:
            self._build_chain_of_trees(max_cot_nodes)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _build_chain_of_trees(self, max_cot_nodes: int) -> None:
        groups = group_codependent(self.parameter_names, self.constraints)
        trees: list[Tree] = []
        captured: list[Constraint] = []
        for group in groups:
            group_constraints = [
                c for c in self.constraints if c.variables <= set(group)
            ]
            if not group_constraints:
                continue
            group_params = [self._by_name[n] for n in group]
            if not all(p.is_discrete for p in group_params):
                continue
            if any(p.cardinality() > 10_000 for p in group_params):
                continue
            try:
                trees.append(Tree(group_params, group_constraints, max_nodes=max_cot_nodes))
            except FeasibleSetTooLarge:
                continue
            captured.extend(group_constraints)
        if trees:
            self.chain_of_trees = ChainOfTrees(trees)
            captured_set = {id(c) for c in captured}
            self._residual_constraints = [
                c for c in self.constraints if id(c) not in captured_set
            ]

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.parameters)

    def __getitem__(self, name: str) -> Parameter:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def dimension(self) -> int:
        """Number of tunable parameters (the "Dim" column of Table 3)."""
        return len(self.parameters)

    def dense_size(self) -> float:
        """Cartesian-product size of the space, ``inf`` if any parameter is continuous."""
        total = 1.0
        for param in self.parameters:
            card = param.cardinality()
            if card is None:
                return math.inf
            total *= card
        return total

    def feasible_size(self, max_exhaustive: int = 2_000_000) -> float:
        """Number of configurations satisfying the known constraints.

        Uses the Chain-of-Trees counts when all constraints are captured by
        it; otherwise falls back to exhaustive counting when the dense size
        is small enough, and to ``nan`` otherwise.
        """
        if not self.constraints:
            return self.dense_size()
        if self.chain_of_trees is not None and not self._residual_constraints:
            free = 1.0
            covered = set(self.chain_of_trees.parameter_names)
            for param in self.parameters:
                if param.name in covered:
                    continue
                card = param.cardinality()
                if card is None:
                    return math.inf
                free *= card
            return self.chain_of_trees.n_feasible * free
        dense = self.dense_size()
        if dense is math.inf or dense > max_exhaustive:
            return float("nan")
        count = 0
        for config in self.iter_dense():
            if self.is_feasible(config):
                count += 1
        return float(count)

    def iter_dense(self) -> Iterable[Configuration]:
        """Iterate over the full Cartesian product (discrete spaces only)."""
        values = [p.values_list() for p in self.parameters]

        def rec(depth: int, partial: Configuration):
            if depth == len(self.parameters):
                yield dict(partial)
                return
            name = self.parameters[depth].name
            for value in values[depth]:
                partial[name] = value
                yield from rec(depth + 1, partial)
            partial.pop(name, None)

        yield from rec(0, {})

    # ------------------------------------------------------------------
    # feasibility
    # ------------------------------------------------------------------
    def is_feasible(self, configuration: Mapping[str, Any]) -> bool:
        """Check the known constraints (hidden constraints are *not* checked here)."""
        for param in self.parameters:
            if param.name not in configuration:
                raise KeyError(f"configuration is missing parameter {param.name!r}")
            if not param.contains(configuration[param.name]):
                return False
        if self.chain_of_trees is not None:
            if not self.chain_of_trees.contains(configuration):
                return False
            for constraint in self._residual_constraints:
                if not constraint.evaluate(configuration):
                    return False
            return True
        for constraint in self.constraints:
            if not constraint.evaluate(configuration):
                return False
        return True

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample(
        self,
        rng: np.random.Generator,
        n_samples: int = 1,
        biased_cot: bool = False,
        max_rejection_rounds: int = 10_000,
    ) -> list[Configuration]:
        """Draw ``n_samples`` feasible configurations.

        Constrained discrete groups are sampled through the Chain-of-Trees
        (uniform over leaves unless ``biased_cot``); remaining constraints are
        handled by rejection sampling.
        """
        samples: list[Configuration] = []
        covered = (
            set(self.chain_of_trees.parameter_names) if self.chain_of_trees is not None else set()
        )
        attempts = 0
        while len(samples) < n_samples:
            attempts += 1
            if attempts > max_rejection_rounds * max(1, n_samples):
                raise RuntimeError(
                    "rejection sampling failed to find feasible configurations; "
                    "the feasible region may be too sparse"
                )
            config: Configuration = {}
            if self.chain_of_trees is not None:
                config.update(self.chain_of_trees.sample(rng, biased=biased_cot))
            for param in self.parameters:
                if param.name not in covered:
                    config[param.name] = param.sample(rng)
            if all(c.evaluate(config) for c in self._residual_constraints):
                samples.append(config)
        return samples

    def sample_one(self, rng: np.random.Generator, biased_cot: bool = False) -> Configuration:
        return self.sample(rng, 1, biased_cot=biased_cot)[0]

    def default_configuration(self) -> Configuration:
        """The per-parameter defaults (may be infeasible for constrained spaces)."""
        return {p.name: getattr(p, "default", p.values_list()[0]) for p in self.parameters}

    # ------------------------------------------------------------------
    # neighbourhoods
    # ------------------------------------------------------------------
    def neighbours(
        self, configuration: Mapping[str, Any], feasible_only: bool = True
    ) -> list[Configuration]:
        """All configurations reachable by modifying a single parameter.

        This is the neighbourhood used by BaCO's multi-start local search
        (Sec. 3.3).  When a parameter belongs to a Chain-of-Trees tree, its
        candidate values are restricted to those feasible given the other
        parameters of the same tree, which avoids wasting moves on infeasible
        configurations.
        """
        result: list[Configuration] = []
        for param in self.parameters:
            current = configuration[param.name]
            if (
                feasible_only
                and self.chain_of_trees is not None
                and self.chain_of_trees.covers(param.name)
            ):
                candidates = [
                    v
                    for v in self.chain_of_trees.feasible_values(param.name, configuration)
                    if v != param.canonical(current)
                ]
            else:
                candidates = param.neighbours(current)
            for value in candidates:
                neighbour = dict(configuration)
                neighbour[param.name] = value
                if not feasible_only or self.is_feasible(neighbour):
                    result.append(neighbour)
        return result

    # ------------------------------------------------------------------
    # encodings
    # ------------------------------------------------------------------
    @cached_property
    def encoder(self) -> ConfigEncoder:
        """The fixed-width numeric encoder shared by every model layer."""
        return ConfigEncoder(self.parameters)

    def encode(self, configuration: Mapping[str, Any]) -> np.ndarray:
        """Flat numeric encoding of a configuration (one encoder row)."""
        return self.encoder.encode(configuration)

    def encode_batch(self, configurations: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Encode a batch of configurations as an ``(n, width)`` float matrix."""
        return self.encoder.encode_batch(configurations)

    # kept as an alias for historical callers
    def encode_many(self, configurations: Sequence[Mapping[str, Any]]) -> np.ndarray:
        return self.encoder.encode_batch(configurations)

    def decode_row(self, row: Sequence[float]) -> Configuration:
        """Round-trip an encoded row back to a configuration."""
        return self.encoder.decode(row)

    def freeze(self, configuration: Mapping[str, Any]) -> tuple:
        """Hashable key for a configuration (used for de-duplication)."""
        return freeze_configuration(configuration, self.parameter_names)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def parameter_type_codes(self) -> str:
        """Short type summary like "O/C/P" used in Table 3."""
        codes = []
        for param in self.parameters:
            if param.type_code not in codes:
                codes.append(param.type_code)
        order = {"R": 0, "I": 1, "O": 2, "C": 3, "P": 4}
        return "/".join(sorted(codes, key=lambda c: order.get(c, 9)))

    def describe(self) -> dict[str, Any]:
        """Summary statistics in the spirit of Table 3."""
        return {
            "dimension": self.dimension,
            "types": self.parameter_type_codes(),
            "dense_size": self.dense_size(),
            "feasible_size": self.feasible_size(),
            "n_known_constraints": len(self.constraints),
        }
