"""Chain-of-Trees (CoT) representation of constrained discrete search spaces.

Known constraints often make the feasible region a tiny fraction of the
Cartesian product of parameter domains (Table 3 of the paper).  Following
Rasch et al. (ATF) and Sec. 4.2 of the BaCO paper, the feasible region is
pre-computed and stored as a *chain of trees*:

* co-dependent parameters (those transitively linked by constraints) form a
  group, and each group becomes one *tree*;
* each level of a tree corresponds to one parameter of the group and each
  node to one feasible value given the values on the path above it;
* each root-to-leaf path is a feasible *partial configuration*;
* parameters in different trees are independent, so any combination of
  partial configurations is feasible.

BaCO uses the CoT for three things (Sec. 4.2):

1. **Bias-free random sampling** -- sampling uniformly over the leaves of
   each tree (instead of walking down the tree choosing children uniformly,
   which is biased towards sparse subtrees; both strategies are implemented
   so the bias can be studied as in the evaluation's "CoT sampling" baseline).
2. **Fast membership tests** -- checking whether a configuration is feasible
   by walking the trees instead of re-evaluating every constraint.
3. **Neighbour generation** on the feasible region for local search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from .constraints import Constraint, Domain, compile_domain_reducer, propagate_domains
from .parameters import Parameter

__all__ = ["CoTNode", "Tree", "ChainOfTrees", "FeasibleSetTooLarge"]


class FeasibleSetTooLarge(RuntimeError):
    """Raised when enumerating the feasible set would exceed the node budget."""


@dataclass
class CoTNode:
    """One node of a tree: a single value of a single parameter."""

    value: Any
    depth: int
    children: list["CoTNode"] = field(default_factory=list)
    leaf_count: int = 0
    #: pruned domains of the parameters *below* this node, memoized at build
    #: time when the tree is built with ``propagate=True`` (else ``None``)
    domains: dict[str, Domain] | None = None

    def is_leaf(self) -> bool:
        return not self.children


class Tree:
    """A tree over one group of co-dependent parameters."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        constraints: Sequence[Constraint],
        max_nodes: int = 2_000_000,
        propagate: bool = False,
    ) -> None:
        for param in parameters:
            if not param.is_discrete:
                raise TypeError(
                    f"Chain-of-Trees requires discrete parameters, got {param.name!r}"
                )
        self.parameters = list(parameters)
        self.parameter_names = [p.name for p in parameters]
        self.constraints = list(constraints)
        self._max_nodes = max_nodes
        self._node_count = 0
        #: materialized-leaf caches, built lazily on first use; the tree is
        #: immutable after construction so they are never invalidated
        self._leaves: list[dict[str, Any]] | None = None
        self._biased_cumulative: np.ndarray | None = None
        self.propagate = bool(propagate)
        self._reducers = (
            [
                reducer
                for reducer in (compile_domain_reducer(c) for c in self.constraints)
                if reducer is not None
            ]
            if self.propagate
            else []
        )
        self.root = CoTNode(value=None, depth=-1)
        root_domains: dict[str, Domain] | None = None
        if self._reducers:
            initial = {
                p.name: dom
                for p in self.parameters
                if (dom := p.propagation_domain()) is not None
            }
            root_domains, _ = propagate_domains(self._reducers, initial, {})
            self.root.domains = root_domains
        self._build(self.root, {}, root_domains)
        self._count_leaves(self.root)
        if self.root.leaf_count == 0:
            raise ValueError(
                "constraints over parameters "
                f"{self.parameter_names} admit no feasible configuration"
            )

    # -- construction ---------------------------------------------------
    def _applicable(self, partial: Mapping[str, Any]) -> bool:
        for constraint in self.constraints:
            if constraint.is_applicable(partial) and not constraint.evaluate(partial):
                return False
        return True

    def _candidate_values(
        self, param: Parameter, domains: Mapping[str, Domain] | None
    ) -> list[Any]:
        """Candidate values for ``param`` at the current node, post-pruning.

        GAC soundness makes the propagated tree provably identical to the
        unpropagated one: a pruned value admits no feasible completion, so
        the plain build would have discarded its subtree anyway — pruning
        only skips the doomed descent.
        """
        values = param.values_list()
        if domains is None or param.name not in domains:
            return values
        dom = domains[param.name]
        if dom.kind == "discrete":
            return list(dom.values)
        return [v for v in values if dom.low <= v <= dom.high]

    def _build(
        self,
        node: CoTNode,
        partial: dict[str, Any],
        domains: dict[str, Domain] | None,
    ) -> None:
        depth = node.depth + 1
        if depth == len(self.parameters):
            return
        param = self.parameters[depth]
        for value in self._candidate_values(param, domains):
            partial[param.name] = value
            if self._applicable(partial):
                self._node_count += 1
                if self._node_count > self._max_nodes:
                    raise FeasibleSetTooLarge(
                        f"feasible enumeration exceeded {self._max_nodes} nodes"
                    )
                child = CoTNode(value=value, depth=depth)
                child_domains: dict[str, Domain] | None = None
                doomed = False
                if domains is not None:
                    remaining = {k: d for k, d in domains.items() if k != param.name}
                    if remaining:
                        child_domains, _ = propagate_domains(
                            self._reducers, remaining, partial
                        )
                        doomed = any(d.is_empty for d in child_domains.values())
                    else:
                        child_domains = remaining
                    child.domains = child_domains
                if not doomed:
                    self._build(child, partial, child_domains)
                # only keep children that lead to at least one full assignment
                if depth == len(self.parameters) - 1 or child.children:
                    node.children.append(child)
            del partial[param.name]

    def _count_leaves(self, node: CoTNode) -> int:
        if node.is_leaf():
            node.leaf_count = 1 if node.depth == len(self.parameters) - 1 else 0
            return node.leaf_count
        node.leaf_count = sum(self._count_leaves(child) for child in node.children)
        return node.leaf_count

    # -- queries ----------------------------------------------------------
    @property
    def n_feasible(self) -> int:
        """Number of feasible partial configurations represented by this tree.

        O(1): the per-node leaf counts are computed once at build time and the
        tree is immutable afterwards.
        """
        return self.root.leaf_count

    def contains(self, configuration: Mapping[str, Any]) -> bool:
        """Walk the tree to test whether a configuration's projection is feasible."""
        node = self.root
        for param in self.parameters:
            value = param.canonical(configuration[param.name])
            matched = None
            for child in node.children:
                if child.value == value:
                    matched = child
                    break
            if matched is None:
                return False
            node = matched
        return True

    def sample_leaf(self, rng: np.random.Generator) -> dict[str, Any]:
        """Sample a partial configuration uniformly over the leaves (bias-free)."""
        node = self.root
        values: dict[str, Any] = {}
        for param in self.parameters:
            weights = np.array([child.leaf_count for child in node.children], dtype=float)
            total = weights.sum()
            probabilities = weights / total
            idx = int(rng.choice(len(node.children), p=probabilities))
            node = node.children[idx]
            values[param.name] = node.value
        return values

    def sample_path(self, rng: np.random.Generator) -> dict[str, Any]:
        """Sample by choosing a uniformly random child at every level (biased)."""
        node = self.root
        values: dict[str, Any] = {}
        for param in self.parameters:
            idx = int(rng.integers(len(node.children)))
            node = node.children[idx]
            values[param.name] = node.value
        return values

    def _materialize_leaves(self) -> None:
        """One walk filling both leaf caches (list + biased sampling weights).

        The walk preserves the historical ``iter_leaves`` stack order, and the
        per-leaf probability of the biased per-level sampling scheme (product
        of ``1 / n_children`` along the path) is accumulated alongside so
        ``sample_leaf_indices`` can draw either mode from the same index.
        """
        leaves: list[dict[str, Any]] = []
        biased: list[float] = []
        stack: list[tuple[CoTNode, dict[str, Any], float]] = [(self.root, {}, 1.0)]
        while stack:
            node, partial, probability = stack.pop()
            if node.depth == len(self.parameters) - 1:
                leaves.append(dict(partial))
                biased.append(probability)
                continue
            next_param = self.parameters[node.depth + 1]
            share = probability / len(node.children) if node.children else 0.0
            for child in node.children:
                nxt = dict(partial)
                nxt[next_param.name] = child.value
                stack.append((child, nxt, share))
        cumulative = np.cumsum(np.asarray(biased, dtype=float))
        # guard against floating drift so searchsorted can never fall off the end
        cumulative[-1] = 1.0
        # publication order matters under concurrency: every fast-path check
        # gates on `_leaves is None`, so the cumulative weights must be
        # visible before `_leaves` is.  The walk itself is deterministic, so
        # two racing materializations assign identical values (idempotent).
        self._biased_cumulative = cumulative
        self._leaves = leaves

    def leaves(self) -> list[dict[str, Any]]:
        """The materialized feasible partial configurations (cached).

        Trees are immutable after construction, so the first call's walk is
        reused forever.  Callers must not mutate the returned dictionaries.
        """
        if self._leaves is None:
            self._materialize_leaves()
        return self._leaves

    def iter_leaves(self) -> Iterator[dict[str, Any]]:
        """Yield every feasible partial configuration (cached materialization)."""
        for leaf in self.leaves():
            yield dict(leaf)

    def sample_leaf_indices(
        self, rng: np.random.Generator, n: int, biased: bool = False
    ) -> np.ndarray:
        """Draw ``n`` leaf indices (into :meth:`leaves`) in one vectorized pass.

        Uniform mode draws indices uniformly — exactly the bias-free
        uniform-over-leaves distribution of :meth:`sample_leaf`.  Biased mode
        inverts the cumulative per-leaf probability of the ATF-style
        per-level walk, reproducing :meth:`sample_path`'s distribution
        without walking the tree per sample.
        """
        if self._leaves is None:
            self._materialize_leaves()
        if not biased:
            return rng.integers(len(self._leaves), size=n)
        return np.searchsorted(
            self._biased_cumulative, rng.random(n), side="right"
        ).clip(0, len(self._leaves) - 1)

    def feasible_values(
        self, parameter_name: str, configuration: Mapping[str, Any]
    ) -> list[Any]:
        """Values of one parameter feasible given the others held fixed."""
        if parameter_name not in self.parameter_names:
            raise KeyError(parameter_name)
        target = self.parameter_names.index(parameter_name)
        results: list[Any] = []
        self._collect_feasible_values(self.root, configuration, target, results)
        return results

    def _collect_feasible_values(
        self,
        node: CoTNode,
        configuration: Mapping[str, Any],
        target_depth: int,
        results: list[Any],
    ) -> None:
        depth = node.depth + 1
        if depth == len(self.parameters):
            return
        param = self.parameters[depth]
        for child in node.children:
            if depth == target_depth:
                if self._subtree_matches(child, configuration, depth + 1):
                    if child.value not in results:
                        results.append(child.value)
            else:
                if child.value == param.canonical(configuration[param.name]):
                    self._collect_feasible_values(child, configuration, target_depth, results)

    def _subtree_matches(
        self, node: CoTNode, configuration: Mapping[str, Any], depth: int
    ) -> bool:
        if depth == len(self.parameters):
            return True
        param = self.parameters[depth]
        value = param.canonical(configuration[param.name])
        for child in node.children:
            if child.value == value and self._subtree_matches(child, configuration, depth + 1):
                return True
        return False


class ChainOfTrees:
    """The full chain: one tree per group of co-dependent parameters."""

    def __init__(self, trees: Sequence[Tree]) -> None:
        self.trees = list(trees)
        names = [name for tree in self.trees for name in tree.parameter_names]
        if len(names) != len(set(names)):
            raise ValueError("a parameter may appear in at most one tree")
        self.parameter_names = names
        self._tree_of: dict[str, Tree] = {
            name: tree for tree in self.trees for name in tree.parameter_names
        }

    @property
    def n_feasible(self) -> int:
        """Total number of feasible configurations over the chained parameters."""
        total = 1
        for tree in self.trees:
            total *= tree.n_feasible
        return total

    def covers(self, parameter_name: str) -> bool:
        return parameter_name in self._tree_of

    def tree_for(self, parameter_name: str) -> Tree:
        return self._tree_of[parameter_name]

    def contains(self, configuration: Mapping[str, Any]) -> bool:
        return all(tree.contains(configuration) for tree in self.trees)

    def sample(self, rng: np.random.Generator, biased: bool = False) -> dict[str, Any]:
        """Sample the constrained part of a configuration.

        With ``biased=False`` (BaCO's fix) the sample is uniform over feasible
        configurations; with ``biased=True`` it reproduces the ATF-style
        uniform-per-level walk that over-weights sparse subtrees.
        """
        values: dict[str, Any] = {}
        for tree in self.trees:
            draw = tree.sample_path(rng) if biased else tree.sample_leaf(rng)
            values.update(draw)
        return values

    def feasible_values(
        self, parameter_name: str, configuration: Mapping[str, Any]
    ) -> list[Any]:
        return self._tree_of[parameter_name].feasible_values(parameter_name, configuration)
