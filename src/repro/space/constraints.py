"""Known-constraint predicates over configurations.

A *known constraint* (Sec. 4.2) is a predicate over a configuration that is
known before the optimization starts, e.g. "the tile size must divide the
loop bound".  BaCO only ever proposes configurations satisfying all known
constraints, so its surrogate model trains exclusively on feasible points.

Constraints can be expressed either as

* a Python expression string over the parameter names, evaluated in a
  restricted namespace (``Constraint("p1 >= p2")``), or
* an arbitrary callable taking a configuration dictionary
  (``Constraint.from_callable(lambda cfg: cfg["p1"] >= cfg["p2"], ["p1", "p2"])``).

Each constraint records the set of parameter names it involves; the
Chain-of-Trees builder uses those sets to group co-dependent parameters.
"""

from __future__ import annotations

import ast
import math
import operator
from functools import reduce
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "Constraint",
    "ConstraintError",
    "Domain",
    "DomainReducer",
    "extract_variables",
    "compile_column_evaluator",
    "compile_domain_reducer",
    "propagate_domains",
]


class ConstraintError(ValueError):
    """Raised when a constraint expression is malformed."""


class _Unset:
    """Sentinel distinguishing 'not compiled yet' from 'compiles to None'."""


_UNSET = _Unset()


_ALLOWED_FUNCTIONS: dict[str, Any] = {
    "abs": abs,
    "min": min,
    "max": max,
    "len": len,
    "log": math.log,
    "log2": math.log2,
    "sqrt": math.sqrt,
    "floor": math.floor,
    "ceil": math.ceil,
    "pow": pow,
}

#: Shared globals for the scalar ``eval`` path, built once at import time:
#: rebuilding the ``{"__builtins__": {}}`` + functions namespace per
#: ``evaluate`` call used to dominate the cost of cheap constraints.
#: ``eval`` requires a real dict for globals; nothing may mutate this one.
_SCALAR_GLOBALS: dict[str, Any] = {"__builtins__": {}, **_ALLOWED_FUNCTIONS}

_ALLOWED_NODE_TYPES = (
    ast.Expression,
    ast.BoolOp, ast.And, ast.Or,
    ast.UnaryOp, ast.Not, ast.USub, ast.UAdd,
    ast.BinOp, ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
    ast.Compare, ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.In, ast.NotIn,
    ast.Call, ast.Name, ast.Load, ast.Constant,
    ast.Tuple, ast.List, ast.Subscript, ast.Index, ast.Slice,
    ast.IfExp,
)


def _validate_expression(tree: ast.Expression) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODE_TYPES):
            raise ConstraintError(
                f"disallowed syntax {type(node).__name__!r} in constraint expression"
            )
        if isinstance(node, ast.Call):
            if not isinstance(node.func, ast.Name) or node.func.id not in _ALLOWED_FUNCTIONS:
                raise ConstraintError("only whitelisted functions may be called in constraints")


def extract_variables(expression: str) -> frozenset[str]:
    """Return the parameter names referenced by a constraint expression."""
    tree = ast.parse(expression, mode="eval")
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id not in _ALLOWED_FUNCTIONS:
            names.add(node.id)
    return frozenset(names)


class Constraint:
    """A boolean predicate over a configuration dictionary."""

    def __init__(self, expression: str, name: str | None = None) -> None:
        try:
            tree = ast.parse(expression, mode="eval")
        except SyntaxError as exc:
            raise ConstraintError(f"invalid constraint expression {expression!r}: {exc}") from exc
        _validate_expression(tree)
        self.expression = expression
        self.name = name or expression
        self.variables = extract_variables(expression)
        if not self.variables:
            raise ConstraintError(f"constraint {expression!r} references no parameters")
        self._code = compile(tree, filename="<constraint>", mode="eval")
        self._callable: Callable[[Mapping[str, Any]], bool] | None = None
        self._column_evaluator: ColumnEvaluator | None = None
        self._domain_reducer: "DomainReducer | None | _Unset" = _UNSET

    @classmethod
    def from_callable(
        cls,
        func: Callable[[Mapping[str, Any]], bool],
        variables: Sequence[str],
        name: str | None = None,
    ) -> "Constraint":
        """Wrap an arbitrary predicate; ``variables`` lists the parameters it reads."""
        if not variables:
            raise ConstraintError("callable constraints must declare their variables")
        obj = cls.__new__(cls)
        obj.expression = name or getattr(func, "__name__", "<callable>")
        obj.name = name or obj.expression
        obj.variables = frozenset(variables)
        obj._code = None
        obj._callable = func
        obj._column_evaluator = None
        obj._domain_reducer = _UNSET
        return obj

    def evaluate(self, configuration: Mapping[str, Any]) -> bool:
        """Evaluate the constraint; missing variables raise ``KeyError``.

        This scalar path is the *reference oracle* for the compiled column
        evaluator (:meth:`compile_columns`): the two must agree on every full
        configuration, and tests pin that agreement.
        """
        if self._callable is not None:
            return bool(self._callable(configuration))
        namespace = {var: configuration[var] for var in self.variables}
        return bool(eval(self._code, _SCALAR_GLOBALS, namespace))  # noqa: S307

    def is_applicable(self, configuration: Mapping[str, Any]) -> bool:
        """Whether all referenced parameters are present in ``configuration``."""
        return all(var in configuration for var in self.variables)

    def compile_columns(self) -> "ColumnEvaluator | None":
        """Compile the expression AST into a numpy evaluator over columns.

        The evaluator maps ``{parameter name: value column}`` (one array entry
        per configuration, all columns equally long) to a boolean feasibility
        mask, replacing one Python ``eval`` per configuration with a handful
        of array operations per batch.  Compilation happens once and is
        cached; callable-based constraints cannot be compiled and return
        ``None`` (callers fall back to the scalar oracle).
        """
        if self._callable is not None:
            return None
        if self._column_evaluator is None:
            body = _compile_column_node(ast.parse(self.expression, mode="eval").body)

            def evaluate_columns(columns: Mapping[str, Any]) -> np.ndarray:
                # numpy warnings (0/0 inside a masked-out branch of an IfExp,
                # overflow in a discarded comparison operand) are expected:
                # the scalar oracle would short-circuit past them
                with np.errstate(all="ignore"):
                    out = body(columns)
                return np.asarray(out, dtype=bool)

            self._column_evaluator = evaluate_columns
        return self._column_evaluator

    def __call__(self, configuration: Mapping[str, Any]) -> bool:
        return self.evaluate(configuration)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constraint({self.expression!r})"


# ---------------------------------------------------------------------------
# compiled column evaluation
# ---------------------------------------------------------------------------

#: Maps ``{parameter name: column}`` to a boolean mask over the batch.
ColumnEvaluator = Callable[[Mapping[str, Any]], np.ndarray]


def compile_column_evaluator(constraint: "Constraint") -> ColumnEvaluator:
    """Batched evaluator for ``constraint``, with a scalar-oracle fallback.

    Expression constraints compile to pure array code; callable constraints
    (which cannot be introspected) are evaluated per row against dictionaries
    assembled from the columns — correct, but only as fast as the callable.
    """
    compiled = constraint.compile_columns()
    if compiled is not None:
        return compiled
    variables = sorted(constraint.variables)

    def evaluate_scalar(columns: Mapping[str, Any]) -> np.ndarray:
        pulled = [(name, columns[name]) for name in variables]
        n = len(pulled[0][1])
        return np.fromiter(
            (
                constraint.evaluate({name: column[i] for name, column in pulled})
                for i in range(n)
            ),
            dtype=bool,
            count=n,
        )

    return evaluate_scalar


def _box(value: Any) -> Any:
    """Wrap tuple/list operands so comparisons stay elementwise.

    Permutation columns are object arrays whose entries are tuples; comparing
    them against a literal ``(0, 1, 2)`` must compare *each entry* to the
    tuple instead of broadcasting the literal's elements.
    """
    if isinstance(value, (tuple, list)):
        boxed = np.empty((), dtype=object)
        boxed[()] = tuple(value)
        return boxed
    return value


def _eq(a: Any, b: Any) -> Any:
    return np.asarray(_box(a) == _box(b))


def _ne(a: Any, b: Any) -> Any:
    return np.asarray(_box(a) != _box(b))


def _contains(item: Any, collection: Any) -> Any:
    """Elementwise ``item in collection`` (equality-based, like the oracle)."""
    if isinstance(collection, np.ndarray) and collection.dtype == object:
        return np.frompyfunc(lambda x, c: x in c, 2, 1)(_box(item), collection)
    members = list(collection) if isinstance(collection, (tuple, list)) else [collection]
    if not members:
        return np.zeros(np.shape(item) or (), dtype=bool)
    return reduce(np.logical_or, [_eq(item, member) for member in members])


def _elementwise_min(*args: Any) -> Any:
    if len(args) == 1:
        (arg,) = args
        if isinstance(arg, np.ndarray) and arg.dtype == object:
            return np.frompyfunc(min, 1, 1)(arg)
        if isinstance(arg, (tuple, list)):
            return reduce(np.minimum, arg)
        return min(arg)
    return reduce(np.minimum, args)


def _elementwise_max(*args: Any) -> Any:
    if len(args) == 1:
        (arg,) = args
        if isinstance(arg, np.ndarray) and arg.dtype == object:
            return np.frompyfunc(max, 1, 1)(arg)
        if isinstance(arg, (tuple, list)):
            return reduce(np.maximum, arg)
        return max(arg)
    return reduce(np.maximum, args)


def _elementwise_len(value: Any) -> Any:
    if isinstance(value, np.ndarray) and value.dtype == object:
        return np.frompyfunc(len, 1, 1)(value).astype(float)
    return len(value)


def _getitem(value: Any, index: Any) -> Any:
    if isinstance(value, np.ndarray) and value.dtype == object:
        return np.frompyfunc(operator.getitem, 2, 1)(value, index)
    return value[index]


#: numpy counterparts of the scalar whitelist (identical math, batched)
_COLUMN_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "abs": np.absolute,
    "min": _elementwise_min,
    "max": _elementwise_max,
    "len": _elementwise_len,
    "log": np.log,
    "log2": np.log2,
    "sqrt": np.sqrt,
    "floor": np.floor,
    "ceil": np.ceil,
    "pow": np.power,
}

_BIN_OPS: dict[type, Callable[[Any, Any], Any]] = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.FloorDiv: operator.floordiv,
    ast.Mod: operator.mod,
    ast.Pow: operator.pow,
}

_COMPARE_OPS: dict[type, Callable[[Any, Any], Any]] = {
    ast.Eq: _eq,
    ast.NotEq: _ne,
    ast.Lt: operator.lt,
    ast.LtE: operator.le,
    ast.Gt: operator.gt,
    ast.GtE: operator.ge,
    ast.In: _contains,
    ast.NotIn: lambda a, b: np.logical_not(_contains(a, b)),
}


def _compile_column_node(node: ast.AST) -> Callable[[Mapping[str, Any]], Any]:
    """Recursively close over an (already validated) expression AST.

    Compilation happens once per constraint; the returned closures perform no
    AST inspection at call time.  Semantics mirror the scalar oracle with two
    deliberate exceptions: ``and`` / ``or`` evaluate both operands (no
    short-circuiting — guarded by ``errstate`` in the caller), and chained
    comparisons evaluate every link.
    """
    if isinstance(node, ast.Constant):
        value = node.value
        return lambda env: value
    if isinstance(node, ast.Name):
        name = node.id
        return lambda env: env[name]
    if isinstance(node, (ast.Tuple, ast.List)):
        elements = [_compile_column_node(el) for el in node.elts]
        return lambda env: tuple(el(env) for el in elements)
    if isinstance(node, ast.BoolOp):
        parts = [_compile_column_node(value) for value in node.values]
        combine = np.logical_and if isinstance(node.op, ast.And) else np.logical_or
        return lambda env: reduce(combine, (part(env) for part in parts))
    if isinstance(node, ast.UnaryOp):
        operand = _compile_column_node(node.operand)
        if isinstance(node.op, ast.Not):
            return lambda env: np.logical_not(operand(env))
        if isinstance(node.op, ast.USub):
            return lambda env: operator.neg(operand(env))
        return operand  # UAdd
    if isinstance(node, ast.BinOp):
        op = _BIN_OPS[type(node.op)]
        left = _compile_column_node(node.left)
        right = _compile_column_node(node.right)
        return lambda env: op(left(env), right(env))
    if isinstance(node, ast.Compare):
        first = _compile_column_node(node.left)
        links = [
            (_COMPARE_OPS[type(op)], _compile_column_node(comparator))
            for op, comparator in zip(node.ops, node.comparators)
        ]

        def compare(env: Mapping[str, Any]) -> Any:
            left_value = first(env)
            result = None
            for op, comparator in links:
                right_value = comparator(env)
                link = op(left_value, right_value)
                result = link if result is None else np.logical_and(result, link)
                left_value = right_value
            return result

        return compare
    if isinstance(node, ast.Call):
        func = _COLUMN_FUNCTIONS[node.func.id]  # type: ignore[union-attr]
        args = [_compile_column_node(arg) for arg in node.args]
        return lambda env: func(*(arg(env) for arg in args))
    if isinstance(node, ast.IfExp):
        test = _compile_column_node(node.test)
        then = _compile_column_node(node.body)
        other = _compile_column_node(node.orelse)
        return lambda env: np.where(
            np.asarray(test(env), dtype=bool), then(env), other(env)
        )
    if isinstance(node, ast.Subscript):
        value = _compile_column_node(node.value)
        if isinstance(node.slice, ast.Slice):
            lower = _compile_column_node(node.slice.lower) if node.slice.lower else None
            upper = _compile_column_node(node.slice.upper) if node.slice.upper else None
            step = _compile_column_node(node.slice.step) if node.slice.step else None
            return lambda env: _getitem(
                value(env),
                slice(
                    lower(env) if lower else None,
                    upper(env) if upper else None,
                    step(env) if step else None,
                ),
            )
        index_node = node.slice.value if isinstance(node.slice, ast.Index) else node.slice
        index = _compile_column_node(index_node)
        return lambda env: _getitem(value(env), index(env))
    raise ConstraintError(  # pragma: no cover - _validate_expression guards this
        f"cannot compile node {type(node).__name__!r} for column evaluation"
    )


# ---------------------------------------------------------------------------
# domain reducers (constraint propagation)
# ---------------------------------------------------------------------------

#: Product-support enumeration cap: an atom whose unfixed discrete domains
#: multiply out beyond this many tuples is left unpruned (sound fallback)
#: rather than materialized.
_MAX_SUPPORT_PRODUCT = 262_144

#: Fixed-point iteration bound.  Reducers are contracting, so each round
#: either shrinks some domain or terminates; the bound only guards against
#: pathological ping-ponging from float round-off in interval endpoints.
_MAX_PROPAGATION_ROUNDS = 64


class Domain:
    """A candidate domain for one parameter during propagation.

    Two shapes:

    * ``discrete`` — an explicit, order-preserving tuple of admissible values
      (integers, ordinals, categoricals, small integer ranges);
    * ``interval`` — closed endpoints ``[low, high]`` for reals and integer
      ranges too large to enumerate.

    Reducers only ever *shrink* domains (subset of values, sub-interval), so
    propagation is monotone and its fixed point is order-independent.
    """

    __slots__ = ("kind", "values", "low", "high")

    def __init__(self, kind: str, values: tuple | None, low: float, high: float):
        self.kind = kind
        self.values = values
        self.low = low
        self.high = high

    @classmethod
    def discrete(cls, values: Iterable[Any]) -> "Domain":
        return cls("discrete", tuple(values), math.nan, math.nan)

    @classmethod
    def interval(cls, low: float, high: float) -> "Domain":
        return cls("interval", None, float(low), float(high))

    @property
    def is_empty(self) -> bool:
        if self.kind == "discrete":
            return not self.values
        return not self.low <= self.high

    @property
    def size(self) -> float:
        """Number of values (discrete) or interval width (interval)."""
        if self.kind == "discrete":
            return float(len(self.values))
        return max(0.0, self.high - self.low)

    def empty_like(self) -> "Domain":
        if self.kind == "discrete":
            return Domain.discrete(())
        return Domain.interval(math.inf, -math.inf)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Domain):
            return NotImplemented
        if self.kind != other.kind:
            return False
        if self.kind == "discrete":
            return self.values == other.values
        return (self.low, self.high) == (other.low, other.high)

    def __hash__(self) -> int:
        if self.kind == "discrete":
            return hash(("discrete", self.values))
        return hash(("interval", self.low, self.high))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == "discrete":
            return f"Domain.discrete({self.values!r})"
        return f"Domain.interval({self.low!r}, {self.high!r})"


class DomainReducer:
    """Per-constraint domain pruner.

    Calling the reducer with ``(domains, fixed)`` — ``domains`` mapping each
    unfixed parameter to its current :class:`Domain` and ``fixed`` holding the
    concrete prefix assignment — returns a dict of *changed* domains for a
    subset of the constraint's variables.  Guarantee (pinned by tests): a
    returned domain never drops a value that participates in some assignment
    satisfying the constraint, i.e. pruning is sound with respect to the
    scalar :meth:`Constraint.evaluate` oracle.
    """

    __slots__ = ("_apply", "variables", "name")

    def __init__(
        self,
        apply: Callable[[Mapping[str, "Domain"], Mapping[str, Any]], dict[str, "Domain"]],
        variables: frozenset[str],
        name: str,
    ) -> None:
        self._apply = apply
        self.variables = variables
        self.name = name

    def __call__(
        self, domains: Mapping[str, "Domain"], fixed: Mapping[str, Any]
    ) -> dict[str, "Domain"]:
        return self._apply(domains, fixed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DomainReducer({self.name!r})"


class _InfeasibleChanges(dict):
    """Sentinel: the constraint is violated by ``fixed`` alone.

    Distinguishes "nothing to prune" (plain ``{}``) from "no completion can
    ever satisfy this constraint" when none of the constraint's variables
    carry a domain to empty (all fixed).  Always the ``_INFEASIBLE``
    singleton; never mutated.
    """


_INFEASIBLE = _InfeasibleChanges()


def _node_variables(node: ast.AST) -> frozenset[str]:
    return frozenset(
        n.id
        for n in ast.walk(node)
        if isinstance(n, ast.Name) and n.id not in _ALLOWED_FUNCTIONS
    )


def _column_from_values(values: Sequence[Any]) -> np.ndarray:
    """Value tuple -> numpy column, boxing tuples so they stay elementwise."""
    if any(isinstance(v, (tuple, list)) for v in values):
        column = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            column[i] = tuple(v) if isinstance(v, (tuple, list)) else v
        return column
    return np.asarray(values)


def _product_gac(
    mask_fn: Callable[[Mapping[str, Any]], Any],
    names: Sequence[str],
    domains: Mapping[str, Domain],
    fixed: Mapping[str, Any],
) -> dict[str, Domain]:
    """Generalized arc consistency over the Cartesian product of ``names``.

    Enumerates every tuple of candidate values, evaluates the atom's compiled
    column mask once over the whole product, and keeps — per variable — the
    values appearing in at least one satisfying tuple.
    """
    arrays = [_column_from_values(domains[name].values) for name in names]
    sizes = [len(a) for a in arrays]
    index_grid = np.indices(sizes).reshape(len(names), -1)
    env: dict[str, Any] = dict(fixed)
    for name, array, rows in zip(names, arrays, index_grid):
        env[name] = array[rows]
    with np.errstate(all="ignore"):
        try:
            mask = np.asarray(mask_fn(env), dtype=bool)
        except (TypeError, ValueError):
            return {}
    changes: dict[str, Domain] = {}
    for name, size, rows in zip(names, sizes, index_grid):
        keep = np.zeros(size, dtype=bool)
        keep[rows[mask]] = True
        if not keep.all():
            changes[name] = Domain.discrete(
                value for value, kept in zip(domains[name].values, keep) if kept
            )
    return changes


#: Compare-op flips for normalizing ``expr OP name`` into ``name OP expr``.
_FLIPPED_COMPARES: dict[type, type] = {
    ast.Lt: ast.Gt,
    ast.LtE: ast.GtE,
    ast.Gt: ast.Lt,
    ast.GtE: ast.LtE,
    ast.Eq: ast.Eq,
    ast.NotEq: ast.NotEq,
}


def _interval_reduce(
    op_type: type,
    domain: Domain,
    v_min: float,
    v_max: float,
) -> Domain | None:
    """Tighten an interval domain against the value range of the other side.

    ``op_type`` reads as ``x OP value`` with ``x`` ranging over ``domain`` and
    the value side spanning ``[v_min, v_max]``.  Endpoints stay closed — a
    sound over-approximation for strict compares.
    """
    low, high = domain.low, domain.high
    if op_type in (ast.Lt, ast.LtE):
        high = min(high, v_max)
    elif op_type in (ast.Gt, ast.GtE):
        low = max(low, v_min)
    elif op_type is ast.Eq:
        low, high = max(low, v_min), min(high, v_max)
    else:
        return None
    if (low, high) == (domain.low, domain.high):
        return None
    return Domain.interval(low, high)


def _compile_atom_reducer(node: ast.Compare) -> DomainReducer | None:
    """Reducer for a single binary comparison atom."""
    left, op_node, right = node.left, node.ops[0], node.comparators[0]
    op_type = type(op_node)
    atom_vars = _node_variables(node)
    if not atom_vars:
        return None
    try:
        mask_fn = _compile_column_node(node)
        left_fn = _compile_column_node(left)
        right_fn = _compile_column_node(right)
    except (ConstraintError, KeyError):  # pragma: no cover - validated earlier
        return None
    left_vars = _node_variables(left)
    right_vars = _node_variables(right)
    left_name = left.id if isinstance(left, ast.Name) and left.id in atom_vars else None
    right_name = (
        right.id if isinstance(right, ast.Name) and right.id in atom_vars else None
    )
    ordered_vars = sorted(atom_vars)

    def apply(
        domains: Mapping[str, Domain], fixed: Mapping[str, Any]
    ) -> dict[str, Domain]:
        if any(v not in domains and v not in fixed for v in ordered_vars):
            return {}
        unfixed = [v for v in ordered_vars if v in domains]
        if not unfixed:
            # fully fixed: entailment check against the prefix itself
            with np.errstate(all="ignore"):
                try:
                    satisfied = bool(np.asarray(mask_fn(dict(fixed))).all())
                except (TypeError, ValueError, KeyError):
                    return {}
            return {} if satisfied else _INFEASIBLE
        if any(domains[v].is_empty for v in unfixed):
            # GAC with an empty participant: no tuple of the atom has support,
            # so every unfixed variable of the atom empties.  Propagating the
            # emptiness through the constraint (instead of skipping it) keeps
            # the reducer monotone, which is what makes the fixed point
            # order-independent.
            return {v: domains[v].empty_like() for v in unfixed}
        discrete = [v for v in unfixed if domains[v].kind == "discrete"]
        intervals = [v for v in unfixed if domains[v].kind == "interval"]
        if not intervals:
            total = 1
            for v in discrete:
                total *= len(domains[v].values)
            if total > _MAX_SUPPORT_PRODUCT:
                return {}
            return _product_gac(mask_fn, discrete, domains, fixed)
        if len(intervals) == 2 and left_name in intervals and right_name in intervals:
            # bare interval vs bare interval, e.g. ``x <= y``
            x, y = domains[left_name], domains[right_name]
            changes: dict[str, Domain] = {}
            forward = _interval_reduce(op_type, x, y.low, y.high)
            flipped = _FLIPPED_COMPARES.get(op_type)
            backward = (
                _interval_reduce(flipped, y, x.low, x.high) if flipped else None
            )
            if forward is not None:
                changes[left_name] = forward
            if backward is not None:
                changes[right_name] = backward
            return changes
        if len(intervals) != 1:
            return {}
        iv = intervals[0]
        if left_name == iv and iv not in right_vars:
            op, value_fn, value_vars = op_type, right_fn, right_vars
        elif right_name == iv and iv not in left_vars:
            op = _FLIPPED_COMPARES.get(op_type)
            if op is None:
                return {}
            value_fn, value_vars = left_fn, left_vars
        else:
            return {}
        if op not in (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq):
            return {}  # NotEq and membership atoms never prune intervals
        others = [v for v in discrete if v in value_vars]
        total = 1
        for v in others:
            total *= len(domains[v].values)
        if total > _MAX_SUPPORT_PRODUCT:
            return {}
        env: dict[str, Any] = dict(fixed)
        if others:
            arrays = [_column_from_values(domains[v].values) for v in others]
            sizes = [len(a) for a in arrays]
            index_grid = np.indices(sizes).reshape(len(others), -1)
            for name, array, rows in zip(others, arrays, index_grid):
                env[name] = array[rows]
        else:
            sizes, index_grid, total = [], np.empty((0, 1), dtype=int), 1
        with np.errstate(all="ignore"):
            try:
                values = np.asarray(value_fn(env), dtype=float)
            except (TypeError, ValueError):
                return {}
        values = np.broadcast_to(values, (total,))
        dom = domains[iv]
        # which value-side tuples still have support from some x in [low, high]
        if op is ast.Lt:
            keep = values > dom.low
        elif op is ast.LtE:
            keep = values >= dom.low
        elif op is ast.Gt:
            keep = values < dom.high
        elif op is ast.GtE:
            keep = values <= dom.high
        else:  # Eq
            keep = (values >= dom.low) & (values <= dom.high)
        changes = {}
        if not keep.any():
            for v in others:
                changes[v] = domains[v].empty_like()
            changes[iv] = dom.empty_like()
            return changes
        for name, size, rows in zip(others, sizes, index_grid):
            kept = np.zeros(size, dtype=bool)
            kept[rows[keep]] = True
            if not kept.all():
                changes[name] = Domain.discrete(
                    value for value, k in zip(domains[name].values, kept) if k
                )
        supported = values[keep]
        tightened = _interval_reduce(
            op, dom, float(supported.min()), float(supported.max())
        )
        if tightened is not None:
            changes[iv] = tightened
        return changes

    return DomainReducer(apply, atom_vars, ast.dump(node))


def _sequential_reducer(
    parts: Sequence[DomainReducer], variables: frozenset[str], name: str
) -> DomainReducer:
    """Conjunction: apply each part in turn, feeding pruned domains forward."""

    def apply(
        domains: Mapping[str, Domain], fixed: Mapping[str, Any]
    ) -> dict[str, Domain]:
        local = dict(domains)
        merged: dict[str, Domain] = {}
        for part in parts:
            changes = part(local, fixed)
            if changes is _INFEASIBLE:
                return _INFEASIBLE
            for key, dom in changes.items():
                local[key] = dom
                merged[key] = dom
        return merged

    return DomainReducer(apply, variables, name)


def _union_reducer(
    parts: Sequence[tuple[DomainReducer, frozenset[str]]],
    variables: frozenset[str],
    name: str,
) -> DomainReducer:
    """Disjunction: a value survives if *some* satisfiable disjunct keeps it."""

    def apply(
        domains: Mapping[str, Domain], fixed: Mapping[str, Any]
    ) -> dict[str, Domain]:
        relevant = [v for v in sorted(variables) if v in domains]
        if not relevant:
            return {}
        contributions: list[dict[str, Domain]] = []
        for part, _part_vars in parts:
            pruned = part(domains, fixed)
            if pruned is _INFEASIBLE or any(
                dom.is_empty for dom in pruned.values()
            ):
                continue  # this disjunct admits no support at all
            contributions.append(
                {v: pruned.get(v, domains[v]) for v in relevant}
            )
        if not contributions:
            return {v: domains[v].empty_like() for v in relevant}
        changes: dict[str, Domain] = {}
        for v in relevant:
            base = domains[v]
            branches = [c[v] for c in contributions]
            if base.kind == "discrete":
                admissible = set().union(
                    *(set(b.values) for b in branches)
                )
                merged = Domain.discrete(
                    value for value in base.values if value in admissible
                )
            else:
                merged = Domain.interval(
                    min(b.low for b in branches), max(b.high for b in branches)
                )
            if merged != base:
                changes[v] = merged
        return changes

    return DomainReducer(apply, variables, name)


def _compile_reducer_node(node: ast.AST) -> DomainReducer | None:
    """Compile a boolean-level AST node into a domain reducer.

    Handles the shapes the three suites use — ``and`` / ``or`` chains over
    (possibly chained) comparisons and membership tests.  Anything else
    (negations, bare calls, conditional expressions at the boolean level)
    compiles to ``None``: no pruning, rejection handles it — soundness over
    completeness.
    """
    if isinstance(node, ast.BoolOp):
        parts = [_compile_reducer_node(value) for value in node.values]
        if isinstance(node.op, ast.And):
            compiled = [p for p in parts if p is not None]
            if not compiled:
                return None
            variables = frozenset().union(*(p.variables for p in compiled))
            return _sequential_reducer(compiled, variables, "and")
        # Or: every disjunct must prune soundly, else the union is meaningless
        if any(p is None for p in parts):
            return None
        variables = frozenset().union(*(p.variables for p in parts))
        return _union_reducer([(p, p.variables) for p in parts], variables, "or")
    if isinstance(node, ast.Compare):
        if len(node.ops) == 1:
            return _compile_atom_reducer(node)
        # chained compare == conjunction of adjacent binary atoms
        atoms: list[DomainReducer] = []
        left = node.left
        for op, comparator in zip(node.ops, node.comparators):
            atom = _compile_atom_reducer(
                ast.Compare(left=left, ops=[op], comparators=[comparator])
            )
            if atom is not None:
                atoms.append(atom)
            left = comparator
        if not atoms:
            return None
        variables = frozenset().union(*(a.variables for a in atoms))
        return _sequential_reducer(atoms, variables, "chain")
    return None


def compile_domain_reducer(constraint: "Constraint") -> DomainReducer | None:
    """Compile ``constraint`` into a :class:`DomainReducer`, or ``None``.

    ``None`` means the constraint's shape cannot prune domains (callable
    constraints, negations, …); callers simply skip it and let rejection
    sampling plus the scalar oracle enforce it.  The compiled reducer is
    cached on the constraint, mirroring :meth:`Constraint.compile_columns`.
    """
    if isinstance(constraint._domain_reducer, _Unset):
        if constraint._callable is not None:
            constraint._domain_reducer = None
        else:
            body = ast.parse(constraint.expression, mode="eval").body
            reducer = _compile_reducer_node(body)
            if reducer is not None:
                reducer.name = constraint.name
            constraint._domain_reducer = reducer
    return constraint._domain_reducer


def propagate_domains(
    reducers: Sequence[DomainReducer],
    domains: Mapping[str, Domain],
    fixed: Mapping[str, Any] | None = None,
    max_rounds: int = _MAX_PROPAGATION_ROUNDS,
) -> tuple[dict[str, Domain], int]:
    """Iterate ``reducers`` over ``domains`` to the arc-consistency fixed point.

    Returns ``(pruned domains, rounds used)``.  Because every reducer is
    contracting and sound, the fixed point is unique regardless of reducer
    order (property-tested); an empty domain in the result means the prefix
    in ``fixed`` admits no feasible completion.
    """
    fixed = fixed or {}
    current = dict(domains)
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        changed = False
        for reducer in reducers:
            result = reducer(current, fixed)
            if result is _INFEASIBLE:
                # the prefix violates this constraint outright: no completion
                # anywhere is feasible
                return {n: d.empty_like() for n, d in current.items()}, rounds
            for name, dom in result.items():
                if dom != current[name]:
                    current[name] = dom
                    changed = True
        if not changed:
            break
    return current, rounds


def group_codependent(
    parameter_names: Iterable[str], constraints: Iterable[Constraint]
) -> list[list[str]]:
    """Partition parameters into groups connected by shared constraints.

    Parameters that never co-occur in a constraint end up in singleton
    groups; each group with more than one member (or any constraint touching
    it) becomes a tree of the Chain-of-Trees.
    """
    names = list(parameter_names)
    index = {n: i for i, n in enumerate(names)}
    parent = list(range(len(names)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    for constraint in constraints:
        involved = [v for v in constraint.variables if v in index]
        for a, b in zip(involved, involved[1:]):
            union(index[a], index[b])

    groups: dict[int, list[str]] = {}
    for name in names:
        groups.setdefault(find(index[name]), []).append(name)
    # keep the original parameter ordering inside and across groups
    ordered = sorted(groups.values(), key=lambda grp: index[grp[0]])
    for grp in ordered:
        grp.sort(key=lambda n: index[n])
    return ordered
