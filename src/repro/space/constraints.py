"""Known-constraint predicates over configurations.

A *known constraint* (Sec. 4.2) is a predicate over a configuration that is
known before the optimization starts, e.g. "the tile size must divide the
loop bound".  BaCO only ever proposes configurations satisfying all known
constraints, so its surrogate model trains exclusively on feasible points.

Constraints can be expressed either as

* a Python expression string over the parameter names, evaluated in a
  restricted namespace (``Constraint("p1 >= p2")``), or
* an arbitrary callable taking a configuration dictionary
  (``Constraint.from_callable(lambda cfg: cfg["p1"] >= cfg["p2"], ["p1", "p2"])``).

Each constraint records the set of parameter names it involves; the
Chain-of-Trees builder uses those sets to group co-dependent parameters.
"""

from __future__ import annotations

import ast
import math
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = ["Constraint", "ConstraintError", "extract_variables"]


class ConstraintError(ValueError):
    """Raised when a constraint expression is malformed."""


_ALLOWED_FUNCTIONS: dict[str, Any] = {
    "abs": abs,
    "min": min,
    "max": max,
    "len": len,
    "log": math.log,
    "log2": math.log2,
    "sqrt": math.sqrt,
    "floor": math.floor,
    "ceil": math.ceil,
    "pow": pow,
}

_ALLOWED_NODE_TYPES = (
    ast.Expression,
    ast.BoolOp, ast.And, ast.Or,
    ast.UnaryOp, ast.Not, ast.USub, ast.UAdd,
    ast.BinOp, ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
    ast.Compare, ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.In, ast.NotIn,
    ast.Call, ast.Name, ast.Load, ast.Constant,
    ast.Tuple, ast.List, ast.Subscript, ast.Index, ast.Slice,
    ast.IfExp,
)


def _validate_expression(tree: ast.Expression) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODE_TYPES):
            raise ConstraintError(
                f"disallowed syntax {type(node).__name__!r} in constraint expression"
            )
        if isinstance(node, ast.Call):
            if not isinstance(node.func, ast.Name) or node.func.id not in _ALLOWED_FUNCTIONS:
                raise ConstraintError("only whitelisted functions may be called in constraints")


def extract_variables(expression: str) -> frozenset[str]:
    """Return the parameter names referenced by a constraint expression."""
    tree = ast.parse(expression, mode="eval")
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id not in _ALLOWED_FUNCTIONS:
            names.add(node.id)
    return frozenset(names)


class Constraint:
    """A boolean predicate over a configuration dictionary."""

    def __init__(self, expression: str, name: str | None = None) -> None:
        try:
            tree = ast.parse(expression, mode="eval")
        except SyntaxError as exc:
            raise ConstraintError(f"invalid constraint expression {expression!r}: {exc}") from exc
        _validate_expression(tree)
        self.expression = expression
        self.name = name or expression
        self.variables = extract_variables(expression)
        if not self.variables:
            raise ConstraintError(f"constraint {expression!r} references no parameters")
        self._code = compile(tree, filename="<constraint>", mode="eval")
        self._callable: Callable[[Mapping[str, Any]], bool] | None = None

    @classmethod
    def from_callable(
        cls,
        func: Callable[[Mapping[str, Any]], bool],
        variables: Sequence[str],
        name: str | None = None,
    ) -> "Constraint":
        """Wrap an arbitrary predicate; ``variables`` lists the parameters it reads."""
        if not variables:
            raise ConstraintError("callable constraints must declare their variables")
        obj = cls.__new__(cls)
        obj.expression = name or getattr(func, "__name__", "<callable>")
        obj.name = name or obj.expression
        obj.variables = frozenset(variables)
        obj._code = None
        obj._callable = func
        return obj

    def evaluate(self, configuration: Mapping[str, Any]) -> bool:
        """Evaluate the constraint; missing variables raise ``KeyError``."""
        if self._callable is not None:
            return bool(self._callable(configuration))
        namespace = dict(_ALLOWED_FUNCTIONS)
        for var in self.variables:
            namespace[var] = configuration[var]
        return bool(eval(self._code, {"__builtins__": {}}, namespace))  # noqa: S307

    def is_applicable(self, configuration: Mapping[str, Any]) -> bool:
        """Whether all referenced parameters are present in ``configuration``."""
        return all(var in configuration for var in self.variables)

    def __call__(self, configuration: Mapping[str, Any]) -> bool:
        return self.evaluate(configuration)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constraint({self.expression!r})"


def group_codependent(
    parameter_names: Iterable[str], constraints: Iterable[Constraint]
) -> list[list[str]]:
    """Partition parameters into groups connected by shared constraints.

    Parameters that never co-occur in a constraint end up in singleton
    groups; each group with more than one member (or any constraint touching
    it) becomes a tree of the Chain-of-Trees.
    """
    names = list(parameter_names)
    index = {n: i for i, n in enumerate(names)}
    parent = list(range(len(names)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    for constraint in constraints:
        involved = [v for v in constraint.variables if v in index]
        for a, b in zip(involved, involved[1:]):
            union(index[a], index[b])

    groups: dict[int, list[str]] = {}
    for name in names:
        groups.setdefault(find(index[name]), []).append(name)
    # keep the original parameter ordering inside and across groups
    ordered = sorted(groups.values(), key=lambda grp: index[grp[0]])
    for grp in ordered:
        grp.sort(key=lambda n: index[n])
    return ordered
