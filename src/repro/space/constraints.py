"""Known-constraint predicates over configurations.

A *known constraint* (Sec. 4.2) is a predicate over a configuration that is
known before the optimization starts, e.g. "the tile size must divide the
loop bound".  BaCO only ever proposes configurations satisfying all known
constraints, so its surrogate model trains exclusively on feasible points.

Constraints can be expressed either as

* a Python expression string over the parameter names, evaluated in a
  restricted namespace (``Constraint("p1 >= p2")``), or
* an arbitrary callable taking a configuration dictionary
  (``Constraint.from_callable(lambda cfg: cfg["p1"] >= cfg["p2"], ["p1", "p2"])``).

Each constraint records the set of parameter names it involves; the
Chain-of-Trees builder uses those sets to group co-dependent parameters.
"""

from __future__ import annotations

import ast
import math
import operator
from functools import reduce
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "Constraint",
    "ConstraintError",
    "extract_variables",
    "compile_column_evaluator",
]


class ConstraintError(ValueError):
    """Raised when a constraint expression is malformed."""


_ALLOWED_FUNCTIONS: dict[str, Any] = {
    "abs": abs,
    "min": min,
    "max": max,
    "len": len,
    "log": math.log,
    "log2": math.log2,
    "sqrt": math.sqrt,
    "floor": math.floor,
    "ceil": math.ceil,
    "pow": pow,
}

#: Shared globals for the scalar ``eval`` path, built once at import time:
#: rebuilding the ``{"__builtins__": {}}`` + functions namespace per
#: ``evaluate`` call used to dominate the cost of cheap constraints.
#: ``eval`` requires a real dict for globals; nothing may mutate this one.
_SCALAR_GLOBALS: dict[str, Any] = {"__builtins__": {}, **_ALLOWED_FUNCTIONS}

_ALLOWED_NODE_TYPES = (
    ast.Expression,
    ast.BoolOp, ast.And, ast.Or,
    ast.UnaryOp, ast.Not, ast.USub, ast.UAdd,
    ast.BinOp, ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
    ast.Compare, ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.In, ast.NotIn,
    ast.Call, ast.Name, ast.Load, ast.Constant,
    ast.Tuple, ast.List, ast.Subscript, ast.Index, ast.Slice,
    ast.IfExp,
)


def _validate_expression(tree: ast.Expression) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODE_TYPES):
            raise ConstraintError(
                f"disallowed syntax {type(node).__name__!r} in constraint expression"
            )
        if isinstance(node, ast.Call):
            if not isinstance(node.func, ast.Name) or node.func.id not in _ALLOWED_FUNCTIONS:
                raise ConstraintError("only whitelisted functions may be called in constraints")


def extract_variables(expression: str) -> frozenset[str]:
    """Return the parameter names referenced by a constraint expression."""
    tree = ast.parse(expression, mode="eval")
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id not in _ALLOWED_FUNCTIONS:
            names.add(node.id)
    return frozenset(names)


class Constraint:
    """A boolean predicate over a configuration dictionary."""

    def __init__(self, expression: str, name: str | None = None) -> None:
        try:
            tree = ast.parse(expression, mode="eval")
        except SyntaxError as exc:
            raise ConstraintError(f"invalid constraint expression {expression!r}: {exc}") from exc
        _validate_expression(tree)
        self.expression = expression
        self.name = name or expression
        self.variables = extract_variables(expression)
        if not self.variables:
            raise ConstraintError(f"constraint {expression!r} references no parameters")
        self._code = compile(tree, filename="<constraint>", mode="eval")
        self._callable: Callable[[Mapping[str, Any]], bool] | None = None
        self._column_evaluator: ColumnEvaluator | None = None

    @classmethod
    def from_callable(
        cls,
        func: Callable[[Mapping[str, Any]], bool],
        variables: Sequence[str],
        name: str | None = None,
    ) -> "Constraint":
        """Wrap an arbitrary predicate; ``variables`` lists the parameters it reads."""
        if not variables:
            raise ConstraintError("callable constraints must declare their variables")
        obj = cls.__new__(cls)
        obj.expression = name or getattr(func, "__name__", "<callable>")
        obj.name = name or obj.expression
        obj.variables = frozenset(variables)
        obj._code = None
        obj._callable = func
        obj._column_evaluator = None
        return obj

    def evaluate(self, configuration: Mapping[str, Any]) -> bool:
        """Evaluate the constraint; missing variables raise ``KeyError``.

        This scalar path is the *reference oracle* for the compiled column
        evaluator (:meth:`compile_columns`): the two must agree on every full
        configuration, and tests pin that agreement.
        """
        if self._callable is not None:
            return bool(self._callable(configuration))
        namespace = {var: configuration[var] for var in self.variables}
        return bool(eval(self._code, _SCALAR_GLOBALS, namespace))  # noqa: S307

    def is_applicable(self, configuration: Mapping[str, Any]) -> bool:
        """Whether all referenced parameters are present in ``configuration``."""
        return all(var in configuration for var in self.variables)

    def compile_columns(self) -> "ColumnEvaluator | None":
        """Compile the expression AST into a numpy evaluator over columns.

        The evaluator maps ``{parameter name: value column}`` (one array entry
        per configuration, all columns equally long) to a boolean feasibility
        mask, replacing one Python ``eval`` per configuration with a handful
        of array operations per batch.  Compilation happens once and is
        cached; callable-based constraints cannot be compiled and return
        ``None`` (callers fall back to the scalar oracle).
        """
        if self._callable is not None:
            return None
        if self._column_evaluator is None:
            body = _compile_column_node(ast.parse(self.expression, mode="eval").body)

            def evaluate_columns(columns: Mapping[str, Any]) -> np.ndarray:
                # numpy warnings (0/0 inside a masked-out branch of an IfExp,
                # overflow in a discarded comparison operand) are expected:
                # the scalar oracle would short-circuit past them
                with np.errstate(all="ignore"):
                    out = body(columns)
                return np.asarray(out, dtype=bool)

            self._column_evaluator = evaluate_columns
        return self._column_evaluator

    def __call__(self, configuration: Mapping[str, Any]) -> bool:
        return self.evaluate(configuration)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constraint({self.expression!r})"


# ---------------------------------------------------------------------------
# compiled column evaluation
# ---------------------------------------------------------------------------

#: Maps ``{parameter name: column}`` to a boolean mask over the batch.
ColumnEvaluator = Callable[[Mapping[str, Any]], np.ndarray]


def compile_column_evaluator(constraint: "Constraint") -> ColumnEvaluator:
    """Batched evaluator for ``constraint``, with a scalar-oracle fallback.

    Expression constraints compile to pure array code; callable constraints
    (which cannot be introspected) are evaluated per row against dictionaries
    assembled from the columns — correct, but only as fast as the callable.
    """
    compiled = constraint.compile_columns()
    if compiled is not None:
        return compiled
    variables = sorted(constraint.variables)

    def evaluate_scalar(columns: Mapping[str, Any]) -> np.ndarray:
        pulled = [(name, columns[name]) for name in variables]
        n = len(pulled[0][1])
        return np.fromiter(
            (
                constraint.evaluate({name: column[i] for name, column in pulled})
                for i in range(n)
            ),
            dtype=bool,
            count=n,
        )

    return evaluate_scalar


def _box(value: Any) -> Any:
    """Wrap tuple/list operands so comparisons stay elementwise.

    Permutation columns are object arrays whose entries are tuples; comparing
    them against a literal ``(0, 1, 2)`` must compare *each entry* to the
    tuple instead of broadcasting the literal's elements.
    """
    if isinstance(value, (tuple, list)):
        boxed = np.empty((), dtype=object)
        boxed[()] = tuple(value)
        return boxed
    return value


def _eq(a: Any, b: Any) -> Any:
    return np.asarray(_box(a) == _box(b))


def _ne(a: Any, b: Any) -> Any:
    return np.asarray(_box(a) != _box(b))


def _contains(item: Any, collection: Any) -> Any:
    """Elementwise ``item in collection`` (equality-based, like the oracle)."""
    if isinstance(collection, np.ndarray) and collection.dtype == object:
        return np.frompyfunc(lambda x, c: x in c, 2, 1)(_box(item), collection)
    members = list(collection) if isinstance(collection, (tuple, list)) else [collection]
    if not members:
        return np.zeros(np.shape(item) or (), dtype=bool)
    return reduce(np.logical_or, [_eq(item, member) for member in members])


def _elementwise_min(*args: Any) -> Any:
    if len(args) == 1:
        (arg,) = args
        if isinstance(arg, np.ndarray) and arg.dtype == object:
            return np.frompyfunc(min, 1, 1)(arg)
        if isinstance(arg, (tuple, list)):
            return reduce(np.minimum, arg)
        return min(arg)
    return reduce(np.minimum, args)


def _elementwise_max(*args: Any) -> Any:
    if len(args) == 1:
        (arg,) = args
        if isinstance(arg, np.ndarray) and arg.dtype == object:
            return np.frompyfunc(max, 1, 1)(arg)
        if isinstance(arg, (tuple, list)):
            return reduce(np.maximum, arg)
        return max(arg)
    return reduce(np.maximum, args)


def _elementwise_len(value: Any) -> Any:
    if isinstance(value, np.ndarray) and value.dtype == object:
        return np.frompyfunc(len, 1, 1)(value).astype(float)
    return len(value)


def _getitem(value: Any, index: Any) -> Any:
    if isinstance(value, np.ndarray) and value.dtype == object:
        return np.frompyfunc(operator.getitem, 2, 1)(value, index)
    return value[index]


#: numpy counterparts of the scalar whitelist (identical math, batched)
_COLUMN_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "abs": np.absolute,
    "min": _elementwise_min,
    "max": _elementwise_max,
    "len": _elementwise_len,
    "log": np.log,
    "log2": np.log2,
    "sqrt": np.sqrt,
    "floor": np.floor,
    "ceil": np.ceil,
    "pow": np.power,
}

_BIN_OPS: dict[type, Callable[[Any, Any], Any]] = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.FloorDiv: operator.floordiv,
    ast.Mod: operator.mod,
    ast.Pow: operator.pow,
}

_COMPARE_OPS: dict[type, Callable[[Any, Any], Any]] = {
    ast.Eq: _eq,
    ast.NotEq: _ne,
    ast.Lt: operator.lt,
    ast.LtE: operator.le,
    ast.Gt: operator.gt,
    ast.GtE: operator.ge,
    ast.In: _contains,
    ast.NotIn: lambda a, b: np.logical_not(_contains(a, b)),
}


def _compile_column_node(node: ast.AST) -> Callable[[Mapping[str, Any]], Any]:
    """Recursively close over an (already validated) expression AST.

    Compilation happens once per constraint; the returned closures perform no
    AST inspection at call time.  Semantics mirror the scalar oracle with two
    deliberate exceptions: ``and`` / ``or`` evaluate both operands (no
    short-circuiting — guarded by ``errstate`` in the caller), and chained
    comparisons evaluate every link.
    """
    if isinstance(node, ast.Constant):
        value = node.value
        return lambda env: value
    if isinstance(node, ast.Name):
        name = node.id
        return lambda env: env[name]
    if isinstance(node, (ast.Tuple, ast.List)):
        elements = [_compile_column_node(el) for el in node.elts]
        return lambda env: tuple(el(env) for el in elements)
    if isinstance(node, ast.BoolOp):
        parts = [_compile_column_node(value) for value in node.values]
        combine = np.logical_and if isinstance(node.op, ast.And) else np.logical_or
        return lambda env: reduce(combine, (part(env) for part in parts))
    if isinstance(node, ast.UnaryOp):
        operand = _compile_column_node(node.operand)
        if isinstance(node.op, ast.Not):
            return lambda env: np.logical_not(operand(env))
        if isinstance(node.op, ast.USub):
            return lambda env: operator.neg(operand(env))
        return operand  # UAdd
    if isinstance(node, ast.BinOp):
        op = _BIN_OPS[type(node.op)]
        left = _compile_column_node(node.left)
        right = _compile_column_node(node.right)
        return lambda env: op(left(env), right(env))
    if isinstance(node, ast.Compare):
        first = _compile_column_node(node.left)
        links = [
            (_COMPARE_OPS[type(op)], _compile_column_node(comparator))
            for op, comparator in zip(node.ops, node.comparators)
        ]

        def compare(env: Mapping[str, Any]) -> Any:
            left_value = first(env)
            result = None
            for op, comparator in links:
                right_value = comparator(env)
                link = op(left_value, right_value)
                result = link if result is None else np.logical_and(result, link)
                left_value = right_value
            return result

        return compare
    if isinstance(node, ast.Call):
        func = _COLUMN_FUNCTIONS[node.func.id]  # type: ignore[union-attr]
        args = [_compile_column_node(arg) for arg in node.args]
        return lambda env: func(*(arg(env) for arg in args))
    if isinstance(node, ast.IfExp):
        test = _compile_column_node(node.test)
        then = _compile_column_node(node.body)
        other = _compile_column_node(node.orelse)
        return lambda env: np.where(
            np.asarray(test(env), dtype=bool), then(env), other(env)
        )
    if isinstance(node, ast.Subscript):
        value = _compile_column_node(node.value)
        if isinstance(node.slice, ast.Slice):
            lower = _compile_column_node(node.slice.lower) if node.slice.lower else None
            upper = _compile_column_node(node.slice.upper) if node.slice.upper else None
            step = _compile_column_node(node.slice.step) if node.slice.step else None
            return lambda env: _getitem(
                value(env),
                slice(
                    lower(env) if lower else None,
                    upper(env) if upper else None,
                    step(env) if step else None,
                ),
            )
        index_node = node.slice.value if isinstance(node.slice, ast.Index) else node.slice
        index = _compile_column_node(index_node)
        return lambda env: _getitem(value(env), index(env))
    raise ConstraintError(  # pragma: no cover - _validate_expression guards this
        f"cannot compile node {type(node).__name__!r} for column evaluation"
    )


def group_codependent(
    parameter_names: Iterable[str], constraints: Iterable[Constraint]
) -> list[list[str]]:
    """Partition parameters into groups connected by shared constraints.

    Parameters that never co-occur in a constraint end up in singleton
    groups; each group with more than one member (or any constraint touching
    it) becomes a tree of the Chain-of-Trees.
    """
    names = list(parameter_names)
    index = {n: i for i, n in enumerate(names)}
    parent = list(range(len(names)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    for constraint in constraints:
        involved = [v for v in constraint.variables if v in index]
        for a, b in zip(involved, involved[1:]):
            union(index[a], index[b])

    groups: dict[int, list[str]] = {}
    for name in names:
        groups.setdefault(find(index[name]), []).append(name)
    # keep the original parameter ordering inside and across groups
    ordered = sorted(groups.values(), key=lambda grp: index[grp[0]])
    for grp in ordered:
        grp.sort(key=lambda n: index[n])
    return ordered
