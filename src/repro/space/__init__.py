"""Search-space definition layer: parameters, constraints, and Chain-of-Trees."""

from .chain_of_trees import ChainOfTrees, CoTNode, FeasibleSetTooLarge, Tree
from .constraints import Constraint, ConstraintError, extract_variables
from .encoding import ColumnBlock, ConfigEncoder
from .parameters import (
    CategoricalParameter,
    IntegerParameter,
    NumericParameter,
    OrdinalParameter,
    Parameter,
    PermutationParameter,
    RealParameter,
    PERMUTATION_METRICS,
    hamming_permutation_distance,
    kendall_distance,
    spearman_distance,
)
from .space import Configuration, SearchSpace, freeze_configuration

__all__ = [
    "CategoricalParameter",
    "ChainOfTrees",
    "ColumnBlock",
    "ConfigEncoder",
    "Configuration",
    "Constraint",
    "ConstraintError",
    "CoTNode",
    "FeasibleSetTooLarge",
    "IntegerParameter",
    "NumericParameter",
    "OrdinalParameter",
    "Parameter",
    "PermutationParameter",
    "PERMUTATION_METRICS",
    "RealParameter",
    "SearchSpace",
    "Tree",
    "extract_variables",
    "freeze_configuration",
    "hamming_permutation_distance",
    "kendall_distance",
    "spearman_distance",
]
