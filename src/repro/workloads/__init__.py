"""Benchmark workloads: the 25 instances of the paper's evaluation (Table 3)."""

from .base import Benchmark, expert_search
from .hard_constraint_suite import (
    HARD_CONSTRAINT_DENSITIES,
    build_hard_constraint_benchmark,
    hard_constraint_benchmark_names,
)
from .hpvm_suite import build_hpvm_benchmark, hpvm_benchmark_names
from .registry import (
    FRAMEWORKS,
    benchmark_names,
    benchmarks_by_framework,
    get_benchmark,
    representative_benchmarks,
)
from .rise_suite import RISE_BENCHMARKS, build_rise_benchmark, rise_benchmark_names
from .taco_suite import TACO_BENCHMARK_TENSORS, build_taco_benchmark, taco_benchmark_names

__all__ = [
    "Benchmark",
    "FRAMEWORKS",
    "HARD_CONSTRAINT_DENSITIES",
    "RISE_BENCHMARKS",
    "TACO_BENCHMARK_TENSORS",
    "benchmark_names",
    "benchmarks_by_framework",
    "build_hard_constraint_benchmark",
    "build_hpvm_benchmark",
    "build_rise_benchmark",
    "build_taco_benchmark",
    "expert_search",
    "get_benchmark",
    "hard_constraint_benchmark_names",
    "hpvm_benchmark_names",
    "representative_benchmarks",
    "rise_benchmark_names",
    "taco_benchmark_names",
]
