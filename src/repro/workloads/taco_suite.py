"""TACO benchmark definitions (Table 3, top block; tensors from Table 4).

Five tensor-algebra expressions, each applied to three tensors, form the 15
TACO benchmark instances of the evaluation:

========  ================================  ===========================
kernel    expression                         tensors
========  ================================  ===========================
SpMV      a_i = Σ_k B_ik c_k                laminar_duct3D, cage12, filter3D
SpMM      A_ij = Σ_k B_ik C_kj              scircuit, cage12, laminar_duct3D
SDDMM     A_ij = Σ_k B_ij C_ik D_jk         email-Enron, ACTIVSg10K, Goodwin_040
TTV       A_ij = Σ_k B_ijk c_k              facebook, uber3, random1
MTTKRP    A_ij = Σ_klm B_iklm C_kj D_lj E_mj uber, nips, chicago
========  ================================  ===========================

Each expression exposes a scheduling template with tiling (split) factors,
OpenMP scheduling parameters, an unroll factor, and a loop-reordering
permutation, mirroring the parameter types of Table 3 (O/C/P).  SpMM, SDDMM,
TTV and MTTKRP carry known constraints between the split factors; TTV
additionally has the hidden code-generation constraint implemented by the
simulated TACO toolchain.
"""

from __future__ import annotations

from functools import lru_cache

from ..compilers.taco import TACO_EXPRESSIONS, TacoKernel
from ..compilers.tensors import get_tensor
from ..space.constraints import Constraint
from ..space.parameters import (
    CategoricalParameter,
    OrdinalParameter,
    PermutationParameter,
)
from ..space.space import SearchSpace
from .base import Benchmark, expert_search

__all__ = ["TACO_BENCHMARK_TENSORS", "taco_benchmark_names", "build_taco_benchmark"]

_POW2 = lambda lo, hi: [2**i for i in range(lo, hi + 1)]  # noqa: E731

#: which tensors each expression is evaluated on (matching the paper's figures)
TACO_BENCHMARK_TENSORS: dict[str, tuple[str, ...]] = {
    "spmv": ("laminar_duct3D", "cage12", "filter3D"),
    "spmm": ("scircuit", "cage12", "laminar_duct3D"),
    "sddmm": ("email-Enron", "ACTIVSg10K", "Goodwin_040"),
    "ttv": ("facebook", "uber3", "random1"),
    "mttkrp": ("uber", "nips", "chicago"),
}

#: full evaluation budgets from Table 3
_FULL_BUDGETS = {"spmv": 70, "spmm": 60, "sddmm": 60, "ttv": 70, "mttkrp": 60}

_SCHEDULES = ["static", "dynamic", "guided"]


def _spmv_space() -> SearchSpace:
    parameters = [
        OrdinalParameter("chunk_size", _POW2(1, 9), transform="log", default=32),
        OrdinalParameter("chunk_size2", _POW2(1, 6), transform="log", default=8),
        OrdinalParameter("chunk_size3", _POW2(1, 5), transform="log", default=4),
        OrdinalParameter("omp_chunk_size", _POW2(0, 8), transform="log", default=16),
        CategoricalParameter("omp_scheduling", _SCHEDULES, default="static"),
        OrdinalParameter("unroll_factor", _POW2(0, 4), transform="log", default=1),
        PermutationParameter("permutation", 5),
    ]
    return SearchSpace(parameters)


def _spmm_like_space() -> SearchSpace:
    """Shared template for SpMM and SDDMM (6 parameters, known constraints)."""
    parameters = [
        OrdinalParameter("chunk_size", _POW2(3, 9), transform="log", default=32),
        OrdinalParameter("chunk_size2", _POW2(1, 6), transform="log", default=8),
        OrdinalParameter("omp_chunk_size", _POW2(0, 8), transform="log", default=16),
        CategoricalParameter("omp_scheduling", _SCHEDULES, default="static"),
        OrdinalParameter("unroll_factor", _POW2(0, 4), transform="log", default=1),
        PermutationParameter("permutation", 5),
    ]
    constraints = [
        Constraint("chunk_size >= chunk_size2"),
        Constraint("unroll_factor <= chunk_size2"),
    ]
    return SearchSpace(parameters, constraints)


def _ttv_space() -> SearchSpace:
    parameters = [
        OrdinalParameter("chunk_size", _POW2(1, 9), transform="log", default=32),
        OrdinalParameter("chunk_size2", _POW2(1, 6), transform="log", default=8),
        OrdinalParameter("chunk_size3", _POW2(1, 5), transform="log", default=4),
        OrdinalParameter("omp_chunk_size", _POW2(0, 8), transform="log", default=16),
        CategoricalParameter("omp_scheduling", _SCHEDULES, default="static"),
        OrdinalParameter("unroll_factor", _POW2(0, 4), transform="log", default=1),
        PermutationParameter("permutation", 5),
    ]
    constraints = [
        Constraint("chunk_size >= chunk_size2"),
        Constraint("chunk_size2 >= chunk_size3"),
    ]
    return SearchSpace(parameters, constraints)


def _mttkrp_space() -> SearchSpace:
    parameters = [
        OrdinalParameter("chunk_size", _POW2(3, 9), transform="log", default=32),
        OrdinalParameter("chunk_size2", _POW2(1, 6), transform="log", default=8),
        OrdinalParameter("omp_chunk_size", _POW2(0, 8), transform="log", default=16),
        CategoricalParameter("omp_scheduling", _SCHEDULES, default="static"),
        OrdinalParameter("unroll_factor", _POW2(0, 4), transform="log", default=1),
        PermutationParameter("permutation", 4),
    ]
    constraints = [Constraint("chunk_size >= chunk_size2")]
    return SearchSpace(parameters, constraints)


_SPACE_BUILDERS = {
    "spmv": _spmv_space,
    "spmm": _spmm_like_space,
    "sddmm": _spmm_like_space,
    "ttv": _ttv_space,
    "mttkrp": _mttkrp_space,
}


def taco_benchmark_names() -> list[str]:
    """Names of all 15 TACO benchmark instances, e.g. ``taco_spmm_scircuit``."""
    names = []
    for expression, tensors in TACO_BENCHMARK_TENSORS.items():
        for tensor in tensors:
            names.append(f"taco_{expression}_{tensor}")
    return names


@lru_cache(maxsize=None)
def build_taco_benchmark(expression: str, tensor_name: str) -> Benchmark:
    """Construct one TACO benchmark instance (cached)."""
    if expression not in TACO_EXPRESSIONS:
        raise KeyError(f"unknown TACO expression {expression!r}")
    space = _SPACE_BUILDERS[expression]()
    tensor = get_tensor(tensor_name)
    kernel = TacoKernel(expression, tensor)
    kernel.has_hidden_constraints = TACO_EXPRESSIONS[expression].has_hidden_constraint

    n_loops = TACO_EXPRESSIONS[expression].n_loops
    default = space.default_configuration()
    default["permutation"] = tuple(range(n_loops))

    # The expert picks good split factors and scheduling but keeps the default
    # loop order (Sec. 5.3 RQ4: the original experts only considered the
    # default ordering) and does not micro-tune the OpenMP chunking / unrolling.
    expert = expert_search(
        space,
        kernel,
        default,
        pinned=("permutation", "unroll_factor", "omp_chunk_size"),
    )

    return Benchmark(
        name=f"taco_{expression}_{tensor_name}",
        framework="TACO",
        space=space,
        evaluator=kernel,
        full_budget=_FULL_BUDGETS[expression],
        default_configuration=default,
        expert_configuration=expert,
        description=f"TACO {expression.upper()} on the {tensor_name} tensor",
    )
