"""RISE & ELEVATE benchmark definitions (Table 3, middle block).

Seven benchmarks spanning dense linear algebra, stencils, and image
processing.  MM_CPU runs on the CPU cost model and exposes a loop-order
permutation; the remaining six run on the K80 GPU cost model with ordinal
(power-of-two) parameters, divisibility / work-group-size known constraints,
and — for MM_GPU, Scal_GPU and K-means_GPU — hidden shared-memory / register
constraints.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..compilers.rise import RiseCpuKernel, RiseGpuKernel
from ..space.constraints import Constraint
from ..space.parameters import OrdinalParameter, PermutationParameter
from ..space.space import SearchSpace
from .base import Benchmark, expert_search

__all__ = ["rise_benchmark_names", "build_rise_benchmark", "RISE_BENCHMARKS"]

_POW2 = lambda lo, hi: [2**i for i in range(lo, hi + 1)]  # noqa: E731

#: full evaluation budgets from Table 3
_FULL_BUDGETS = {
    "mm_cpu": 100,
    "mm_gpu": 120,
    "asum_gpu": 60,
    "scal_gpu": 60,
    "kmeans_gpu": 60,
    "harris_gpu": 100,
    "stencil_gpu": 60,
}

RISE_BENCHMARKS = tuple(sorted(_FULL_BUDGETS))


def _mm_cpu() -> tuple[SearchSpace, RiseCpuKernel, dict, tuple[str, ...]]:
    parameters = [
        OrdinalParameter("ts0", _POW2(4, 9), transform="log", default=32),
        OrdinalParameter("ts1", _POW2(4, 9), transform="log", default=32),
        OrdinalParameter("tk", _POW2(4, 9), transform="log", default=32),
        OrdinalParameter("vw", _POW2(0, 4), transform="log", default=4),
        PermutationParameter("permutation", 3),
    ]
    constraints = [
        Constraint("ts0 * tk <= 16384"),
        Constraint("ts1 * tk <= 16384"),
        Constraint("ts1 >= vw"),
    ]
    space = SearchSpace(parameters, constraints)
    kernel = RiseCpuKernel()
    kernel.has_hidden_constraints = True
    default = space.default_configuration()
    return space, kernel, default, ("permutation",)


def _mm_gpu() -> tuple[SearchSpace, RiseGpuKernel, dict, tuple[str, ...]]:
    parameters = [
        OrdinalParameter("ls0", _POW2(0, 8), transform="log", default=32),
        OrdinalParameter("ls1", _POW2(0, 8), transform="log", default=4),
        OrdinalParameter("ts0", _POW2(2, 7), transform="log", default=32),
        OrdinalParameter("ts1", _POW2(2, 7), transform="log", default=32),
        OrdinalParameter("tk", _POW2(0, 6), transform="log", default=8),
        OrdinalParameter("vw", _POW2(0, 3), transform="log", default=1),
        OrdinalParameter("sq0", _POW2(0, 5), transform="log", default=1),
        OrdinalParameter("sq1", _POW2(0, 5), transform="log", default=1),
        OrdinalParameter("split", _POW2(0, 6), transform="log", default=1),
        OrdinalParameter("swizzle", _POW2(0, 3), transform="log", default=1),
    ]
    constraints = [
        Constraint("ls0 * ls1 <= 1024"),
        Constraint("ts0 % ls0 == 0"),
        Constraint("ts1 % ls1 == 0"),
    ]
    space = SearchSpace(parameters, constraints)
    kernel = RiseGpuKernel("mm_gpu")
    kernel.has_hidden_constraints = True
    default = space.default_configuration()
    default.update({"ls0": 32, "ls1": 4, "ts0": 32, "ts1": 32})
    return space, kernel, default, ("vw", "swizzle")


def _asum_gpu() -> tuple[SearchSpace, RiseGpuKernel, dict, tuple[str, ...]]:
    parameters = [
        OrdinalParameter("ls0", _POW2(5, 10), transform="log", default=128),
        OrdinalParameter("gs0", _POW2(10, 20), transform="log", default=2**15),
        OrdinalParameter("split", _POW2(1, 7), transform="log", default=2),
        OrdinalParameter("sq0", _POW2(0, 6), transform="log", default=1),
        OrdinalParameter("vw", _POW2(0, 3), transform="log", default=1),
    ]
    constraints = [
        Constraint("gs0 >= ls0"),
        Constraint("ls0 * sq0 <= 16384"),
    ]
    space = SearchSpace(parameters, constraints)
    kernel = RiseGpuKernel("asum_gpu")
    kernel.has_hidden_constraints = False
    default = space.default_configuration()
    return space, kernel, default, ("vw",)


def _scal_gpu() -> tuple[SearchSpace, RiseGpuKernel, dict, tuple[str, ...]]:
    parameters = [
        OrdinalParameter("ls0", _POW2(0, 10), transform="log", default=32),
        OrdinalParameter("ls1", _POW2(0, 10), transform="log", default=1),
        OrdinalParameter("gs0", _POW2(5, 15), transform="log", default=2**10),
        OrdinalParameter("gs1", _POW2(0, 10), transform="log", default=1),
        OrdinalParameter("sq0", _POW2(0, 6), transform="log", default=1),
        OrdinalParameter("sq1", _POW2(0, 6), transform="log", default=1),
        OrdinalParameter("vw", _POW2(0, 3), transform="log", default=1),
    ]
    constraints = [
        Constraint("ls0 * ls1 <= 1024"),
        Constraint("gs0 >= ls0"),
        Constraint("gs1 >= ls1"),
    ]
    space = SearchSpace(parameters, constraints)
    kernel = RiseGpuKernel("scal_gpu")
    kernel.has_hidden_constraints = True
    default = space.default_configuration()
    return space, kernel, default, ("vw", "sq1")


def _kmeans_gpu() -> tuple[SearchSpace, RiseGpuKernel, dict, tuple[str, ...]]:
    parameters = [
        OrdinalParameter("ls0", _POW2(0, 10), transform="log", default=32),
        OrdinalParameter("ls1", _POW2(0, 6), transform="log", default=1),
        OrdinalParameter("sq0", _POW2(0, 6), transform="log", default=1),
        OrdinalParameter("vw", _POW2(0, 3), transform="log", default=1),
    ]
    constraints = [Constraint("ls0 * ls1 <= 1024")]
    space = SearchSpace(parameters, constraints)
    kernel = RiseGpuKernel("kmeans_gpu")
    kernel.has_hidden_constraints = True
    default = space.default_configuration()
    return space, kernel, default, ()


def _harris_gpu() -> tuple[SearchSpace, RiseGpuKernel, dict, tuple[str, ...]]:
    parameters = [
        OrdinalParameter("ls0", _POW2(0, 8), transform="log", default=32),
        OrdinalParameter("ls1", _POW2(0, 8), transform="log", default=4),
        OrdinalParameter("ts0", _POW2(2, 8), transform="log", default=32),
        OrdinalParameter("ts1", _POW2(2, 8), transform="log", default=32),
        OrdinalParameter("vw", _POW2(0, 3), transform="log", default=1),
        OrdinalParameter("sq0", _POW2(0, 5), transform="log", default=1),
        OrdinalParameter("split", _POW2(0, 6), transform="log", default=1),
    ]
    constraints = [
        Constraint("ls0 * ls1 <= 1024"),
        Constraint("ts0 % ls0 == 0"),
        Constraint("ts1 % ls1 == 0"),
    ]
    space = SearchSpace(parameters, constraints)
    kernel = RiseGpuKernel("harris_gpu")
    kernel.has_hidden_constraints = False
    default = space.default_configuration()
    default.update({"ls0": 32, "ls1": 4, "ts0": 32, "ts1": 32})
    return space, kernel, default, ("vw",)


def _stencil_gpu() -> tuple[SearchSpace, RiseGpuKernel, dict, tuple[str, ...]]:
    parameters = [
        OrdinalParameter("ls0", _POW2(0, 6), transform="log", default=32),
        OrdinalParameter("ls1", _POW2(0, 6), transform="log", default=4),
        OrdinalParameter("ts0", _POW2(2, 8), transform="log", default=32),
        OrdinalParameter("ts1", _POW2(2, 8), transform="log", default=32),
    ]
    constraints = [
        Constraint("ls0 * ls1 <= 1024"),
        Constraint("ts0 % ls0 == 0"),
        Constraint("ts1 % ls1 == 0"),
    ]
    space = SearchSpace(parameters, constraints)
    kernel = RiseGpuKernel("stencil_gpu")
    kernel.has_hidden_constraints = False
    default = space.default_configuration()
    default.update({"ls0": 32, "ls1": 4, "ts0": 32, "ts1": 32})
    return space, kernel, default, ()


_BUILDERS = {
    "mm_cpu": _mm_cpu,
    "mm_gpu": _mm_gpu,
    "asum_gpu": _asum_gpu,
    "scal_gpu": _scal_gpu,
    "kmeans_gpu": _kmeans_gpu,
    "harris_gpu": _harris_gpu,
    "stencil_gpu": _stencil_gpu,
}


def rise_benchmark_names() -> list[str]:
    """Names of the 7 RISE & ELEVATE benchmarks, e.g. ``rise_mm_gpu``."""
    return [f"rise_{name}" for name in _BUILDERS]


@lru_cache(maxsize=None)
def build_rise_benchmark(benchmark: str) -> Benchmark:
    """Construct one RISE & ELEVATE benchmark (cached)."""
    if benchmark not in _BUILDERS:
        raise KeyError(f"unknown RISE benchmark {benchmark!r}; available: {sorted(_BUILDERS)}")
    space, kernel, default, pinned = _BUILDERS[benchmark]()
    if not space.is_feasible(default):
        default = space.sample_one(np.random.default_rng(0))
    expert = expert_search(space, kernel, default, pinned=pinned)
    return Benchmark(
        name=f"rise_{benchmark}",
        framework="RISE & ELEVATE",
        space=space,
        evaluator=kernel,
        full_budget=_FULL_BUDGETS[benchmark],
        default_configuration=default,
        expert_configuration=expert,
        description=f"RISE & ELEVATE {benchmark} kernel",
    )
