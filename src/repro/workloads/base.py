"""Benchmark definitions: search space + black box + budgets + reference configs.

A :class:`Benchmark` bundles everything the experiment harness needs to
reproduce one row of Table 3:

* the constrained search space exposed to the autotuner,
* the black-box evaluator (one of the simulated compiler toolchains),
* the full evaluation budget (Table 3's last column) and the derived *tiny*
  (1/3) and *small* (2/3) budgets used in Fig. 5 / Tables 6-8,
* the default configuration and — where the paper has one — the expert
  configuration used as the performance reference.

Expert configurations are obtained the way the paper describes the original
experts working: a careful search over the *conventional* part of the space
(e.g. keeping the default loop order for TACO, Sec. 5.3 RQ4) — implemented
here as a deterministic coordinate-descent search with some parameters pinned
to their default values.  This keeps the expert strong (hard for random
samplers to reach) while leaving headroom for BaCO to exceed it by exploring
the unconventional parameters, matching the paper's findings.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..core.result import ObjectiveFunction, ObjectiveResult
from ..space.space import Configuration, SearchSpace

__all__ = ["Benchmark", "expert_search"]


@dataclass
class Benchmark:
    """One autotuning benchmark instance (a row of Table 3)."""

    name: str
    framework: str
    space: SearchSpace
    evaluator: ObjectiveFunction
    full_budget: int
    default_configuration: Configuration | None = None
    expert_configuration: Configuration | None = None
    description: str = ""

    # ------------------------------------------------------------------
    @property
    def tiny_budget(self) -> int:
        """1/3 of the full budget (Fig. 5)."""
        return max(1, self.full_budget // 3)

    @property
    def small_budget(self) -> int:
        """2/3 of the full budget (Fig. 5)."""
        return max(1, (2 * self.full_budget) // 3)

    def budget(self, level: str) -> int:
        levels = {"tiny": self.tiny_budget, "small": self.small_budget, "full": self.full_budget}
        if level not in levels:
            raise KeyError(f"unknown budget level {level!r}; choose from {sorted(levels)}")
        return levels[level]

    # ------------------------------------------------------------------
    def evaluate(self, configuration: Mapping[str, Any]) -> ObjectiveResult:
        return self.evaluator(configuration)

    @cached_property
    def default_value(self) -> float:
        """Runtime of the default configuration (``inf`` if infeasible / absent)."""
        if self.default_configuration is None:
            return math.inf
        result = self.evaluator(self.default_configuration)
        return result.value if result.feasible else math.inf

    @cached_property
    def expert_value(self) -> float:
        """Runtime of the expert configuration (``inf`` when the paper has none)."""
        if self.expert_configuration is None:
            return math.inf
        result = self.evaluator(self.expert_configuration)
        return result.value if result.feasible else math.inf

    @property
    def has_expert(self) -> bool:
        return self.expert_configuration is not None and math.isfinite(self.expert_value)

    @property
    def reference_value(self) -> float:
        """Expert runtime when available, default runtime otherwise.

        The HPVM2FPGA benchmarks have no expert configuration (Sec. 5.1); the
        paper then reports performance relative to the best configuration
        found, but for normalization purposes the default is the stable
        reference we expose here.
        """
        return self.expert_value if self.has_expert else self.default_value

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """Table 3-style row."""
        stats = self.space.describe()
        constraint_kinds = []
        if self.space.constraints:
            constraint_kinds.append("K")
        if getattr(self.evaluator, "has_hidden_constraints", False):
            constraint_kinds.append("H")
        return {
            "benchmark": self.name,
            "framework": self.framework,
            "dimension": stats["dimension"],
            "types": stats["types"],
            "constraints": "/".join(constraint_kinds),
            "dense_size": stats["dense_size"],
            "feasible_size": stats["feasible_size"],
            "full_budget": self.full_budget,
        }


def expert_search(
    space: SearchSpace,
    evaluator: Callable[[Mapping[str, Any]], ObjectiveResult],
    start: Configuration,
    pinned: Sequence[str] = (),
    max_rounds: int = 6,
) -> Configuration:
    """Deterministic coordinate descent standing in for the human expert.

    Starting from ``start``, repeatedly sweeps every non-pinned parameter over
    the values feasible given the rest of the configuration and keeps the best
    one, until a full round makes no improvement.  Parameters named in
    ``pinned`` are never changed — this is how we model the expert "only
    considering the default loop ordering".
    """
    if not space.is_feasible(start):
        raise ValueError("expert search must start from a feasible configuration")
    current = dict(start)
    result = evaluator(current)
    current_value = result.value if result.feasible else math.inf

    for _ in range(max_rounds):
        improved = False
        for param in space.parameters:
            if param.name in pinned:
                continue
            cot = space.chain_of_trees
            if cot is not None and cot.covers(param.name):
                candidates = cot.feasible_values(param.name, current)
            elif param.is_discrete and param.cardinality() <= 4096:
                candidates = param.values_list()
            else:
                candidates = param.neighbours(current[param.name])
            for value in candidates:
                if value == current[param.name]:
                    continue
                candidate = dict(current)
                candidate[param.name] = value
                if not space.is_feasible(candidate):
                    continue
                outcome = evaluator(candidate)
                if outcome.feasible and outcome.value < current_value:
                    current, current_value = candidate, outcome.value
                    improved = True
        if not improved:
            break
    return current
