"""Synthetic hard-constraint benchmark spaces (feasibility densities 1e-2 … 1e-6).

BaCO's headline regime — a feasible region that is a sliver of the dense
space — is under-represented in the three compiler suites once their
constraints are captured by the Chain-of-Trees.  This suite constructs mixed
R/O/C/P spaces whose *known* constraints are left entirely to the sampler:
the spaces are built with ``build_chain_of_trees=False``, modelling the
regime where feasible enumeration exceeds the CoT node budget and candidate
generation must either reject or propagate.

Each instance stacks ``k`` unary divisibility constraints (each keeping 1 in
10 values of a 100-value ordinal) on top of one binary comparison and one
disjunction, giving feasibility densities of roughly ``10**-k``:

* ``hard_constraint_1e-2`` — ``k = 2``, rejection is merely wasteful;
* ``hard_constraint_1e-4`` — ``k = 4``, rejection rounds explode (the CI
  bench gate compares rejection vs propagation here);
* ``hard_constraint_1e-6`` — ``k = 6``, rejection exhausts its default
  budget and raises, while domain propagation samples in a handful of
  rounds.

The objective is a smooth, deterministic synthetic function (no hidden
constraints), so these benchmarks double as end-to-end tuner workloads: the
optimum sits at ``x_i = 40`` — feasible under every density — with mild
mode / permutation / eps terms to keep every parameter type relevant.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Any, Mapping

from ..core.result import ObjectiveResult
from ..space.constraints import Constraint
from ..space.parameters import (
    CategoricalParameter,
    OrdinalParameter,
    PermutationParameter,
    RealParameter,
)
from ..space.space import SearchSpace
from .base import Benchmark

__all__ = [
    "HARD_CONSTRAINT_DENSITIES",
    "build_hard_constraint_benchmark",
    "hard_constraint_benchmark_names",
]

#: density label -> number of stacked 1-in-10 divisibility constraints
HARD_CONSTRAINT_DENSITIES: dict[str, int] = {"1e-2": 2, "1e-4": 4, "1e-6": 6}

_MODE_WEIGHTS = {"low": 0.9, "mid": 1.0, "high": 1.1, "turbo": 1.05}


def build_hard_constraint_space(density: str) -> SearchSpace:
    """The search space of one density instance (fresh, not cached)."""
    k = HARD_CONSTRAINT_DENSITIES[density]
    parameters = [
        OrdinalParameter(f"x{i}", list(range(100)), default=0) for i in range(6)
    ]
    parameters.append(RealParameter("eps", 0.01, 1.0, transform="log", default=0.1))
    parameters.append(
        CategoricalParameter("mode", list(_MODE_WEIGHTS), default="mid")
    )
    parameters.append(PermutationParameter("order", 4))
    constraints = [Constraint(f"x{i} % 10 == 0") for i in range(k)]
    constraints.append(Constraint("x4 <= x5 + 50"))
    constraints.append(Constraint("eps >= 0.05 or x0 <= 50"))
    # no Chain-of-Trees on purpose: this models constraint groups beyond the
    # enumeration budget, where sampling must reject — or propagate
    return SearchSpace(parameters, constraints, build_chain_of_trees=False)


class HardConstraintObjective:
    """Smooth deterministic objective over the hard-constraint space."""

    has_hidden_constraints = False

    def __init__(self, density: str) -> None:
        self.density = density

    def __call__(self, configuration: Mapping[str, Any]) -> ObjectiveResult:
        xs = [float(configuration[f"x{i}"]) for i in range(6)]
        quad = sum(((x - 40.0) / 100.0) ** 2 for x in xs)
        order = tuple(int(v) for v in configuration["order"])
        inversions = sum(
            1
            for i in range(len(order))
            for j in range(i + 1, len(order))
            if order[i] > order[j]
        )
        eps_term = 0.25 * abs(math.log(float(configuration["eps"]) / 0.1))
        weight = _MODE_WEIGHTS[configuration["mode"]]
        value = weight * (1.0 + quad) * (1.0 + 0.02 * inversions) + eps_term
        return ObjectiveResult(value=value, feasible=True)


def hard_constraint_benchmark_names() -> list[str]:
    """Names of the synthetic hard-constraint instances, sparsest last.

    Deliberately *not* part of :func:`repro.workloads.benchmark_names`: that
    list enumerates the paper's 25 Table 3 instances; these spaces are a
    scenario axis of their own and are addressed explicitly by name.
    """
    return [f"hard_constraint_{d}" for d in HARD_CONSTRAINT_DENSITIES]


@lru_cache(maxsize=None)
def build_hard_constraint_benchmark(density: str) -> Benchmark:
    """Construct one hard-constraint benchmark (cached)."""
    if density not in HARD_CONSTRAINT_DENSITIES:
        raise KeyError(
            f"unknown hard-constraint density {density!r}; "
            f"available: {sorted(HARD_CONSTRAINT_DENSITIES)}"
        )
    space = build_hard_constraint_space(density)
    default = space.default_configuration()
    return Benchmark(
        name=f"hard_constraint_{density}",
        framework="Synthetic",
        space=space,
        evaluator=HardConstraintObjective(density),
        full_budget=50,
        default_configuration=default,
        expert_configuration=None,
        description=(
            f"synthetic hard-constraint space at feasibility density ~{density} "
            "(known constraints only, no Chain-of-Trees)"
        ),
    )
