"""HPVM2FPGA benchmark definitions (Table 3, bottom block).

Three benchmarks from the HPVM2FPGA paper: Breadth-First Search (BFS) and
PreEuler from the Rodinia suite, and the ILLIXR 3-D spatial audio encoder.
The parameter spaces are generated from the structure of each program (one
unroll factor per loop, one fusion flag per fusable kernel pair, one
privatization flag per candidate argument), which matches how HPVM2FPGA
derives its design space from a static analysis of the IR.  Most parameters
are boolean; all benchmarks carry hidden resource / scheduling constraints
and — as in the paper — there is no expert configuration, only the default
(no transformations applied).
"""

from __future__ import annotations

from functools import lru_cache

from ..compilers.hpvm2fpga import FPGA_BENCHMARKS, HpvmFpgaKernel
from ..space.parameters import CategoricalParameter, OrdinalParameter
from ..space.space import SearchSpace
from .base import Benchmark

__all__ = ["hpvm_benchmark_names", "build_hpvm_benchmark"]

#: full evaluation budgets from Table 3
_FULL_BUDGETS = {"bfs": 20, "audio": 60, "preeuler": 60}

#: unroll factors explored per loop (integers, exponential by nature)
_UNROLL_FACTORS = {
    "bfs": [1, 2, 4, 8],
    "audio": [1, 2, 4, 8],
    "preeuler": [1, 2, 4, 8, 16],
}


def _build_space(benchmark: str) -> SearchSpace:
    spec = FPGA_BENCHMARKS[benchmark]
    factors = _UNROLL_FACTORS[benchmark]
    parameters = []
    for loop in spec.loops:
        parameters.append(
            OrdinalParameter(f"unroll_{loop.name}", factors, transform="log", default=1)
        )
    for pair_index in range(len(spec.fusable)):
        parameters.append(CategoricalParameter(f"fuse_{pair_index}", [0, 1], default=0))
    for flag, _saving, _brams in spec.privatizable:
        parameters.append(CategoricalParameter(flag, [0, 1], default=0))
    return SearchSpace(parameters)


def hpvm_benchmark_names() -> list[str]:
    """Names of the 3 HPVM2FPGA benchmarks, e.g. ``hpvm_bfs``."""
    return [f"hpvm_{name}" for name in sorted(_FULL_BUDGETS)]


@lru_cache(maxsize=None)
def build_hpvm_benchmark(benchmark: str) -> Benchmark:
    """Construct one HPVM2FPGA benchmark (cached)."""
    if benchmark not in FPGA_BENCHMARKS:
        raise KeyError(
            f"unknown HPVM2FPGA benchmark {benchmark!r}; available: {sorted(FPGA_BENCHMARKS)}"
        )
    space = _build_space(benchmark)
    kernel = HpvmFpgaKernel(benchmark)
    kernel.has_hidden_constraints = True
    default = space.default_configuration()
    return Benchmark(
        name=f"hpvm_{benchmark}",
        framework="HPVM2FPGA",
        space=space,
        evaluator=kernel,
        full_budget=_FULL_BUDGETS[benchmark],
        default_configuration=default,
        expert_configuration=None,
        description=f"HPVM2FPGA {benchmark} design-space exploration",
    )
