"""Central benchmark registry: name -> :class:`Benchmark`.

Benchmark names follow ``<framework>_<kernel>[_<dataset>]``:

* ``taco_spmm_scircuit``, ``taco_ttv_facebook``, ... (15 instances)
* ``rise_mm_gpu``, ``rise_stencil_gpu``, ... (7 instances)
* ``hpvm_bfs``, ``hpvm_audio``, ``hpvm_preeuler`` (3 instances)

Use :func:`benchmark_names` to enumerate, :func:`get_benchmark` to construct
(construction is cached; it includes the expert-configuration search), and
:func:`benchmarks_by_framework` for the per-framework groups used by Fig. 5.
"""

from __future__ import annotations

from functools import lru_cache

from .base import Benchmark
from .hard_constraint_suite import (
    build_hard_constraint_benchmark,
    hard_constraint_benchmark_names,
)
from .hpvm_suite import build_hpvm_benchmark, hpvm_benchmark_names
from .rise_suite import build_rise_benchmark, rise_benchmark_names
from .taco_suite import TACO_BENCHMARK_TENSORS, build_taco_benchmark, taco_benchmark_names

__all__ = [
    "FRAMEWORKS",
    "benchmark_names",
    "benchmarks_by_framework",
    "get_benchmark",
    "hard_constraint_benchmark_names",
    "representative_benchmarks",
]

FRAMEWORKS = ("TACO", "RISE & ELEVATE", "HPVM2FPGA")


def benchmark_names() -> list[str]:
    """All benchmark instance names in paper order (TACO, RISE, HPVM2FPGA)."""
    return taco_benchmark_names() + rise_benchmark_names() + hpvm_benchmark_names()


def benchmarks_by_framework() -> dict[str, list[str]]:
    """Benchmark names grouped by compiler framework."""
    return {
        "TACO": taco_benchmark_names(),
        "RISE & ELEVATE": rise_benchmark_names(),
        "HPVM2FPGA": hpvm_benchmark_names(),
    }


def representative_benchmarks() -> dict[str, str]:
    """The per-framework representative kernels plotted in Fig. 6."""
    return {
        "TACO": "taco_spmm_scircuit",
        "RISE & ELEVATE": "rise_mm_gpu",
        "HPVM2FPGA": "hpvm_audio",
    }


@lru_cache(maxsize=None)
def get_benchmark(name: str) -> Benchmark:
    """Look up (and lazily build) a benchmark by its registry name."""
    if name.startswith("taco_"):
        remainder = name[len("taco_"):]
        for expression in TACO_BENCHMARK_TENSORS:
            prefix = expression + "_"
            if remainder.startswith(prefix):
                # any tensor in the catalog resolves, not just the Table 3
                # instances: the Fig. 8/9 ablations run SpMM on extra matrices
                # (e.g. ``taco_spmm_filter3D``) and the parallel orchestrator
                # re-resolves benchmarks by name inside worker processes
                try:
                    return build_taco_benchmark(expression, remainder[len(prefix):])
                except KeyError:
                    raise KeyError(f"unknown TACO benchmark {name!r}") from None
        raise KeyError(f"unknown TACO benchmark {name!r}")
    if name.startswith("rise_"):
        return build_rise_benchmark(name[len("rise_"):])
    if name.startswith("hpvm_"):
        return build_hpvm_benchmark(name[len("hpvm_"):])
    if name.startswith("hard_constraint_"):
        # synthetic hard-constraint spaces: addressable by name but not part
        # of benchmark_names() (that list is the paper's 25 instances)
        return build_hard_constraint_benchmark(name[len("hard_constraint_"):])
    raise KeyError(
        f"unknown benchmark {name!r}; see repro.workloads.benchmark_names() for options"
    )
