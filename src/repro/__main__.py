"""Command-line interface for the experiment orchestrator: ``python -m repro``.

Three subcommands operate on the (benchmark, tuner, budget, seed) cell grid:

* ``sweep``  — execute the grid (in parallel with ``--workers``), skipping
  cells already satisfied by the on-disk cache and checkpointing progress in
  the sweep manifest so an interrupted sweep resumes where it left off,
* ``status`` — summarize the grid against the cache and manifest without
  running anything,
* ``report`` — render a benchmark x tuner table of best-found values from
  cached histories only.

Two subcommands drive single ask/tell tuning sessions
(:mod:`repro.core.session`):

* ``tune``  — run one tuner on one benchmark with optional parallel
  evaluation (``--eval-workers``), periodic checkpointing
  (``--checkpoint``), and crash-safe resume (``--resume``); ``--stop-after``
  deliberately interrupts the run after N evaluations,
* ``serve`` — a long-running tuning service speaking JSON lines (see
  :mod:`repro.service`), for workloads where external systems evaluate the
  proposed configurations.  By default it serves one connection on
  stdin/stdout; with ``--tcp PORT`` it becomes a concurrent multi-session
  TCP server (:mod:`repro.server`) with named sessions, LRU eviction, and
  crash-safe autosave/resume via ``--sessions-dir``.

A further subcommand, ``bench``, runs the tuner hot-path microbenchmarks
(legacy dict path vs. the vectorized encoding layer) and writes
``BENCH_tuner_hotpath.json``.

Examples::

    PYTHONPATH=src python -m repro sweep --workers 4
    PYTHONPATH=src python -m repro sweep --benchmarks hpvm_bfs hpvm_audio \\
        --tuners "Uniform Sampling" "CoT Sampling" --repetitions 2 --workers 2
    PYTHONPATH=src python -m repro status
    PYTHONPATH=src python -m repro report --benchmarks rise_scal_gpu
    PYTHONPATH=src python -m repro tune --benchmark hpvm_bfs --tuner BaCO \\
        --budget 20 --seed 0 --checkpoint /tmp/bfs.ckpt.json --eval-workers 4
    PYTHONPATH=src python -m repro tune --resume --checkpoint /tmp/bfs.ckpt.json
    PYTHONPATH=src python -m repro serve
    PYTHONPATH=src python -m repro serve --tcp 7730 --sessions-dir runs/ \\
        --max-sessions 16
    PYTHONPATH=src python -m repro bench --quick

Environment variables (``REPRO_*``, see :mod:`repro.experiments.config`)
provide the defaults; command-line flags override them.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

from .analysis import cli as analysis_cli
from .core.result import TuningHistory
from .experiments.config import ExperimentConfig, default_config
from .experiments.figures import suite_benchmarks
from .experiments.orchestrator import (
    cell_cache_path,
    enumerate_cells,
    load_manifest,
    manifest_path,
    run_cells,
)
from .experiments.reporting import format_cell_event, format_sweep_summary, format_table
from .experiments.runner import MAIN_TUNERS, TUNER_VARIANTS
from .workloads.registry import benchmark_names

__all__ = ["main"]


def _add_grid_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--benchmarks", nargs="+", default=["suite"], metavar="NAME",
        help="benchmark instance names, or 'suite' (configured subset) / 'all' "
             "(every registry instance); default: suite",
    )
    parser.add_argument(
        "--tuners", nargs="+", default=["main"], metavar="NAME",
        help="tuner variant names, or 'main' (the five Fig. 5/7 tuners) / 'all'; "
             "default: main",
    )
    parser.add_argument(
        "--budget", type=int, default=None,
        help="override the per-benchmark scaled Table 3 budget",
    )
    parser.add_argument(
        "--repetitions", type=int, default=None, help="seeds per (benchmark, tuner) pair"
    )
    parser.add_argument("--seed", type=int, default=None, help="base random seed")
    parser.add_argument(
        "--fidelity", choices=("fast", "paper"), default=None, help="optimizer effort level"
    )
    parser.add_argument(
        "--budget-scale", type=float, default=None,
        help="fraction of the Table 3 budgets to use",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None, help="tuning-history cache directory"
    )


def _build_config(args: argparse.Namespace) -> ExperimentConfig:
    config = default_config()
    overrides = {
        "repetitions": args.repetitions,
        "base_seed": args.seed,
        "fidelity": args.fidelity,
        "budget_scale": getattr(args, "budget_scale", None),
        "cache_dir": args.cache_dir,
        "workers": getattr(args, "workers", None),
        "timeout": getattr(args, "timeout", None),
        "retries": getattr(args, "retries", None),
        "eval_workers": getattr(args, "eval_workers", None),
    }
    if getattr(args, "no_resume", False):
        overrides["resume"] = False
    if getattr(args, "no_cache", False):
        overrides["use_cache"] = False
    return replace(config, **{k: v for k, v in overrides.items() if v is not None})


def _resolve_benchmarks(tokens: list[str], config: ExperimentConfig) -> list[str]:
    names: list[str] = []
    for token in tokens:
        if token == "suite":
            names.extend(n for group in suite_benchmarks(config).values() for n in group)
        elif token == "all":
            names.extend(benchmark_names())
        else:
            names.append(token)
    return list(dict.fromkeys(names))


def _resolve_tuners(tokens: list[str]) -> list[str]:
    names: list[str] = []
    for token in tokens:
        if token == "main":
            names.extend(MAIN_TUNERS)
        elif token == "all":
            names.extend(TUNER_VARIANTS)
        elif token in TUNER_VARIANTS:
            names.append(token)
        else:
            raise SystemExit(
                f"unknown tuner {token!r}; available: {sorted(TUNER_VARIANTS)}"
            )
    return list(dict.fromkeys(names))


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------

def _cmd_sweep(args: argparse.Namespace) -> int:
    config = _build_config(args)
    cells = enumerate_cells(
        _resolve_benchmarks(args.benchmarks, config),
        _resolve_tuners(args.tuners),
        config,
        budget=args.budget,
    )
    on_event = None if args.quiet else lambda event: print(format_cell_event(event), flush=True)
    result = run_cells(cells, config, on_event=on_event)
    print(format_sweep_summary(result.counts, result.elapsed, config.workers))
    if result.manifest_file is not None:
        print(f"manifest: {result.manifest_file}")
    for outcome in result.failures:
        print(f"  failed: {outcome.cell.key}: {outcome.error}", file=sys.stderr)
    return 1 if result.failures else 0


def _cmd_status(args: argparse.Namespace) -> int:
    config = _build_config(args)
    cells = enumerate_cells(
        _resolve_benchmarks(args.benchmarks, config),
        _resolve_tuners(args.tuners),
        config,
        budget=args.budget,
    )
    cached = sum(1 for cell in cells if cell_cache_path(config, cell).exists())
    manifest = load_manifest(config)
    statuses: dict[str, int] = {}
    for entry in manifest["cells"].values():
        status = entry.get("status", "?") if isinstance(entry, dict) else "?"
        statuses[status] = statuses.get(status, 0) + 1
    print(f"grid: {len(cells)} cells ({cached} cached, {len(cells) - cached} missing)")
    print(f"cache dir: {config.cache_dir}")
    if not manifest_path(config).exists():
        print("no sweep manifest found — run `repro sweep` first")
    elif manifest["cells"]:
        rendered = ", ".join(f"{count} {status}" for status, count in sorted(statuses.items()))
        print(f"manifest: {manifest_path(config)} — {rendered}")
    else:
        print(f"manifest: {manifest_path(config)} — empty (no cells recorded yet)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    config = _build_config(args)
    benchmarks = _resolve_benchmarks(args.benchmarks, config)
    tuners = _resolve_tuners(args.tuners)
    headers = ["Benchmark", *tuners]
    rows = []
    for name in benchmarks:
        cells = enumerate_cells([name], tuners, config, budget=args.budget)
        per_tuner: dict[str, list[float]] = {tuner: [] for tuner in tuners}
        for cell in cells:
            path = cell_cache_path(config, cell)
            if not path.exists():
                continue
            try:
                history = TuningHistory.from_dict(json.loads(path.read_text()))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                continue
            per_tuner[cell.tuner].append(history.best_value())
        row = [name]
        seeds = config.repetitions
        for tuner in tuners:
            values = per_tuner[tuner]
            if values:
                row.append(f"{sum(values) / len(values):.4g} ({len(values)}/{seeds})")
            else:
                row.append(f"— (0/{seeds})")
        rows.append(row)
    print(format_table(headers, rows, title="mean best value over cached seeds"))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from .core.session import drive
    from .experiments.runner import drive_parallel, load_session, make_session, save_session

    checkpoint = args.checkpoint
    if args.resume:
        if checkpoint is None or not checkpoint.exists():
            print(
                f"error: --resume needs an existing checkpoint "
                f"(got {checkpoint})",
                file=sys.stderr,
            )
            return 2
        if args.surrogate_policy is not None:
            # the checkpoint records the policy; overriding it mid-run would
            # silently break the deterministic replay contract
            print(
                "error: --surrogate-policy cannot be combined with --resume "
                "(the checkpoint already records the policy)",
                file=sys.stderr,
            )
            return 2
        if args.propagate:
            # same contract: the sampling mode changes the RNG stream and is
            # recorded in (and restored from) the checkpoint metadata
            print(
                "error: --propagate cannot be combined with --resume "
                "(the checkpoint already records the sampling mode)",
                file=sys.stderr,
            )
            return 2
        session, benchmark = load_session(checkpoint)
        if not args.quiet:
            print(
                f"resumed {session.tuner.name} on {benchmark.name} at "
                f"{len(session.history)}/{session.budget} evaluations"
            )
    else:
        if args.benchmark is None:
            print("error: --benchmark is required (unless resuming)", file=sys.stderr)
            return 2
        budget = args.budget
        if budget is None:
            from .workloads.registry import get_benchmark

            budget = get_benchmark(args.benchmark).full_budget
        session, benchmark = make_session(
            args.benchmark, args.tuner, budget, args.seed or 0,
            fidelity=args.fidelity or "fast",
            surrogate_policy=args.surrogate_policy,
            propagate=args.propagate,
        )

    stop_after = args.stop_after
    if stop_after is not None and checkpoint is None:
        print("error: --stop-after without --checkpoint loses the run", file=sys.stderr)
        return 2

    last_saved = len(session.history)

    class _Interrupted(Exception):
        pass

    def after_tell(live_session) -> None:
        nonlocal last_saved
        done = len(live_session.history)
        if not args.quiet:
            best = live_session.history.best_value()
            print(f"[{done}/{live_session.budget}] best={best:.6g}", flush=True)
        # counted in evaluations, not batches: with --eval-workers q each
        # after_tell advances the history by q tells
        if checkpoint is not None and done - last_saved >= args.checkpoint_every:
            save_session(live_session, checkpoint)
            last_saved = done
        if stop_after is not None and done >= stop_after:
            raise _Interrupted

    eval_workers = max(1, args.eval_workers or 1)
    try:
        if eval_workers > 1:
            drive_parallel(session, eval_workers, after_tell=after_tell)
        else:
            drive(session, benchmark.evaluator, after_tell=after_tell)
    except _Interrupted:
        save_session(session, checkpoint)
        print(
            f"stopped after {len(session.history)} evaluations; "
            f"checkpoint: {checkpoint}"
        )
        return 0

    if checkpoint is not None:
        save_session(session, checkpoint)
    history = session.history
    best = history.best(session.budget)
    print(
        f"{history.tuner_name} on {benchmark.name}: {len(history)} evaluations, "
        f"best {'%.6g' % best.value if best is not None else 'infeasible'}"
    )
    if args.out is not None:
        # drop wall-clock fields so the output is a deterministic trace
        payload = history.to_dict()
        payload.pop("tuner_seconds", None)
        payload.pop("evaluation_seconds", None)
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(payload, indent=1, sort_keys=True))
        print(f"wrote {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import SessionRegistry, serve

    registry = SessionRegistry(
        sessions_dir=args.sessions_dir, max_sessions=args.max_sessions
    )
    if args.tcp is None:
        # degenerate single-connection case: same registry, stdin/stdout framing
        return serve(sys.stdin, sys.stdout, registry)

    import signal

    from .server import TuningServer

    server = TuningServer(registry, host=args.host, port=args.tcp)
    where = f"{server.server_address[0]}:{server.port}"
    extras = [f"max {args.max_sessions} sessions"]
    if args.sessions_dir is not None:
        extras.append(f"autosave to {args.sessions_dir}")
    print(f"serving on {where} ({', '.join(extras)})", flush=True)

    def _graceful(signum, frame):  # SIGTERM drains through the autosave path
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _graceful)
    try:
        server.serve_until_shutdown()
    except KeyboardInterrupt:
        pass  # serve_until_shutdown's finally already drained and autosaved
    return 0


def _bench_baseline_speedups(path: Path) -> dict[str, float]:
    """Per-section speedups from the committed baseline JSON (empty if absent)."""
    try:
        committed = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    sections = committed.get("sections")
    if not isinstance(sections, dict):
        return {}
    speedups: dict[str, float] = {}
    for name, section in sections.items():
        if not isinstance(section, dict):
            continue
        # sections report the speedup of their most advanced path; for
        # end_to_end (v5) that is the pooled fast policy, with plain "speedup"
        # (exact vs fast) kept for older baselines
        value = section.get("pooled_speedup", section.get("speedup"))
        if isinstance(value, (int, float)):
            speedups[name] = float(value)
    return speedups


def _cmd_bench(args: argparse.Namespace) -> int:
    from .experiments.hotpath_bench import (
        DEFAULT_OUTPUT,
        run_hotpath_benchmarks,
        write_results,
    )

    scale = 0.25 if args.quick else 1.0
    payload = run_hotpath_benchmarks(
        n_distance_configs=max(20, int(args.distance_configs * scale)),
        n_train=max(10, int(args.train * scale)),
        n_candidates=max(50, int(args.candidates * scale)),
        n_generated=max(64, int(args.generated * scale)),
        repeats=args.repeats,
        # the end-to-end budget is exempt from --quick scaling: below ~3x the
        # DoE size the learning loop barely runs and the policy speedups the
        # CI gate asserts on become meaningless noise
        end_to_end_budget=args.end_to_end_budget,
        sections=args.section or None,
    )
    # delta column against the committed baseline, so perf regressions show
    # up directly in PR logs
    baseline = _bench_baseline_speedups(DEFAULT_OUTPUT)
    headers = ["Section", "Baseline", "Optimized", "Speedup", "Throughput", "Δ committed"]
    rows = []
    for name, section in payload["sections"].items():
        base_s = section.get("legacy_seconds", section.get("exact_seconds"))
        new_s = section.get(
            "vectorized_seconds",
            section.get(
                "incremental_seconds",
                section.get("pooled_seconds", section.get("fast_seconds")),
            ),
        )
        throughput = next(
            (
                f"{section[key]:,.0f} {key.rsplit('_', 3)[-3]}/s"
                for key in (
                    "vectorized_candidates_per_sec",
                    "vectorized_configs_per_sec",
                    "incremental_fits_per_sec",
                    "pooled_iters_per_sec",
                    "fast_iters_per_sec",
                )
                if key in section
            ),
            "—",
        )
        # headline the section's most advanced path (pooled for end_to_end),
        # matching what _bench_baseline_speedups reads from the committed JSON
        speedup = section.get("pooled_speedup", section["speedup"])
        committed_speedup = baseline.get(name)
        if committed_speedup:
            ratio = speedup / committed_speedup
            delta = f"{committed_speedup:.1f}x ({'+' if ratio >= 1 else ''}{(ratio - 1) * 100:.0f}%)"
        else:
            delta = "—"
        rows.append(
            [
                name,
                f"{base_s * 1e3:.1f} ms",
                f"{new_s * 1e3:.1f} ms",
                f"{speedup:.1f}x",
                throughput,
                delta,
            ]
        )
    print(format_table(headers, rows, title="tuner hot path: optimized vs baseline paths"))
    out = args.out
    if out is None:
        # single-section payloads are not complete baselines — only write
        # them when the caller asked for a file explicitly
        out = None if args.section else DEFAULT_OUTPUT
    if out is not None:
        path = write_results(payload, out)
        print(f"wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Parallel experiment orchestration for the BaCO reproduction.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sweep_parser = subparsers.add_parser(
        "sweep", help="execute the (benchmark, tuner, seed) grid"
    )
    _add_grid_options(sweep_parser)
    sweep_parser.add_argument(
        "--workers", type=int, default=None, help="parallel worker processes (default: 1)"
    )
    sweep_parser.add_argument(
        "--timeout", type=float, default=None, help="per-cell timeout in seconds"
    )
    sweep_parser.add_argument(
        "--retries", type=int, default=None, help="re-attempts per failed cell"
    )
    sweep_parser.add_argument(
        "--eval-workers", type=int, default=None,
        help="parallel black-box evaluations inside each cell (default: 1; "
             ">1 batches the tuner's ask() and changes the cache identity)",
    )
    sweep_parser.add_argument(
        "--no-resume", action="store_true",
        help="recompute every cell instead of skipping cached ones",
    )
    sweep_parser.add_argument(
        "--no-cache", action="store_true", help="do not read or write the history cache"
    )
    sweep_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )
    sweep_parser.set_defaults(handler=_cmd_sweep)

    status_parser = subparsers.add_parser(
        "status", help="summarize cache / manifest coverage of the grid"
    )
    _add_grid_options(status_parser)
    status_parser.set_defaults(handler=_cmd_status)

    report_parser = subparsers.add_parser(
        "report", help="tabulate best-found values from cached histories"
    )
    _add_grid_options(report_parser)
    report_parser.set_defaults(handler=_cmd_report)

    tune_parser = subparsers.add_parser(
        "tune", help="run one ask/tell tuning session (checkpointable, resumable)"
    )
    tune_parser.add_argument("--benchmark", default=None, help="benchmark instance name")
    tune_parser.add_argument(
        "--tuner", default="BaCO", help="tuner variant name (default: BaCO)"
    )
    tune_parser.add_argument(
        "--budget", type=int, default=None,
        help="evaluation budget (default: the benchmark's full Table 3 budget)",
    )
    tune_parser.add_argument("--seed", type=int, default=None, help="random seed (default: 0)")
    tune_parser.add_argument(
        "--fidelity", choices=("fast", "paper"), default=None, help="optimizer effort level"
    )
    tune_parser.add_argument(
        "--surrogate-policy", default=None, metavar="SPEC",
        help="surrogate refit policy for BaCO-family tuners: 'exact' (default, "
             "bit-compatible full refit per iteration) or 'fast[,refit_every=N]"
             "[,sweep_every=N][,rf_at=N|auto]' (incremental Cholesky updates, "
             "warm-started hyperparameters, optional GP→RF switch — 'auto' "
             "switches when the measured GP fit time overtakes an RF probe); "
             "incompatible with --resume",
    )
    tune_parser.add_argument(
        "--propagate", action="store_true",
        help="sample candidates from constraint-propagation pruned domains "
             "(SearchSpace.with_propagation); changes the RNG stream, so "
             "off by default and incompatible with --resume",
    )
    tune_parser.add_argument(
        "--eval-workers", type=int, default=None,
        help="parallel black-box evaluations per ask() batch (default: 1)",
    )
    tune_parser.add_argument(
        "--checkpoint", type=Path, default=None,
        help="session checkpoint file, written every --checkpoint-every tells",
    )
    tune_parser.add_argument(
        "--checkpoint-every", type=int, default=1,
        help="evaluations between checkpoint writes (default: 1)",
    )
    tune_parser.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint instead of starting fresh",
    )
    tune_parser.add_argument(
        "--stop-after", type=int, default=None,
        help="checkpoint and exit once this many evaluations are recorded "
             "(simulates an interruption; requires --checkpoint)",
    )
    tune_parser.add_argument(
        "--out", type=Path, default=None,
        help="write the final history as deterministic JSON (no wall-clock fields)",
    )
    tune_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-evaluation progress lines"
    )
    tune_parser.set_defaults(handler=_cmd_tune)

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve ask/tell tuning sessions over JSON lines "
             "(stdin/stdout by default, TCP with --tcp)",
    )
    serve_parser.add_argument(
        "--tcp", type=int, default=None, metavar="PORT",
        help="listen on this TCP port instead of stdin/stdout (0 = ephemeral)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address for --tcp (default: 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--sessions-dir", type=Path, default=None,
        help="autosave directory: evicted sessions are checkpointed here and "
             "transparently reloaded; shutdown saves every dirty session",
    )
    serve_parser.add_argument(
        "--max-sessions", type=int, default=8,
        help="sessions kept in memory before LRU eviction (default: 8)",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    bench_parser = subparsers.add_parser(
        "bench", help="run the tuner hot-path microbenchmarks"
    )
    bench_parser.add_argument(
        "--out", type=Path, default=None,
        help="output JSON path (default: BENCH_tuner_hotpath.json for full "
             "runs; --section runs print only unless --out is given)",
    )
    bench_parser.add_argument(
        "--section", action="append", default=None, metavar="NAME",
        help="run only this section (repeatable), e.g. --section gp_fit; "
             "see repro.experiments.hotpath_bench.ALL_SECTIONS",
    )
    bench_parser.add_argument(
        "--end-to-end-budget", type=int, default=40,
        help="evaluation budget for the end_to_end section (default: 40; "
             "not scaled by --quick)",
    )
    bench_parser.add_argument(
        "--distance-configs", type=int, default=300,
        help="batch size for the distance-matrix build section",
    )
    bench_parser.add_argument(
        "--train", type=int, default=80, help="GP training-set size"
    )
    bench_parser.add_argument(
        "--candidates", type=int, default=1000,
        help="candidate batch size for the EI-maximization section",
    )
    bench_parser.add_argument(
        "--generated", type=int, default=256,
        help="batch size for the candidate-generation / constraint-eval sections",
    )
    bench_parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (minimum is reported)"
    )
    bench_parser.add_argument(
        "--quick", action="store_true",
        help="quarter-size problem instances (CI smoke mode)",
    )
    bench_parser.set_defaults(handler=_cmd_bench)

    check_parser = subparsers.add_parser(
        "check",
        help="run the static invariant checker (see repro.analysis)",
        description="AST-based linter enforcing the repo's determinism, "
        "snapshot, lock, strict-JSON, float-determinism and hot-path "
        "contracts.  Exits non-zero on any unsuppressed finding.",
    )
    analysis_cli.add_check_arguments(check_parser)
    check_parser.set_defaults(handler=analysis_cli.cmd_check)

    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (KeyError, ValueError) as exc:
        # bad grid arguments (unknown benchmark, invalid config values, ...)
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
