"""Experiment runner: execute tuners on benchmarks, with an on-disk cache.

The paper's figures and tables all derive from the same raw data: tuning
histories of each autotuner on each benchmark, repeated over several seeds.
:func:`run_single` produces one such history (and caches it as JSON under the
configured cache directory); :func:`run_benchmark` and :func:`run_suite` fan
out over repetitions / tuners / benchmarks.

Tuner *variants* cover every algorithm configuration appearing in the
evaluation: the five main tuners of Fig. 5/7, the BaCO--, Ytopt (GP) and
RF-surrogate variants of Fig. 8, the permutation-metric / transformation /
prior ablations of Fig. 9, and the hidden-constraint ablations of Fig. 10.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..baselines.opentuner import OpenTunerLikeTuner
from ..baselines.random_search import CoTSamplingTuner, UniformSamplingTuner
from ..baselines.ytopt import YtoptLikeTuner
from ..core.baco import BacoSettings, BacoTuner
from ..core.result import ObjectiveResult, TuningHistory
from ..core.session import Suggestion, TuningSession, drive
from ..core.tuner import Tuner
from ..space.space import SearchSpace
from ..workloads.base import Benchmark
from ..workloads.registry import get_benchmark
from .config import ExperimentConfig, default_config

__all__ = [
    "MAIN_TUNERS",
    "TUNER_VARIANTS",
    "make_tuner",
    "make_session",
    "drive_parallel",
    "load_session",
    "restore_session",
    "save_session",
    "run_single",
    "run_benchmark",
    "run_suite",
]

#: the five tuners compared throughout the evaluation (Fig. 5, 7, Tables 5-9)
MAIN_TUNERS = (
    "BaCO",
    "ATF with OpenTuner",
    "Ytopt",
    "Uniform Sampling",
    "CoT Sampling",
)


def _fast_overrides() -> dict:
    """Cheaper BaCO internals for CI-scale runs (same algorithm, less effort)."""
    return {
        "gp_prior_samples": 8,
        "gp_refined_starts": 1,
        "gp_max_iterations": 15,
        "n_random_samples": 128,
        "n_local_search_starts": 3,
        "max_local_search_steps": 16,
        "feasibility_trees": 16,
        "rf_trees": 16,
    }


def _baco_settings(fidelity: str, **kwargs) -> BacoSettings:
    overrides = _fast_overrides() if fidelity == "fast" else {}
    overrides.update(kwargs)
    return BacoSettings(**overrides)


def _baco_minus_minus_settings(fidelity: str) -> BacoSettings:
    base = BacoSettings.baco_minus_minus()
    if fidelity == "fast":
        for key, value in _fast_overrides().items():
            setattr(base, key, value)
    return base


#: name -> factory(space, seed, fidelity) for every algorithm variant
TUNER_VARIANTS: dict[str, Callable[[SearchSpace, int, str], Tuner]] = {
    "BaCO": lambda space, seed, fid: BacoTuner(space, settings=_baco_settings(fid), seed=seed),
    "ATF with OpenTuner": lambda space, seed, fid: OpenTunerLikeTuner(space, seed=seed),
    "Ytopt": lambda space, seed, fid: YtoptLikeTuner(space, seed=seed, surrogate="rf"),
    "Ytopt (GP)": lambda space, seed, fid: YtoptLikeTuner(space, seed=seed, surrogate="gp"),
    "Uniform Sampling": lambda space, seed, fid: UniformSamplingTuner(space, seed=seed),
    "CoT Sampling": lambda space, seed, fid: CoTSamplingTuner(space, seed=seed),
    # Fig. 8: BO implementation comparison
    "BaCO--": lambda space, seed, fid: BacoTuner(
        space, settings=_baco_minus_minus_settings(fid), seed=seed
    ),
    "BaCO (RF surrogate)": lambda space, seed, fid: BacoTuner(
        space, settings=_baco_settings(fid, surrogate="rf"), seed=seed
    ),
    "BaCO (fast surrogate)": lambda space, seed, fid: BacoTuner(
        space, settings=_baco_settings(fid, surrogate_policy="fast"), seed=seed
    ),
    # Fig. 9: ablations
    "BaCO (kendall)": lambda space, seed, fid: BacoTuner(
        space, settings=_baco_settings(fid, permutation_metric="kendall"), seed=seed
    ),
    "BaCO (hamming)": lambda space, seed, fid: BacoTuner(
        space, settings=_baco_settings(fid, permutation_metric="hamming"), seed=seed
    ),
    "BaCO (naive permutations)": lambda space, seed, fid: BacoTuner(
        space, settings=_baco_settings(fid, permutation_metric="naive"), seed=seed
    ),
    "BaCO (no transformations)": lambda space, seed, fid: BacoTuner(
        space, settings=_baco_settings(fid, use_transformations=False), seed=seed
    ),
    "BaCO (no priors)": lambda space, seed, fid: BacoTuner(
        space, settings=_baco_settings(fid, use_lengthscale_priors=False), seed=seed
    ),
    # Fig. 10: hidden-constraint handling
    "BaCO (no hidden constraints)": lambda space, seed, fid: BacoTuner(
        space, settings=_baco_settings(fid, use_feasibility_model=False), seed=seed
    ),
    "BaCO (no feasibility limit)": lambda space, seed, fid: BacoTuner(
        space, settings=_baco_settings(fid, use_feasibility_threshold=False), seed=seed
    ),
}


def make_tuner(
    name: str,
    space: SearchSpace,
    seed: int,
    fidelity: str = "fast",
    surrogate_policy: str | None = None,
    propagate: bool = False,
) -> Tuner:
    """Instantiate a tuner variant by display name.

    ``surrogate_policy`` (a :class:`~repro.core.baco.SurrogatePolicy` spec
    string, e.g. ``"fast,refit_every=8"``) overrides the variant's surrogate
    refit policy; only BaCO-family tuners accept one.  ``propagate`` swaps in
    the constraint-propagation clone of the space
    (:meth:`SearchSpace.with_propagation`) before the tuner is built, so any
    variant's candidate sampling draws from arc-consistent pruned domains —
    this changes the RNG stream, hence opt-in and recorded in session
    metadata.
    """
    if name not in TUNER_VARIANTS:
        raise KeyError(f"unknown tuner {name!r}; available: {sorted(TUNER_VARIANTS)}")
    if propagate:
        space = space.with_propagation()
    tuner = TUNER_VARIANTS[name](space, seed, fidelity)
    tuner.name = name
    if surrogate_policy is not None:
        if not hasattr(tuner, "set_surrogate_policy"):
            raise ValueError(
                f"tuner {name!r} does not support a surrogate policy"
            )
        tuner.set_surrogate_policy(surrogate_policy)
    return tuner


# ---------------------------------------------------------------------------
# caching
# ---------------------------------------------------------------------------

def _effective_eval_workers(config: ExperimentConfig, benchmark: str) -> int:
    """The ask() batch size a run of this benchmark will actually use.

    Ad-hoc benchmarks cannot be re-resolved inside evaluation workers, so
    they always run the serial trace regardless of ``config.eval_workers`` —
    and must cache under the serial identity.
    """
    if config.eval_workers > 1 and _registry_resolvable(benchmark):
        return config.eval_workers
    return 1


def _cache_path(
    config: ExperimentConfig, benchmark: str, tuner: str, budget: int, seed: int
) -> Path:
    key = f"{benchmark}|{tuner}|{budget}|{seed}|{config.fidelity}"
    suffix = ""
    eval_workers = _effective_eval_workers(config, benchmark)
    if eval_workers > 1:
        # batched ask/tell evaluation legitimately changes the trace, so it
        # gets its own cache identity; serial paths keep their historical keys
        key += f"|q{eval_workers}"
        suffix = f"__q{eval_workers}"
    digest = hashlib.sha256(key.encode()).hexdigest()[:20]
    safe_tuner = "".join(c if c.isalnum() else "_" for c in tuner)
    return config.cache_dir / (
        f"{benchmark}__{safe_tuner}__b{budget}__s{seed}{suffix}__{digest}.json"
    )


#: history fields that are wall-clock measurements, not part of the algorithmic
#: trace.  They are cached in a ``.timing`` sidecar so the history JSON itself
#: is a deterministic function of (benchmark, tuner, budget, seed, fidelity) —
#: serial and parallel sweeps write bit-identical history files.
_TIMING_FIELDS = ("tuner_seconds", "evaluation_seconds")


def _timing_path(path: Path) -> Path:
    return path.with_suffix(".timing")


def run_single(
    benchmark: Benchmark | str,
    tuner_name: str,
    budget: int,
    seed: int,
    config: ExperimentConfig | None = None,
) -> TuningHistory:
    """Run (or load from cache) one tuner on one benchmark for one seed."""
    config = config or default_config()
    if isinstance(benchmark, str):
        benchmark = get_benchmark(benchmark)
    path = _cache_path(config, benchmark.name, tuner_name, budget, seed)
    if config.use_cache and path.exists():
        try:
            history = TuningHistory.from_dict(json.loads(path.read_text()))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            # malformed payloads (truncated JSON, missing keys, wrong shapes /
            # types) all take the same unlink-and-recompute path
            path.unlink(missing_ok=True)
        else:
            timing_path = _timing_path(path)
            if timing_path.exists():
                try:
                    timings = json.loads(timing_path.read_text())
                    for fld in _TIMING_FIELDS:
                        setattr(history, fld, float(timings.get(fld, 0.0)))
                except (json.JSONDecodeError, TypeError, ValueError):
                    pass
            return history
    tuner = make_tuner(tuner_name, benchmark.space, seed, fidelity=config.fidelity)
    eval_workers = _effective_eval_workers(config, benchmark.name)
    if eval_workers > 1:
        session = tuner.start_session(budget, benchmark_name=benchmark.name)
        history = drive_parallel(session, eval_workers)
    else:
        history = tuner.tune(benchmark.evaluator, budget, benchmark_name=benchmark.name)
    if config.use_cache:
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = history.to_dict()
        timings = {fld: payload.pop(fld) for fld in _TIMING_FIELDS if fld in payload}
        path.write_text(json.dumps(payload))
        _timing_path(path).write_text(json.dumps(timings))
    return history


# ---------------------------------------------------------------------------
# ask/tell sessions: parallel evaluation and checkpointing
# ---------------------------------------------------------------------------

def _registry_resolvable(name: str) -> bool:
    """Whether evaluation workers can re-resolve this benchmark by name."""
    try:
        get_benchmark(name)
    except KeyError:
        return False
    return True


def _pool_init(parent_sys_path: list[str]) -> None:
    """Make ``repro`` importable in spawned evaluation workers."""
    for entry in parent_sys_path:
        if entry not in sys.path:
            sys.path.append(entry)


def _evaluate_in_worker(
    benchmark_name: str, configuration: Mapping[str, Any]
) -> tuple[ObjectiveResult, float]:
    """Process-pool task: one black-box evaluation, timed inside the worker."""
    benchmark = get_benchmark(benchmark_name)
    started = time.perf_counter()
    result = benchmark.evaluator(configuration)
    return result, time.perf_counter() - started


def drive_parallel(
    session: TuningSession,
    eval_workers: int,
    after_tell: Callable[[TuningSession], None] | None = None,
) -> TuningHistory:
    """Drive a session to completion with ``ask(q)`` batches over a process pool.

    Suggestions of each batch are evaluated concurrently and told back in
    suggestion-id order, so the trace is a deterministic function of
    (tuner, seed, budget, q) regardless of worker scheduling.  The session's
    benchmark must be registry-resolvable by name (workers re-resolve it).
    ``after_tell`` runs after each told batch (checkpoint hooks).
    """
    from concurrent.futures import ProcessPoolExecutor
    from multiprocessing import get_all_start_methods, get_context

    benchmark_name = session.benchmark_name
    context = get_context("fork" if "fork" in get_all_start_methods() else "spawn")
    start = time.perf_counter()
    with ProcessPoolExecutor(
        max_workers=eval_workers,
        mp_context=context,
        initializer=_pool_init,
        initargs=(list(sys.path),),
    ) as pool:

        def evaluate_batch(
            suggestions: Sequence[Suggestion],
        ) -> list[tuple[ObjectiveResult, float]]:
            futures = [
                pool.submit(_evaluate_in_worker, benchmark_name, s.configuration)
                for s in suggestions
            ]
            return [future.result() for future in futures]

        history = drive(
            session,
            batch_size=eval_workers,
            evaluate_batch=evaluate_batch,
            after_tell=after_tell,
        )
    total = time.perf_counter() - start
    history.tuner_seconds = max(0.0, total - history.evaluation_seconds)
    return history


def make_session(
    benchmark: Benchmark | str,
    tuner_name: str,
    budget: int,
    seed: int,
    fidelity: str = "fast",
    surrogate_policy: str | None = None,
    propagate: bool = False,
) -> tuple[TuningSession, Benchmark]:
    """A fresh ask/tell session for one (benchmark, tuner, budget, seed) cell.

    ``surrogate_policy`` and ``propagate`` are recorded in the session
    metadata (like the fidelity) so checkpoints and service restores rebuild
    the tuner with the same policy and sampling mode — a propagating session
    resumed without the flag would silently fork its RNG stream.
    """
    if isinstance(benchmark, str):
        benchmark = get_benchmark(benchmark)
    tuner = make_tuner(
        tuner_name, benchmark.space, seed,
        fidelity=fidelity, surrogate_policy=surrogate_policy,
        propagate=propagate,
    )
    session = tuner.start_session(budget, benchmark_name=benchmark.name)
    session.meta["fidelity"] = fidelity
    if surrogate_policy is not None:
        session.meta["surrogate_policy"] = surrogate_policy
    if propagate:
        session.meta["propagate"] = True
    return session, benchmark


def save_session(session: TuningSession, path: Path | str, fidelity: str | None = None) -> Path:
    """Write a crash-safe session checkpoint (atomic rename) and return it.

    The payload embeds everything :func:`load_session` needs to rebuild the
    tuner from the registry: the snapshot names the tuner variant, seed,
    budget, benchmark, and (via the session metadata) the fidelity the tuner
    was built with.  Pass ``fidelity`` only to override the recorded one.
    """
    path = Path(path)
    if fidelity is not None:
        session.meta["fidelity"] = fidelity
    payload = session.snapshot()
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w") as handle:
        handle.write(json.dumps(payload))
        handle.flush()
        os.fsync(handle.fileno())  # survive a hard kill right after the rename
    os.replace(tmp, path)
    return path


def restore_session(payload: Mapping[str, Any]) -> tuple[TuningSession, Benchmark]:
    """Rebuild a live session (and its benchmark) from a snapshot payload.

    The benchmark is re-resolved by name through the workload registry and a
    fresh tuner is constructed with the snapshotted variant name, seed, and
    fidelity before :meth:`TuningSession.restore` replays the state.  Shared
    by :func:`load_session` (checkpoint files) and the tuning service's
    inline-payload ``restore`` op.
    """
    meta = payload.get("session")
    if not isinstance(meta, Mapping):
        raise ValueError("snapshot payload has no 'session' section")
    benchmark_name = meta.get("benchmark_name", "")
    if not benchmark_name:
        raise ValueError(
            "snapshot does not name a registry benchmark; "
            "restore it manually via TuningSession.restore()"
        )
    benchmark = get_benchmark(benchmark_name)
    tuner_meta = payload.get("tuner")
    if not isinstance(tuner_meta, Mapping) or "name" not in tuner_meta:
        raise ValueError("snapshot payload has no 'tuner' section")
    if "seed" not in tuner_meta:
        # without the recorded seed the rebuilt tuner would be entropy-seeded
        # and the restored run would silently lose its determinism metadata
        raise ValueError("snapshot payload has no tuner seed")
    snap_meta = payload.get("meta", {})
    tuner = make_tuner(
        tuner_meta["name"],
        benchmark.space,
        tuner_meta["seed"],
        fidelity=snap_meta.get("fidelity", "fast"),
        surrogate_policy=snap_meta.get("surrogate_policy"),
        propagate=bool(snap_meta.get("propagate", False)),
    )
    return TuningSession.restore(payload, tuner), benchmark


def load_session(path: Path | str) -> tuple[TuningSession, Benchmark]:
    """Rebuild a live session (and its benchmark) from a checkpoint file."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, Mapping):
        raise ValueError(f"checkpoint {path} is not a JSON object")
    try:
        return restore_session(payload)
    except ValueError as exc:
        raise ValueError(f"checkpoint {path}: {exc}") from None


def run_benchmark(
    benchmark: Benchmark | str,
    tuner_names: Sequence[str] = MAIN_TUNERS,
    budget: int | None = None,
    config: ExperimentConfig | None = None,
) -> dict[str, list[TuningHistory]]:
    """Run several tuners on one benchmark for ``config.repetitions`` seeds.

    Execution is delegated to :mod:`repro.experiments.orchestrator`: with
    ``config.workers == 1`` (the default) the cells run serially in-process
    exactly as before; with more workers they fan out over a process pool and
    produce bit-identical cached histories.
    """
    config = config or default_config()
    if isinstance(benchmark, str):
        benchmark = get_benchmark(benchmark)
    budget = budget if budget is not None else config.scaled_budget(benchmark.full_budget)

    from .orchestrator import Cell, run_cells  # runner is imported by orchestrator

    grid = {
        tuner_name: [
            Cell(benchmark.name, tuner_name, budget, config.base_seed + repetition)
            for repetition in range(config.repetitions)
        ]
        for tuner_name in tuner_names
    }
    result = run_cells(
        [cell for cells in grid.values() for cell in cells],
        config,
        benchmarks={benchmark.name: benchmark},
        raise_on_error=True,
    )
    return {tuner: [result.history(cell) for cell in cells] for tuner, cells in grid.items()}


def run_suite(
    benchmark_names: Iterable[str],
    tuner_names: Sequence[str] = MAIN_TUNERS,
    config: ExperimentConfig | None = None,
) -> dict[str, dict[str, list[TuningHistory]]]:
    """Run the full cross product benchmark x tuner x repetition.

    Parallelism and resume behavior follow ``config.workers`` / ``config.resume``
    (see :mod:`repro.experiments.orchestrator`).
    """
    config = config or default_config()
    return {
        name: run_benchmark(name, tuner_names, config=config) for name in benchmark_names
    }
