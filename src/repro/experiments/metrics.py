"""Metrics derived from tuning histories.

All of the paper's summary statistics are computed here:

* best feasible value within a budget, and its running ("best-so-far") curve,
* performance relative to the expert configuration (Tables 6-8 and Fig. 5) —
  a value above 1 means the tuner beat the expert,
* how many repetitions reached expert-level performance (Table 5),
* how many evaluations a tuner needs to reach a target value, and the
  resulting "how much faster" factors of Table 9,
* geometric means used by the ablation figures (Fig. 8-10).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..core.result import TuningHistory
from ..workloads.base import Benchmark

__all__ = [
    "geometric_mean",
    "mean_best_curve",
    "mean_best_value",
    "relative_performance",
    "expert_hits",
    "evaluations_to_reach",
    "speedup_factor",
    "reference_value",
]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, ignoring non-finite entries; ``nan`` if none remain."""
    finite = [v for v in values if math.isfinite(v) and v > 0]
    if not finite:
        return float("nan")
    return float(np.exp(np.mean(np.log(finite))))


def mean_best_value(histories: Sequence[TuningHistory], budget: int | None = None) -> float:
    """Mean (over repetitions) of the best feasible value within ``budget``."""
    values = [h.best_value(budget) for h in histories]
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return math.inf
    return float(np.mean(finite))


def mean_best_curve(histories: Sequence[TuningHistory], budget: int | None = None) -> np.ndarray:
    """Average best-so-far curve across repetitions (Fig. 6/7/11 series).

    Runs that have not yet found a feasible point contribute their eventual
    first feasible value (right-censored), so the curve stays finite and
    monotone.
    """
    if not histories:
        return np.empty(0)
    length = min(len(h) for h in histories) if budget is None else budget
    curves = []
    for history in histories:
        curve = history.best_so_far(length)
        if np.isinf(curve).any():
            finite = curve[np.isfinite(curve)]
            fill = finite[0] if len(finite) else np.nan
            curve = np.where(np.isinf(curve), fill, curve)
        curves.append(curve)
    return np.nanmean(np.vstack(curves), axis=0)


def reference_value(
    benchmark: Benchmark,
    all_histories: Mapping[str, Sequence[TuningHistory]] | None = None,
) -> float:
    """The normalization constant used for "performance relative to expert".

    For benchmarks with an expert configuration this is the expert's runtime.
    The HPVM2FPGA benchmarks have none, so — like the paper's tables, where
    the best tuner's full-budget result defines 1.00 — the best value found by
    any tuner across ``all_histories`` is used instead (falling back to the
    default configuration when no histories are supplied).
    """
    if benchmark.has_expert:
        return benchmark.expert_value
    if all_histories:
        best = min(
            (h.best_value() for histories in all_histories.values() for h in histories),
            default=math.inf,
        )
        if math.isfinite(best):
            return best
    return benchmark.default_value


def relative_performance(
    benchmark: Benchmark,
    histories: Sequence[TuningHistory],
    budget: int | None = None,
    reference: float | None = None,
) -> float:
    """Mean of ``reference / best_found`` over repetitions (> 1 beats the expert)."""
    reference = benchmark.reference_value if reference is None else reference
    if not math.isfinite(reference):
        return float("nan")
    ratios = []
    for history in histories:
        best = history.best_value(budget)
        ratios.append(reference / best if math.isfinite(best) else 0.0)
    return float(np.mean(ratios)) if ratios else float("nan")


def expert_hits(
    benchmark: Benchmark,
    histories: Sequence[TuningHistory],
    budget: int | None = None,
    reference: float | None = None,
) -> int:
    """Number of repetitions that reached expert-level performance (Table 5)."""
    reference = benchmark.reference_value if reference is None else reference
    if not math.isfinite(reference):
        return 0
    return sum(1 for h in histories if h.best_value(budget) <= reference)


def evaluations_to_reach(
    histories: Sequence[TuningHistory],
    threshold: float,
    budget: int | None = None,
) -> float:
    """Mean number of evaluations needed to reach ``threshold``.

    Repetitions that never reach it are counted at the full budget (a
    conservative, censoring-aware convention).
    """
    if not math.isfinite(threshold) or not histories:
        return float("nan")
    counts = []
    for history in histories:
        horizon = len(history) if budget is None else min(budget, len(history))
        reached = history.evaluations_to_reach(threshold)
        counts.append(reached if reached is not None and reached <= horizon else horizon)
    return float(np.mean(counts))


def speedup_factor(
    fast_histories: Sequence[TuningHistory],
    slow_histories: Sequence[TuningHistory],
    budget: int,
) -> float:
    """Table 9 factor: how much faster the first tuner reaches the second's best.

    The target is the slower tuner's mean final best value; the factor is the
    full budget divided by the mean number of evaluations the faster tuner
    needs to match that target.  ``nan`` is returned when the faster tuner's
    final performance is worse than the target (the "-" entries of Table 9).
    """
    target = mean_best_value(slow_histories, budget)
    if not math.isfinite(target):
        return float("nan")
    final = mean_best_value(fast_histories, budget)
    if final > target:
        return float("nan")
    needed = evaluations_to_reach(fast_histories, target, budget)
    if not math.isfinite(needed) or needed <= 0:
        return float("nan")
    return budget / needed
