"""Plain-text rendering of tables and figure series.

The benchmark harness regenerates every table and figure of the paper as
text; these helpers keep the formatting consistent and readable inside
pytest-benchmark output and in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Sequence

import numpy as np

__all__ = [
    "format_table",
    "format_figure5",
    "format_checkpoint_study",
    "format_evolution",
    "format_cell_event",
    "format_sweep_summary",
]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf"
        return f"{value:.3g}" if abs(value) < 1000 else f"{value:.2e}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render an ASCII table with aligned columns."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_cell_event(event: Any) -> str:
    """One progress line per orchestrator cell event.

    Accepts any object shaped like
    :class:`repro.experiments.orchestrator.CellEvent`; the orchestrator streams
    these through its ``on_event`` hook and the CLI prints them via this
    formatter.
    """
    cell = event.cell
    head = f"[{event.index:>4}/{event.total}]"
    where = f"{cell.benchmark} | {cell.tuner} | budget={cell.budget} seed={cell.seed}"
    if event.kind == "start":
        return f"{head} start   {where}"
    if event.kind == "cached":
        return f"{head} cached  {where}"
    if event.kind == "done":
        return f"{head} done    {where} ({event.elapsed:.1f}s)"
    if event.kind == "retry":
        suffix = f": {event.error}" if event.error else ""
        return f"{head} retry   {where} (attempt {event.attempt}{suffix})"
    if event.kind == "failed":
        return f"{head} FAILED  {where} after {event.attempt} attempt(s): {event.error}"
    return f"{head} {event.kind:<7} {where}"


def format_sweep_summary(counts: Mapping[str, int], elapsed: float, workers: int = 1) -> str:
    """One-line sweep summary: ``12 done, 4 cached, 0 failed in 8.1s (2 workers)``."""
    total = sum(counts.values())
    parts = ", ".join(
        f"{counts.get(status, 0)} {status}" for status in ("done", "cached", "failed")
    )
    return f"sweep: {total} cells — {parts} in {elapsed:.1f}s ({workers} worker(s))"


def format_figure5(data: Mapping[str, Mapping[str, Mapping[str, float]]]) -> str:
    """Render Fig. 5 data: framework x budget level x tuner."""
    blocks = []
    for framework, levels in data.items():
        tuners = list(next(iter(levels.values())).keys())
        headers = ["Budget", *tuners]
        rows = [[level, *[levels[level][t] for t in tuners]] for level in levels]
        blocks.append(format_table(headers, rows, title=f"[Fig. 5] {framework} — performance relative to expert"))
    return "\n\n".join(blocks)


def format_checkpoint_study(data: Mapping[str, Mapping[str, float]], title: str) -> str:
    """Render Fig. 8 / 9 / 10 data: variant x checkpoint."""
    checkpoints = list(next(iter(data.values())).keys())
    headers = ["Variant", *checkpoints]
    rows = [[variant, *[values[c] for c in checkpoints]] for variant, values in data.items()]
    return format_table(headers, rows, title=title)


def format_evolution(entries: Sequence[Mapping[str, Any]], n_points: int = 8) -> str:
    """Render Fig. 6 / 7 / 11 evolution data as per-benchmark mini tables."""
    blocks = []
    for entry in entries:
        curves = entry["curves"]
        budget = entry["budget"]
        indices = np.unique(np.linspace(1, budget, min(n_points, budget), dtype=int))
        headers = ["Tuner", *[f"@{i}" for i in indices], "evals to expert"]
        rows = []
        for tuner, curve in curves.items():
            sampled = [curve[i - 1] if i - 1 < len(curve) else float("nan") for i in indices]
            rows.append([tuner, *sampled, entry["evaluations_to_expert"].get(tuner, float("nan"))])
        title = (
            f"[evolution] {entry['benchmark']} (expert={_cell(entry['expert_value'])}, "
            f"default={_cell(entry['default_value'])}, budget={budget})"
        )
        blocks.append(format_table(headers, rows, title=title))
    return "\n\n".join(blocks)
