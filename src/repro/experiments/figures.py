"""Data series for every figure of the paper's evaluation section.

Each ``figureN_data`` function runs (or loads from the cache) the experiments
behind the corresponding figure and returns plain data structures — the same
series a plotting script would draw.  The benchmark harness prints them as
text tables so the reproduction can be compared with the paper at a glance.

* Fig. 5  — average performance relative to expert at tiny / small / full budget,
* Fig. 6  — evolution of the best runtime for one kernel per framework,
* Fig. 7 / Fig. 11 — evolution for all benchmarks,
* Fig. 8  — comparison of BO implementations (BaCO, BaCO--, Ytopt (GP), RF),
* Fig. 9  — ablation of permutation metric, transformations, priors,
* Fig. 10 — impact of the hidden-constraint model and the feasibility limit.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from ..core.result import TuningHistory
from ..workloads.base import Benchmark
from ..workloads.registry import benchmarks_by_framework, get_benchmark, representative_benchmarks
from ..workloads.taco_suite import build_taco_benchmark
from .config import ExperimentConfig, default_config
from .metrics import (
    evaluations_to_reach,
    geometric_mean,
    mean_best_curve,
    mean_best_value,
    reference_value,
    relative_performance,
)
from .runner import MAIN_TUNERS, run_benchmark, run_single

__all__ = [
    "suite_benchmarks",
    "figure5_data",
    "figure6_data",
    "figure7_data",
    "figure8_data",
    "figure9_data",
    "figure10_data",
    "FIGURE8_VARIANTS",
    "FIGURE9_VARIANTS",
    "FIGURE10_VARIANTS",
    "SPMM_ABLATION_TENSORS",
]

#: matrices used by the Fig. 8 / Fig. 9 SpMM studies
SPMM_ABLATION_TENSORS = ("filter3D", "email-Enron", "amazon0312")

#: Fig. 8: BO implementation comparison
FIGURE8_VARIANTS = ("BaCO", "BaCO--", "Ytopt (GP)", "BaCO (RF surrogate)")

#: Fig. 9: permutation-metric / transformation / prior ablations
FIGURE9_VARIANTS = (
    "BaCO",
    "BaCO (kendall)",
    "BaCO (hamming)",
    "BaCO (naive permutations)",
    "BaCO (no transformations)",
    "BaCO (no priors)",
)

#: Fig. 10: hidden-constraint handling
FIGURE10_VARIANTS = ("BaCO", "BaCO (no hidden constraints)", "BaCO (no feasibility limit)")

#: representative per-framework subset used when REPRO_FULL_SUITE is off
_FAST_SUBSET = {
    "TACO": [
        "taco_spmm_scircuit",
        "taco_spmv_cage12",
        "taco_sddmm_email-Enron",
        "taco_ttv_facebook",
        "taco_mttkrp_uber",
    ],
    "RISE & ELEVATE": ["rise_mm_cpu", "rise_mm_gpu", "rise_asum_gpu", "rise_scal_gpu"],
    "HPVM2FPGA": ["hpvm_bfs", "hpvm_audio", "hpvm_preeuler"],
}


def suite_benchmarks(config: ExperimentConfig | None = None) -> dict[str, list[str]]:
    """Benchmarks included in the big sweeps, grouped by framework."""
    config = config or default_config()
    if config.full_suite:
        return benchmarks_by_framework()
    return {fw: list(names) for fw, names in _FAST_SUBSET.items()}


# ---------------------------------------------------------------------------
# Fig. 5
# ---------------------------------------------------------------------------

def figure5_data(
    config: ExperimentConfig | None = None,
    tuners: Sequence[str] = MAIN_TUNERS,
) -> dict[str, dict[str, dict[str, float]]]:
    """Average performance relative to expert per framework / budget / tuner.

    Returns ``{framework: {budget_level: {tuner_or_Default: mean_relative}}}``.
    """
    config = config or default_config()
    output: dict[str, dict[str, dict[str, float]]] = {}
    for framework, names in suite_benchmarks(config).items():
        per_level: dict[str, dict[str, list[float]]] = {
            level: {t: [] for t in (*tuners, "Default")} for level in ("tiny", "small", "full")
        }
        for name in names:
            benchmark = get_benchmark(name)
            budget = config.scaled_budget(benchmark.full_budget)
            results = run_benchmark(benchmark, tuners, budget=budget, config=config)
            reference = reference_value(benchmark, results)
            for level, fraction in (("tiny", 1 / 3), ("small", 2 / 3), ("full", 1.0)):
                level_budget = max(1, int(round(budget * fraction)))
                for tuner in tuners:
                    per_level[level][tuner].append(
                        relative_performance(
                            benchmark, results[tuner], level_budget, reference=reference
                        )
                    )
                default_rel = (
                    reference / benchmark.default_value
                    if math.isfinite(benchmark.default_value) and benchmark.default_value > 0
                    else float("nan")
                )
                per_level[level]["Default"].append(default_rel)
        output[framework] = {
            level: {
                tuner: float(np.nanmean(values)) if values else float("nan")
                for tuner, values in level_data.items()
            }
            for level, level_data in per_level.items()
        }
    return output


# ---------------------------------------------------------------------------
# Fig. 6 / Fig. 7 / Fig. 11
# ---------------------------------------------------------------------------

def _evolution_entry(
    benchmark: Benchmark,
    results: Mapping[str, Sequence[TuningHistory]],
    budget: int,
) -> dict:
    reference = reference_value(benchmark, results)
    curves = {tuner: mean_best_curve(histories, budget) for tuner, histories in results.items()}
    expert_cross = {
        tuner: evaluations_to_reach(histories, reference, budget)
        if math.isfinite(reference)
        else float("nan")
        for tuner, histories in results.items()
    }
    return {
        "benchmark": benchmark.name,
        "framework": benchmark.framework,
        "budget": budget,
        "expert_value": benchmark.expert_value,
        "default_value": benchmark.default_value,
        "reference_value": reference,
        "curves": curves,
        "evaluations_to_expert": expert_cross,
    }


def figure6_data(
    config: ExperimentConfig | None = None,
    tuners: Sequence[str] = MAIN_TUNERS,
) -> list[dict]:
    """Best-runtime evolution for the representative kernel of each framework."""
    config = config or default_config()
    entries = []
    for _framework, name in representative_benchmarks().items():
        benchmark = get_benchmark(name)
        budget = config.scaled_budget(benchmark.full_budget)
        results = run_benchmark(benchmark, tuners, budget=budget, config=config)
        entry = _evolution_entry(benchmark, results, budget)
        # the speedup annotations of Fig. 6: budget / evaluations BaCO needs to
        # match each baseline's final best value
        annotations = {}
        for tuner in tuners:
            if tuner == "BaCO":
                continue
            target = mean_best_value(results[tuner], budget)
            needed = evaluations_to_reach(results["BaCO"], target, budget)
            annotations[tuner] = budget / needed if math.isfinite(needed) and needed > 0 else float("nan")
        entry["speedup_vs"] = annotations
        entries.append(entry)
    return entries


def figure7_data(
    config: ExperimentConfig | None = None,
    tuners: Sequence[str] = MAIN_TUNERS,
    benchmarks: Sequence[str] | None = None,
) -> list[dict]:
    """Best-runtime evolution for every benchmark in the suite (Fig. 7 + Fig. 11)."""
    config = config or default_config()
    if benchmarks is None:
        benchmarks = [name for names in suite_benchmarks(config).values() for name in names]
    entries = []
    for name in benchmarks:
        benchmark = get_benchmark(name)
        budget = config.scaled_budget(benchmark.full_budget)
        results = run_benchmark(benchmark, tuners, budget=budget, config=config)
        entries.append(_evolution_entry(benchmark, results, budget))
    return entries


# ---------------------------------------------------------------------------
# Fig. 8 / Fig. 9 (SpMM ablation studies)
# ---------------------------------------------------------------------------

_CHECKPOINTS = (("tiny", 1 / 3), ("small", 2 / 3), ("full", 1.0))


def _checkpoint_study(
    variants: Sequence[str],
    benchmarks: Sequence[Benchmark],
    config: ExperimentConfig,
) -> dict[str, dict[str, float]]:
    """Geometric-mean relative performance of variants at budget checkpoints.

    Returns ``{variant: {"tiny"|"small"|"full": geometric mean over benchmarks}}``
    where the checkpoints are 1/3, 2/3 and all of each benchmark's (scaled)
    budget — the 20 / 40 / 60 evaluation marks of Fig. 8-10.
    """
    output: dict[str, dict[str, float]] = {}
    for variant in variants:
        per_checkpoint: dict[str, list[float]] = {level: [] for level, _ in _CHECKPOINTS}
        for benchmark in benchmarks:
            budget = config.scaled_budget(benchmark.full_budget)
            histories = [
                run_single(benchmark, variant, budget, config.base_seed + rep, config)
                for rep in range(config.repetitions)
            ]
            for level, fraction in _CHECKPOINTS:
                level_budget = max(1, int(round(budget * fraction)))
                per_checkpoint[level].append(
                    relative_performance(benchmark, histories, level_budget)
                )
        output[variant] = {
            level: geometric_mean(values) for level, values in per_checkpoint.items()
        }
    return output


def _spmm_study(
    variants: Sequence[str],
    config: ExperimentConfig,
) -> dict[str, dict[str, float]]:
    """Geometric-mean relative performance of variants on the SpMM matrices."""
    benchmarks = [build_taco_benchmark("spmm", tensor) for tensor in SPMM_ABLATION_TENSORS]
    return _checkpoint_study(variants, benchmarks, config)


def figure8_data(config: ExperimentConfig | None = None) -> dict[str, dict[str, float]]:
    """Fig. 8: BaCO vs BaCO-- vs Ytopt (GP) vs an RF-surrogate BaCO."""
    config = config or default_config()
    return _spmm_study(FIGURE8_VARIANTS, config)


def figure9_data(config: ExperimentConfig | None = None) -> dict[str, dict[str, float]]:
    """Fig. 9: permutation-metric / transformation / prior ablation."""
    config = config or default_config()
    return _spmm_study(FIGURE9_VARIANTS, config)


# ---------------------------------------------------------------------------
# Fig. 10 (hidden constraints)
# ---------------------------------------------------------------------------

def figure10_data(config: ExperimentConfig | None = None) -> dict[str, dict[str, float]]:
    """Fig. 10: impact of the feasibility model and the minimum feasibility limit.

    Geometric mean over the MM_GPU and Scal_GPU kernels of the performance
    relative to expert at three evaluation checkpoints.
    """
    config = config or default_config()
    benchmarks = [get_benchmark("rise_mm_gpu"), get_benchmark("rise_scal_gpu")]
    return _checkpoint_study(FIGURE10_VARIANTS, benchmarks, config)
