"""Experiment configuration: scaling knobs for paper-scale vs. CI-scale runs.

The paper runs every (tuner, benchmark) pair for 30 repetitions at the full
budgets of Table 3.  That is far more compute than a test / benchmark suite
should spend by default, so the harness is parameterized by environment
variables:

=======================  =======================================  =========
variable                 meaning                                  default
=======================  =======================================  =========
``REPRO_REPETITIONS``    repetitions per (tuner, benchmark) pair  3
``REPRO_BUDGET_SCALE``   fraction of the Table 3 budget to use    0.5
``REPRO_FIDELITY``       "fast" or "paper" optimizer settings     fast
``REPRO_SEED``           base random seed                         2023
``REPRO_CACHE_DIR``      on-disk cache for tuning histories       results/cache
``REPRO_USE_CACHE``      reuse cached histories ("1"/"0")         1
``REPRO_FULL_SUITE``     run all 25 instances in the big sweeps   0
``REPRO_WORKERS``        parallel worker processes per sweep      1
``REPRO_TIMEOUT``        per-cell timeout in seconds (0 = none)   0
``REPRO_RETRIES``        re-attempts per failed / timed-out cell  0
``REPRO_RESUME``         skip cells already in the cache ("1")    1
``REPRO_EVAL_WORKERS``   parallel black-box evaluations per cell  1
=======================  =======================================  =========

Setting ``REPRO_REPETITIONS=30 REPRO_BUDGET_SCALE=1.0 REPRO_FIDELITY=paper
REPRO_FULL_SUITE=1`` reproduces the paper-scale experiment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ExperimentConfig", "default_config"]


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


def _repo_root() -> Path:
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            return parent
    return Path.cwd()


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs controlling how much compute the experiment harness spends."""

    repetitions: int = 3
    budget_scale: float = 0.5
    fidelity: str = "fast"
    base_seed: int = 2023
    cache_dir: Path = field(default_factory=lambda: _repo_root() / "results" / "cache")
    use_cache: bool = True
    full_suite: bool = False
    #: worker processes used by the experiment orchestrator (1 = serial, in-process)
    workers: int = 1
    #: per-cell wall-clock timeout in seconds (None = unlimited)
    timeout: float | None = None
    #: re-attempts granted to a failed or timed-out cell
    retries: int = 0
    #: skip cells whose cached history already exists; False forces recomputation
    resume: bool = True
    #: parallel black-box evaluations inside one tuner run: each ask/tell
    #: session asks batches of this size and fans them out over a process
    #: pool (1 = the serial trace; >1 trades per-iteration feedback for
    #: evaluation throughput and changes the trace, so it is part of the
    #: cache identity)
    eval_workers: int = 1

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if not 0.0 < self.budget_scale <= 1.0:
            raise ValueError("budget_scale must be in (0, 1]")
        if self.fidelity not in ("fast", "paper"):
            raise ValueError("fidelity must be 'fast' or 'paper'")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.eval_workers < 1:
            raise ValueError("eval_workers must be >= 1")

    def scaled_budget(self, full_budget: int) -> int:
        """Budget actually used for one benchmark after scaling."""
        return max(6, int(round(full_budget * self.budget_scale)))


def default_config() -> ExperimentConfig:
    """Build the configuration from environment variables."""
    timeout = _env_float("REPRO_TIMEOUT", 0.0)
    return ExperimentConfig(
        repetitions=_env_int("REPRO_REPETITIONS", 3),
        budget_scale=_env_float("REPRO_BUDGET_SCALE", 0.5),
        fidelity=os.environ.get("REPRO_FIDELITY", "fast"),
        base_seed=_env_int("REPRO_SEED", 2023),
        cache_dir=Path(os.environ.get("REPRO_CACHE_DIR", _repo_root() / "results" / "cache")),
        use_cache=os.environ.get("REPRO_USE_CACHE", "1") != "0",
        full_suite=os.environ.get("REPRO_FULL_SUITE", "0") == "1",
        workers=max(1, _env_int("REPRO_WORKERS", 1)),
        timeout=timeout if timeout > 0 else None,
        retries=max(0, _env_int("REPRO_RETRIES", 0)),
        resume=os.environ.get("REPRO_RESUME", "1") != "0",
        eval_workers=max(1, _env_int("REPRO_EVAL_WORKERS", 1)),
    )
